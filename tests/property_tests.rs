//! Property-based tests over the core numerical and photonic invariants,
//! spanning crate boundaries.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn::linalg::fft::{dft_naive, fft, Direction};
use spnn::linalg::random::haar_unitary;
use spnn::linalg::svd::svd;
use spnn::linalg::vector::norm_sq;
use spnn::mesh::rvd::rvd;
use spnn::prelude::*;

fn c64_strategy() -> impl Strategy<Value = C64> {
    (-3.0f64..3.0, -3.0f64..3.0).prop_map(|(re, im)| C64::new(re, im))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- complex scalar field axioms ----------

    #[test]
    fn c64_mul_distributes_over_add(a in c64_strategy(), b in c64_strategy(), c in c64_strategy()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!(lhs.approx_eq(rhs, 1e-9));
    }

    #[test]
    fn c64_conjugation_is_multiplicative(a in c64_strategy(), b in c64_strategy()) {
        prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj(), 1e-9));
    }

    #[test]
    fn c64_modulus_is_multiplicative(a in c64_strategy(), b in c64_strategy()) {
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }

    // ---------- MZI device invariants ----------

    #[test]
    fn mzi_is_unitary_for_any_phases(theta in 0.0..std::f64::consts::TAU, phi in 0.0..std::f64::consts::TAU) {
        let t = Mzi::ideal(theta, phi).transfer_matrix();
        prop_assert!(t.is_unitary(1e-10));
    }

    #[test]
    fn mzi_stays_unitary_under_lossless_bes_errors(
        theta in 0.0..std::f64::consts::TAU,
        phi in 0.0..std::f64::consts::TAU,
        dr1 in -0.2f64..0.2,
        dr2 in -0.2f64..0.2,
    ) {
        let t = Mzi::ideal(theta, phi)
            .with_splitter_errors(dr1, dr2)
            .transfer_matrix();
        prop_assert!(t.is_unitary(1e-10));
    }

    #[test]
    fn mzi_power_conservation(
        theta in 0.0..std::f64::consts::TAU,
        phi in 0.0..std::f64::consts::TAU,
        a in c64_strategy(),
        b in c64_strategy(),
    ) {
        let t = Mzi::ideal(theta, phi).transfer_matrix();
        let input = vec![a, b];
        let out = t.mul_vec(&input);
        prop_assert!((norm_sq(&input) - norm_sq(&out)).abs() < 1e-9 * (1.0 + norm_sq(&input)));
    }

    // ---------- mesh synthesis invariants ----------

    #[test]
    fn clements_reconstructs_any_haar_unitary(n in 2usize..7, seed in 0u64..500) {
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed));
        let mesh = clements::decompose(&u).unwrap();
        prop_assert_eq!(mesh.n_mzis(), n * (n - 1) / 2);
        prop_assert!(mesh.matrix().approx_eq(&u, 1e-8));
    }

    #[test]
    fn reck_reconstructs_any_haar_unitary(n in 2usize..7, seed in 0u64..500) {
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed));
        let mesh = reck::decompose(&u).unwrap();
        prop_assert!(mesh.matrix().approx_eq(&u, 1e-8));
    }

    #[test]
    fn perturbed_mesh_is_still_unitary(seed in 0u64..200, sigma in 0.0f64..0.15) {
        // Lossless errors never break unitarity — only correctness.
        let u = haar_unitary(5, &mut StdRng::seed_from_u64(seed));
        let mesh = clements::decompose(&u).unwrap();
        let spec = UncertaintySpec::both(sigma.max(1e-6));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFF);
        let noisy = mesh.matrix_with(|_, site| spec.perturb_mzi(&site.device(), &mut rng));
        prop_assert!(noisy.is_unitary(1e-8));
    }

    #[test]
    fn rvd_is_zero_only_for_identical(seed in 0u64..200) {
        let u = haar_unitary(4, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(rvd(&u, &u), 0.0);
    }

    // ---------- SVD invariants ----------

    #[test]
    fn svd_reconstructs_and_orders(rows in 2usize..6, cols in 2usize..6, seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = CMatrix::from_fn(rows, cols, |_, _| {
            spnn::linalg::random::gaussian_complex(&mut rng)
        });
        let f = svd(&a).unwrap();
        prop_assert!(f.u.is_unitary(1e-9));
        prop_assert!(f.v.is_unitary(1e-9));
        for w in f.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(f.reconstruct().approx_eq(&a, 1e-8));
    }

    // ---------- FFT invariants ----------

    #[test]
    fn fft_roundtrip_any_length(n in 1usize..40, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<C64> = (0..n).map(|_| spnn::linalg::random::gaussian_complex(&mut rng)).collect();
        let back = fft(&fft(&x, Direction::Forward), Direction::Inverse);
        for (a, b) in x.iter().zip(back.iter()) {
            prop_assert!(a.approx_eq(*b, 1e-8 * n as f64 + 1e-10));
        }
    }

    #[test]
    fn fft_matches_naive_dft(n in 1usize..24, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<C64> = (0..n).map(|_| spnn::linalg::random::gaussian_complex(&mut rng)).collect();
        let fast = fft(&x, Direction::Forward);
        let slow = dft_naive(&x, Direction::Forward);
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!(a.approx_eq(*b, 1e-7 * n as f64 + 1e-10));
        }
    }

    // ---------- Σ line invariants ----------

    #[test]
    fn diagonal_line_realizes_singular_values(
        s in prop::collection::vec(0.0f64..4.0, 1..6),
    ) {
        let n = s.len();
        let line = DiagonalLine::from_singular_values(&s, n, n);
        let m = line.matrix();
        for (i, &v) in s.iter().enumerate() {
            prop_assert!((m[(i, i)].re - v).abs() < 1e-9);
            prop_assert!(m[(i, i)].im.abs() < 1e-9);
        }
    }

    // ---------- activation invariants ----------

    #[test]
    fn softplus_modulus_is_phase_invariant(a in c64_strategy(), rot in 0.0..std::f64::consts::TAU) {
        // softplus(|z|) depends only on |z|.
        use spnn::neural::activation::mod_softplus;
        let z = [a];
        let zr = [a * C64::cis(rot)];
        let f = mod_softplus(&z);
        let fr = mod_softplus(&zr);
        prop_assert!((f[0].re - fr[0].re).abs() < 1e-10);
    }

    #[test]
    fn log_softmax_is_shift_invariant(
        o in prop::collection::vec(-5.0f64..5.0, 2..8),
        shift in -10.0f64..10.0,
    ) {
        use spnn::neural::activation::log_softmax;
        let shifted: Vec<f64> = o.iter().map(|x| x + shift).collect();
        let a = log_softmax(&o);
        let b = log_softmax(&shifted);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}
