//! End-to-end integration tests spanning every crate: dataset → training →
//! photonic mapping → uncertainty injection → Monte-Carlo accuracy.

use spnn::core::exp1::{run as exp1_run, Exp1Config};
use spnn::core::exp2::{run_one, Exp2Config};
use spnn::prelude::*;

/// Shared small-but-real pipeline. Training is the slow part, so the
/// fixture is built once per test binary.
fn trained_spnn() -> (SpnnDataset, ComplexNetwork, PhotonicNetwork) {
    let data = SpnnDataset::generate(&DatasetConfig {
        n_train: 600,
        n_test: 150,
        crop: 4,
        seed: 1234,
    });
    let mut net = ComplexNetwork::new(&[16, 16, 16, 10], 55);
    train(
        &mut net,
        &data.train_features,
        &data.train_labels,
        &TrainConfig {
            epochs: 18,
            batch_size: 32,
            learning_rate: 0.01,
            seed: 9,
            verbose: false,
        },
    );
    let hw = PhotonicNetwork::from_network(&net, MeshTopology::Clements, Some(4)).unwrap();
    (data, net, hw)
}

#[test]
fn software_training_learns_the_synthetic_task() {
    let (data, net, _) = trained_spnn();
    let acc = net.accuracy(&data.test_features, &data.test_labels);
    assert!(
        acc > 0.6,
        "trained SPNN should comfortably beat the 10% random guess, got {acc}"
    );
}

#[test]
fn photonic_hardware_reproduces_software_exactly_without_noise() {
    let (data, net, hw) = trained_spnn();
    let sw_acc = net.accuracy(&data.test_features, &data.test_labels);
    let hw_acc = hw.ideal_accuracy(&data.test_features, &data.test_labels);
    assert!(
        (sw_acc - hw_acc).abs() < 1e-12,
        "ideal hardware must match software: {sw_acc} vs {hw_acc}"
    );
}

#[test]
fn per_sample_logits_match_between_software_and_hardware() {
    let (data, net, hw) = trained_spnn();
    let ideal = hw.ideal_matrices();
    for f in data.test_features.iter().take(20) {
        let sw = net.forward(f);
        let hwv = hw.forward_with(&ideal, f);
        for (a, b) in sw.iter().zip(hwv.iter()) {
            assert!((a - b).abs() < 1e-6, "logit mismatch: {a} vs {b}");
        }
    }
}

#[test]
fn uncertainty_degrades_accuracy_monotonically_in_expectation() {
    let (data, _, hw) = trained_spnn();
    let nominal = hw.ideal_accuracy(&data.test_features, &data.test_labels);
    let mut last = nominal + 1e-9;
    // Coarse grid with enough MC iterations for a stable ordering.
    for sigma in [0.01, 0.05, 0.15] {
        let plan = PerturbationPlan::global(UncertaintySpec::both(sigma));
        let r = mc_accuracy(
            &hw,
            &plan,
            &HardwareEffects::default(),
            &data.test_features,
            &data.test_labels,
            12,
            777,
        );
        assert!(
            r.mean < last + 0.05,
            "accuracy should trend down: σ={sigma} gave {} after {last}",
            r.mean
        );
        last = r.mean;
    }
    // At the largest σ the network is near random guessing (10%).
    assert!(
        last < 0.35,
        "σ=0.15 should approach the random-guess floor, got {last}"
    );
}

#[test]
fn phase_shifter_errors_hurt_more_than_beam_splitter_errors() {
    // The paper's Fig. 4 ordering at moderate σ.
    let (data, _, hw) = trained_spnn();
    let cfg = Exp1Config {
        sigmas: vec![0.05],
        iterations: 15,
        seed: 31,
        modes: vec![
            PerturbTarget::PhaseShiftersOnly,
            PerturbTarget::BeamSplittersOnly,
        ],
    };
    let points = exp1_run(&hw, &data.test_features, &data.test_labels, &cfg);
    let phs = points
        .iter()
        .find(|p| p.mode == PerturbTarget::PhaseShiftersOnly)
        .unwrap()
        .result
        .mean;
    let bes = points
        .iter()
        .find(|p| p.mode == PerturbTarget::BeamSplittersOnly)
        .unwrap()
        .result
        .mean;
    assert!(
        phs < bes,
        "PhS-only accuracy ({phs}) should be below BeS-only ({bes}) at σ = 0.05"
    );
}

#[test]
fn exp2_zonal_heatmap_shows_zone_dependent_impact() {
    let (data, _, hw) = trained_spnn();
    let cfg = Exp2Config {
        iterations: 6,
        seed: 91,
        ..Exp2Config::default()
    };
    // Use a subset of test data to keep the integration test quick.
    let xs: Vec<_> = data.test_features.iter().take(60).cloned().collect();
    let ys: Vec<_> = data.test_labels.iter().take(60).cloned().collect();
    let hm = run_one(&hw, &xs, &ys, 0, Stage::UMesh, &cfg);
    let (rows, cols) = hm.shape();
    assert_eq!((rows, cols), (4, 8), "16×16 Clements zone grid");
    let (lo, hi) = hm.loss_range();
    assert!(hi > lo, "zonal losses should vary across zones");
    // All zones suffer substantially (the paper: losses hover near the
    // global-σ=0.05 figure) — every zone's loss is within 35 pts of the max.
    assert!(hi - lo < 35.0, "zone spread implausibly wide: {lo}–{hi}");
}

#[test]
fn census_of_paper_architecture() {
    let (_, _, hw) = trained_spnn();
    let census = ComponentCensus::of(&hw);
    assert_eq!(census.total_mzis(), 687);
    assert_eq!(census.total_phase_shifters(), 1374);
}

#[test]
fn quantization_and_noise_compose() {
    let (data, _, hw) = trained_spnn();
    let nominal = hw.ideal_accuracy(&data.test_features, &data.test_labels);
    // 8-bit quantization alone is almost free.
    let fine = mc_accuracy(
        &hw,
        &PerturbationPlan::None,
        &HardwareEffects::with_quantization(8),
        &data.test_features,
        &data.test_labels,
        1,
        5,
    );
    assert!(
        nominal - fine.mean < 0.1,
        "8-bit quantization should be nearly free: {} vs {nominal}",
        fine.mean
    );
    // 2-bit quantization is destructive.
    let coarse = mc_accuracy(
        &hw,
        &PerturbationPlan::None,
        &HardwareEffects::with_quantization(2),
        &data.test_features,
        &data.test_labels,
        1,
        5,
    );
    assert!(
        coarse.mean < fine.mean,
        "2-bit ({}) should underperform 8-bit ({})",
        coarse.mean,
        fine.mean
    );
}
