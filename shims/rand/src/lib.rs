//! Offline shim of the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in an environment with no crates.io access, so the
//! small slice of the `rand` 0.8 API the SPNN stack uses is vendored here as
//! a path dependency:
//!
//! - [`RngCore`] / [`Rng`] with `gen::<f64>()`, `gen::<u64>()` and
//!   `gen_range(a..b)`,
//! - [`SeedableRng::seed_from_u64`],
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator,
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is *not* stream-compatible with upstream `rand`'s
//! `StdRng` (ChaCha12); it only promises what the SPNN code relies on —
//! high statistical quality and bit-exact determinism for a given seed.
//! xoshiro256++ passes BigCrush and its seeding goes through SplitMix64,
//! the initialization recommended by its authors.

#![warn(missing_docs)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker distribution for "a uniformly random value of the type" —
/// the target of `rng.gen::<T>()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// A distribution that can produce values of type `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `(x >> 11) · 2⁻⁵³` construction, identical to upstream `rand`).
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A half-open range that can produce uniform samples — the argument of
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, n)` via Lemire's widening-multiply
/// rejection method.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected: retry keeps the distribution exactly uniform.
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws a uniform value from `range` (e.g. `rng.gen_range(0..10)`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let u: f64 = Standard.sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Distinct seeds yield
    /// decorrelated streams (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — the recommended seeder for xoshiro-family generators.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna, 2019). Not stream-compatible with upstream
    /// `rand::rngs::StdRng`, but of equivalent statistical quality.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state; SplitMix64
            // cannot produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            Self { s }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions (`shuffle`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random reference to one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let k = rng.gen_range(0..5usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn unsized_rng_works_through_references() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
