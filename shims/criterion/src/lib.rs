//! Offline shim of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds without crates.io access, so this crate vendors the
//! API slice the SPNN benches use — [`criterion_group!`]/[`criterion_main!`],
//! [`Criterion::bench_function`], benchmark groups with `sample_size` and
//! `bench_with_input`, and [`Bencher::iter`] — backed by a simple but honest
//! measurement loop: per sample, the closure is run in a timed batch sized
//! to ~`Criterion::target_batch_time`, and the median ns/iteration over
//! all samples is reported.
//!
//! Statistical niceties of real criterion (outlier classification, HTML
//! reports, regression detection) are out of scope; the numbers printed
//! here are stable enough for the ≥×-style throughput comparisons the
//! ROADMAP asks for.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

/// Runs one benchmark's measurement loop.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    target_batch: Duration,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    pub median_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iteration across samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: run once, then size batches so one
        // batch lasts roughly `target_batch`.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (self.target_batch.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The harness entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    target_batch_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            target_batch_time: Duration::from_millis(25),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, self.target_batch_time, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            target_batch_time: self.target_batch_time,
            _parent: std::marker::PhantomData,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, target: Duration, mut f: F) {
    let mut b = Bencher {
        samples,
        target_batch: target,
        median_ns: f64::NAN,
    };
    f(&mut b);
    if b.median_ns.is_nan() {
        println!("{name:<40} (no measurement — b.iter was not called)");
    } else {
        println!("{name:<40} time: {:>12} /iter", format_ns(b.median_ns));
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    target_batch_time: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.target_batch_time, f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, self.sample_size, self.target_batch_time, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (reporting is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut saw = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                saw = saw.wrapping_add(1);
                std::hint::black_box(saw)
            })
        });
        assert!(saw > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sq", 4usize), &4usize, |b, &n| {
            b.iter(|| std::hint::black_box(n * n))
        });
        group.finish();
    }

    #[test]
    fn id_formatting() {
        let id = BenchmarkId::new("jacobi", "16x16");
        assert_eq!(id.name, "jacobi/16x16");
    }
}
