//! Offline shim of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The workspace builds without crates.io access, so this crate vendors the
//! small API slice the SPNN property tests use:
//!
//! - the [`proptest!`] macro (`fn name(arg in strategy, …) { body }`),
//! - [`Strategy`] with [`Strategy::prop_map`],
//! - range strategies over integers and floats, tuple strategies,
//! - [`collection::vec`],
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking**: failures report the
//! case index, and cases are a pure function of `(test name, case index)`,
//! so every failure replays deterministically.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic per-case RNG: a pure function of the test name and case
/// index, so failures replay exactly.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name decorrelates different properties.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15))
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (
        @cfg ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, Map, ProptestConfig, Strategy};

    /// Namespace mirror of real proptest's `prop::…` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (-1.0f64..1.0, 0.0f64..2.0).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn mapped_strategies_apply(p in pair()) {
            prop_assert!(p.0 >= -1.0 && p.0 < 1.0);
            prop_assert!(p.1 >= 0.0 && p.1 < 2.0);
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = 0.0f64..1.0;
        let a = s.sample(&mut crate::case_rng("t", 3));
        let b = s.sample(&mut crate::case_rng("t", 3));
        assert_eq!(a.to_bits(), b.to_bits());
        let c = s.sample(&mut crate::case_rng("t", 4));
        assert_ne!(a.to_bits(), c.to_bits());
    }
}
