//! Drive the `spnn-engine` Monte-Carlo engine from code: build a
//! scenario, run it, and read the sweep back — the programmatic
//! equivalent of `spnn run scenarios/fig4.scn`.
//!
//! Run with: `cargo run --release --example scenario_engine`

use spnn::prelude::*;

fn main() {
    // Start from the built-in Fig. 4 preset at a quick demo scale, then
    // customize it like any other value — the spec is plain data.
    let mut spec = spnn::engine::presets::fig4(&RunScale {
        mc: 40,
        n_train: 600,
        n_test: 200,
        epochs: 10,
        seed: 7,
        target_moe: 0.02, // adaptive: stop a point once its 95 % MoE ≤ 2 %
    });
    spec.sweep.sigmas = vec![0.0, 0.025, 0.05, 0.1];

    // The same spec serializes to the `.scn` text format:
    println!("--- scenario file ---\n{}", spec.to_text());

    let report = run_scenario(&spec, &EngineConfig::default()).expect("scenario runs");

    let t = &report.topologies[0];
    println!(
        "nominal accuracy {:.2}% (software {:.2}%)",
        t.nominal_accuracy * 100.0,
        t.software_accuracy * 100.0
    );
    println!(
        "{:<10} {:>7} {:>10} {:>8} {:>7} {:>6}",
        "mode", "sigma", "accuracy%", "moe95%", "iters", "early"
    );
    for row in &report.rows {
        println!(
            "{:<10} {:>7} {:>10.2} {:>8.2} {:>7} {:>6}",
            row.label("mode").unwrap_or("?"),
            row.label("sigma").unwrap_or("?"),
            row.mean * 100.0,
            row.moe95 * 100.0,
            row.iterations,
            row.stopped_early,
        );
    }
    println!(
        "\ntotal Monte-Carlo iterations: {} (cap would be {})",
        report.total_iterations(),
        spec.iterations * report.rows.len()
    );
    println!("\n--- CSV ---\n{}", spnn::engine::to_csv(&report));
}
