//! Finite phase-encoding precision: how many DAC bits does an SPNN need?
//!
//! The paper's introduction lists "the finite-encoding precision on phase
//! settings" among the roadblocks to SPNN scaling. This example quantizes
//! every commanded phase to a b-bit code over [0, 2π) and measures the
//! accuracy — first alone, then on top of mature-process random noise
//! (σ_PhS ≈ 0.0334, i.e. the paper's 0.21 rad figure).
//!
//! Run with: `cargo run --release --example phase_quantization`

use spnn::core::{HardwareEffects, PerturbationPlan};
use spnn::photonics::phase_shifter::quantize_phase;
use spnn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Device level: quantization error magnitude.
    println!("device level: worst-case phase error per DAC resolution");
    for bits in [2u32, 4, 6, 8] {
        let step = std::f64::consts::TAU / (1u64 << bits) as f64;
        println!(
            "  {bits} bits → step {:.4} rad, worst-case error {:.4} rad ({:.2}% of 2π)",
            step,
            step / 2.0,
            step / 2.0 / std::f64::consts::TAU * 100.0
        );
        // Sanity: quantizer respects the bound.
        let q = quantize_phase(1.234, bits);
        assert!((q - 1.234).abs() <= step / 2.0 + 1e-12);
    }

    // System level.
    println!("\ntraining SPNN…");
    let data = SpnnDataset::generate(&DatasetConfig {
        n_train: 1500,
        n_test: 400,
        crop: 4,
        seed: 23,
    });
    let mut net = ComplexNetwork::new(&[16, 16, 16, 10], 29);
    train(
        &mut net,
        &data.train_features,
        &data.train_labels,
        &TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
    );
    let hw = PhotonicNetwork::from_network(&net, MeshTopology::Clements, None)?;
    let nominal = hw.ideal_accuracy(&data.test_features, &data.test_labels);
    println!(
        "nominal accuracy (continuous phases): {:.1}%\n",
        nominal * 100.0
    );

    let mature_noise = UncertaintySpec::both(0.0334);
    println!(
        "{:>6} {:>16} {:>26}",
        "bits", "quantized only", "quantized + σ = 0.0334"
    );
    for bits in [2u32, 3, 4, 5, 6, 8] {
        let fx = HardwareEffects::with_quantization(bits);
        let clean = mc_accuracy(
            &hw,
            &PerturbationPlan::None,
            &fx,
            &data.test_features,
            &data.test_labels,
            1,
            7,
        );
        let noisy = mc_accuracy(
            &hw,
            &PerturbationPlan::global(mature_noise),
            &fx,
            &data.test_features,
            &data.test_labels,
            12,
            7 ^ bits as u64,
        );
        println!(
            "{bits:>6} {:>15.1}% {:>25.1}%",
            clean.mean * 100.0,
            noisy.mean * 100.0
        );
    }
    println!("\nonce the quantization step sinks below the analog noise floor, more bits stop paying off — precision budgets should target the process σ, not zero.");
    Ok(())
}
