//! Critical-component identification — the paper's design-time framework.
//!
//! Reproduces the Fig. 3 analysis (per-MZI average RVD on random 5×5
//! unitaries) and then applies the same machinery to a *trained* SPNN
//! layer, ranking its most uncertainty-critical MZIs before "fabrication".
//!
//! Run with: `cargo run --release --example critical_components`

use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn::core::criticality::{analyze_mesh, rank_by_rvd};
use spnn::linalg::random::haar_unitary;
use spnn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = UncertaintySpec::both(0.05);

    // Part 1 — Fig. 3: four random 5×5 unitaries, one faulty MZI at a time.
    println!("Fig. 3 style analysis: average RVD per faulty MZI (σ = 0.05, 200 iterations)");
    let mut rng = StdRng::seed_from_u64(2024);
    for m in 0..4 {
        let u = haar_unitary(5, &mut rng);
        let mesh = clements::decompose(&u)?;
        let report = analyze_mesh(&mesh, &spec, 200, 77 + m);
        print!("  matrix {m}: ");
        for (i, v) in report.rvd_profile.iter().enumerate() {
            print!("#{:<2}{v:.2} ", i + 1);
        }
        println!();
        println!(
            "    most critical MZI: #{} (RVD {:.2}); spread {:.2}–{:.2}; phase-load proxy agreement {:+.2}",
            report.most_critical + 1,
            report.rvd_range.1,
            report.rvd_range.0,
            report.rvd_range.1,
            report.proxy_agreement
        );
    }

    // Part 2 — the same analysis on a trained layer of the real SPNN.
    println!("\ntraining an SPNN to analyze its first unitary multiplier…");
    let data = SpnnDataset::generate(&DatasetConfig {
        n_train: 1000,
        n_test: 200,
        crop: 4,
        seed: 3,
    });
    let mut net = ComplexNetwork::new(&[16, 16, 16, 10], 5);
    train(
        &mut net,
        &data.train_features,
        &data.train_labels,
        &TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        },
    );
    let hw = PhotonicNetwork::from_network(&net, MeshTopology::Clements, None)?;
    let u_mesh = hw.layers()[0].u_mesh();
    let top = rank_by_rvd(u_mesh, &spec, 50, 11);
    println!(
        "U_L0 mesh: {} MZIs; ten most critical (index, avg RVD):",
        u_mesh.n_mzis()
    );
    for (idx, score) in top.iter().take(10) {
        let site = &u_mesh.mzis()[*idx];
        println!(
            "  MZI {idx:>3}  column {:>2}, modes ({},{})  θ={:.2} φ={:.2}  RVD {score:.3}",
            site.column,
            site.top,
            site.top + 1,
            site.theta,
            site.phi
        );
    }
    println!("\nthe paper: such pre-fabrication analysis lets designers harden or recalibrate exactly these devices.");
    Ok(())
}
