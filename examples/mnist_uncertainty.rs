//! EXP 1 in miniature: the three Fig. 4 curves (PhS-only, BeS-only, both)
//! on a freshly trained SPNN, printed as an ASCII chart.
//!
//! Run with: `cargo run --release --example mnist_uncertainty`

use spnn::core::exp1::{run, Exp1Config};
use spnn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training SPNN on synthetic MNIST-style digits…");
    let data = SpnnDataset::generate(&DatasetConfig {
        n_train: 2000,
        n_test: 500,
        crop: 4,
        seed: 11,
    });
    let mut net = ComplexNetwork::new(&[16, 16, 16, 10], 3);
    train(
        &mut net,
        &data.train_features,
        &data.train_labels,
        &TrainConfig {
            epochs: 35,
            ..TrainConfig::default()
        },
    );
    let hw = PhotonicNetwork::from_network(&net, MeshTopology::Clements, Some(5))?;
    let nominal = hw.ideal_accuracy(&data.test_features, &data.test_labels);
    println!("nominal accuracy: {:.1}%\n", nominal * 100.0);

    let cfg = Exp1Config {
        sigmas: vec![0.0, 0.01, 0.025, 0.05, 0.075, 0.1, 0.15],
        iterations: 15,
        seed: 21,
        ..Exp1Config::default()
    };
    let points = run(&hw, &data.test_features, &data.test_labels, &cfg);

    // ASCII rendition of Fig. 4.
    println!("accuracy (%) vs σ — the three curves of Fig. 4:");
    println!(
        "{:>7} {:>10} {:>10} {:>10}",
        "σ", "PhS-only", "BeS-only", "both"
    );
    for &sigma in &cfg.sigmas {
        let find = |mode: PerturbTarget| {
            points
                .iter()
                .find(|p| p.mode == mode && (p.sigma - sigma).abs() < 1e-12)
                .map(|p| p.result.mean * 100.0)
                .unwrap_or(f64::NAN)
        };
        let phs = find(PerturbTarget::PhaseShiftersOnly);
        let bes = find(PerturbTarget::BeamSplittersOnly);
        let both = find(PerturbTarget::Both);
        let bar_len = (both / 2.0).round().max(0.0) as usize;
        println!(
            "{sigma:>7.3} {phs:>10.1} {bes:>10.1} {both:>10.1}  |{}",
            "█".repeat(bar_len)
        );
    }

    println!("\nexpected shape (paper Fig. 4): steep decline, saturation near 10%");
    println!("(random guess) around σ ≈ 0.075, and PhS curves below BeS curves.");
    Ok(())
}
