//! Thermal-crosstalk study: how mutual heating between neighbouring
//! micro-heaters (paper §II-C, ref. \[8\]) corrupts a unitary multiplier —
//! at the physics level (phase offsets) and at the layer level (RVD).
//!
//! Run with: `cargo run --release --example thermal_crosstalk`

use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn::core::{HardwareEffects, PerturbationPlan};
use spnn::linalg::random::haar_unitary;
use spnn::mesh::rvd::rvd;
use spnn::photonics::thermal::{HeaterPosition, ThermalCrosstalk};
use spnn::photonics::PhaseShifter;
use spnn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Component level: two neighbouring heaters.
    println!("component level: π-driven aggressor next to an idle victim");
    let model = ThermalCrosstalk::new(0.01, 60.0);
    for gap_um in [20.0, 40.0, 80.0, 160.0] {
        let errors = model.phase_errors(
            &[std::f64::consts::PI, 0.0],
            &[
                HeaterPosition::new(0.0, 0.0),
                HeaterPosition::new(0.0, gap_um),
            ],
        );
        println!(
            "  gap {gap_um:>5.0} µm → victim phase error {:.4} rad ({:.2}% of π)",
            errors[1],
            errors[1] / std::f64::consts::PI * 100.0
        );
    }

    // Also show the underlying thermo-optic physics.
    let ps = PhaseShifter::new(std::f64::consts::PI);
    println!(
        "\nthermo-optic phase shifter (l = {:.0} µm): dφ/dT = {:.4} rad/K, ΔT for π = {:.1} K, heater power ≈ {:.1} mW",
        ps.length() * 1e6,
        ps.phase_per_kelvin(),
        ps.temperature_delta_k(),
        ps.heater_power_w() * 1e3
    );

    // Layer level: RVD of a 16×16 unitary under increasing coupling.
    println!("\nlayer level: RVD of a 16×16 Clements mesh vs coupling strength κ");
    let u = haar_unitary(16, &mut StdRng::seed_from_u64(33));
    let mesh = clements::decompose(&u)?;
    let intended = mesh.matrix();
    for kappa in [0.0, 0.001, 0.005, 0.01, 0.02] {
        let fx = if kappa > 0.0 {
            HardwareEffects::with_thermal(ThermalCrosstalk::new(kappa, 60.0))
        } else {
            HardwareEffects::default()
        };
        let offsets = fx.mesh_crosstalk(&mesh);
        let realized = mesh.matrix_with(|i, site| {
            let (dt, dp) = offsets.get(i).unwrap_or((0.0, 0.0));
            Mzi::ideal(site.theta + dt, site.phi + dp)
        });
        println!("  κ = {kappa:<6}: RVD = {:.4}", rvd(&realized, &intended));
    }

    // System level: accuracy of a small trained SPNN vs κ.
    println!("\nsystem level: trained SPNN accuracy vs κ (deterministic, no random FPV)");
    let data = SpnnDataset::generate(&DatasetConfig {
        n_train: 1000,
        n_test: 300,
        crop: 4,
        seed: 13,
    });
    let mut net = ComplexNetwork::new(&[16, 16, 16, 10], 17);
    train(
        &mut net,
        &data.train_features,
        &data.train_labels,
        &TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        },
    );
    let hw = PhotonicNetwork::from_network(&net, MeshTopology::Clements, None)?;
    let nominal = hw.ideal_accuracy(&data.test_features, &data.test_labels);
    println!("  κ = 0 (nominal): {:.1}%", nominal * 100.0);
    for kappa in [0.002, 0.005, 0.01, 0.02] {
        let fx = HardwareEffects::with_thermal(ThermalCrosstalk::new(kappa, 60.0));
        let r = mc_accuracy(
            &hw,
            &PerturbationPlan::None,
            &fx,
            &data.test_features,
            &data.test_labels,
            1, // deterministic effect → single evaluation
            1,
        );
        println!(
            "  κ = {kappa:<6}: {:.1}%  (−{:.1} pts)",
            r.mean * 100.0,
            (nominal - r.mean) * 100.0
        );
    }
    println!("\ncrosstalk is deterministic given the tuned phases — a calibration loop could cancel it (ref. [9]), unlike random FPVs.");
    Ok(())
}
