//! Quickstart: train a small SPNN, map it to photonic hardware, and measure
//! how fabrication-process variations degrade its accuracy.
//!
//! Run with: `cargo run --release --example quickstart`

use spnn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate the synthetic digit dataset and the paper's 4×4-crop
    //    shifted-FFT complex features (16 per image).
    println!("generating dataset…");
    let data = SpnnDataset::generate(&DatasetConfig {
        n_train: 1500,
        n_test: 400,
        crop: 4,
        seed: 7,
    });

    // 2. Train the paper's 16-16-16-10 complex-valued network in software.
    println!("training 16-16-16-10 complex network…");
    let mut net = ComplexNetwork::new(&[16, 16, 16, 10], 1);
    let report = train(
        &mut net,
        &data.train_features,
        &data.train_labels,
        &TrainConfig {
            epochs: 30,
            batch_size: 32,
            learning_rate: 0.01,
            ..TrainConfig::default()
        },
    );
    println!("  train accuracy: {:.1}%", report.train_accuracy * 100.0);
    let test_acc = net.accuracy(&data.test_features, &data.test_labels);
    println!("  test accuracy:  {:.1}%", test_acc * 100.0);

    // 3. Map every weight matrix onto MZI meshes (SVD + Clements design).
    let hw = PhotonicNetwork::from_network(&net, MeshTopology::Clements, None)?;
    let census = ComponentCensus::of(&hw);
    println!(
        "photonic mapping: {} MZIs, {} tunable phase shifters",
        census.total_mzis(),
        census.total_phase_shifters()
    );
    let nominal = hw.ideal_accuracy(&data.test_features, &data.test_labels);
    println!("  nominal hardware accuracy: {:.1}%", nominal * 100.0);

    // 4. Inject the paper's uncertainties and watch the accuracy collapse.
    println!("\naccuracy under global uncertainties (20 Monte-Carlo iterations each):");
    for sigma in [0.01, 0.025, 0.05, 0.1] {
        let plan = PerturbationPlan::global(UncertaintySpec::both(sigma));
        let r = mc_accuracy(
            &hw,
            &plan,
            &HardwareEffects::default(),
            &data.test_features,
            &data.test_labels,
            20,
            42,
        );
        println!(
            "  σ_PhS = σ_BeS = {sigma:<5}: {:5.1}%  (−{:.1} pts, ±{:.1})",
            r.mean * 100.0,
            (nominal - r.mean) * 100.0,
            r.margin_of_error_95() * 100.0
        );
    }
    println!("\nthe paper's headline: at σ = 0.05 a 16-16-16-10 SPNN loses ~70 pts of accuracy.");
    Ok(())
}
