//! Property-based tests for the photonic component and device models.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_photonics::mzi::{first_order_deviation, ideal_transfer, phase_sensitivity};
use spnn_photonics::phase_shifter::quantize_phase;
use spnn_photonics::spatial::SpatialField;
use spnn_photonics::thermal::{HeaterPosition, ThermalCrosstalk};
use spnn_photonics::{BeamSplitter, Mzi, PhaseShifter, UncertaintySpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn phase_shifter_transfer_is_always_unit_modulus(phase in -20.0f64..20.0) {
        let ps = PhaseShifter::new(phase);
        prop_assert!((ps.transfer().abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thermo_optic_roundtrip(phase in 0.01f64..10.0, len_um in 10.0f64..500.0) {
        let ps = PhaseShifter::with_length(phase, len_um * 1e-6);
        let dt = ps.temperature_delta_k();
        prop_assert!((dt * ps.phase_per_kelvin() - phase).abs() < 1e-9);
    }

    #[test]
    fn beam_splitter_lossless_for_any_reflectance(r in -0.5f64..1.5) {
        let b = BeamSplitter::from_reflectance(r);
        prop_assert!(b.is_lossless(1e-12));
        prop_assert!(b.matrix().is_unitary(1e-12));
        prop_assert!((0.0..=1.0).contains(&b.reflectance()));
    }

    #[test]
    fn mzi_closed_form_equals_composition(
        theta in 0.0f64..std::f64::consts::TAU,
        phi in 0.0f64..std::f64::consts::TAU,
        r1 in 0.3f64..0.95,
        r2 in 0.3f64..0.95,
    ) {
        let mzi = Mzi::with_splitters(
            theta,
            phi,
            BeamSplitter::from_reflectance(r1),
            BeamSplitter::from_reflectance(r2),
        );
        prop_assert!(mzi
            .transfer_matrix()
            .approx_eq(&mzi.transfer_matrix_composed(), 1e-11));
    }

    #[test]
    fn eq3_matches_finite_differences_everywhere(
        theta in 0.1f64..6.0,
        phi in 0.1f64..6.0,
    ) {
        let (d_theta, d_phi) = phase_sensitivity(theta, phi);
        let h = 1e-6;
        let base = ideal_transfer(theta, phi);
        let bt = ideal_transfer(theta + h, phi);
        let bp = ideal_transfer(theta, phi + h);
        for r in 0..2 {
            for c in 0..2 {
                let fd_t = (bt[(r, c)] - base[(r, c)]).scale(1.0 / h);
                let fd_p = (bp[(r, c)] - base[(r, c)]).scale(1.0 / h);
                prop_assert!(fd_t.approx_eq(d_theta[(r, c)], 1e-4));
                prop_assert!(fd_p.approx_eq(d_phi[(r, c)], 1e-4));
            }
        }
    }

    #[test]
    fn eq4_is_linear_in_k(theta in 0.1f64..6.0, phi in 0.1f64..6.0, k in 0.001f64..0.2) {
        let d1 = first_order_deviation(theta, phi, k);
        let d2 = first_order_deviation(theta, phi, 2.0 * k);
        for r in 0..2 {
            for c in 0..2 {
                prop_assert!(d2[(r, c)].approx_eq(d1[(r, c)].scale(2.0), 1e-10));
            }
        }
    }

    #[test]
    fn quantization_error_bounded(phase in -50.0f64..50.0, bits in 1u32..12) {
        let q = quantize_phase(phase, bits);
        let step = std::f64::consts::TAU / (1u64 << bits) as f64;
        let wrapped = phase.rem_euclid(std::f64::consts::TAU);
        let direct = (q - wrapped).abs();
        let circular = direct.min(std::f64::consts::TAU - direct);
        prop_assert!(circular <= step / 2.0 + 1e-9);
    }

    #[test]
    fn perturbed_devices_remain_unitary(
        theta in 0.0f64..std::f64::consts::TAU,
        phi in 0.0f64..std::f64::consts::TAU,
        sigma in 0.0f64..0.15,
        seed in 0u64..500,
    ) {
        let spec = UncertaintySpec::both(sigma.max(1e-9));
        let mut rng = StdRng::seed_from_u64(seed);
        let dev = spec.perturb_mzi(&Mzi::ideal(theta, phi), &mut rng);
        prop_assert!(dev.transfer_matrix().is_unitary(1e-9));
    }

    #[test]
    fn crosstalk_errors_are_nonnegative_and_bounded(
        kappa in 0.0f64..0.05,
        pitch in 20.0f64..200.0,
        n in 2usize..10,
    ) {
        let model = ThermalCrosstalk::new(kappa, 60.0);
        let positions: Vec<HeaterPosition> = (0..n)
            .map(|i| HeaterPosition::new(0.0, i as f64 * pitch))
            .collect();
        let phases = vec![std::f64::consts::PI; n];
        let errors = model.phase_errors(&phases, &positions);
        for e in errors {
            prop_assert!(e >= 0.0);
            // Bound: κ·Σ exp(−d/d₀)·2π with n−1 aggressors.
            prop_assert!(e <= kappa * (n as f64) * std::f64::consts::TAU);
        }
    }

    #[test]
    fn spatial_field_is_smooth(seed in 0u64..200, x in 0.0f64..2000.0, y in 0.0f64..2000.0) {
        // |f(p) − f(p + δ)| is small for δ ≪ correlation length.
        let field = SpatialField::new(seed, 500.0, 8);
        let a = field.value(x, y);
        let b = field.value(x + 1.0, y + 1.0);
        prop_assert!((a - b).abs() < 0.1, "field jumped: {a} vs {b}");
    }

    #[test]
    fn extinction_ratio_decreases_with_imbalance(base in 0.0f64..0.02, extra in 0.01f64..0.1) {
        let er_small = Mzi::ideal(0.0, 0.0)
            .with_splitter_errors(base, 0.0)
            .extinction_ratio_db();
        let er_large = Mzi::ideal(0.0, 0.0)
            .with_splitter_errors(base + extra, 0.0)
            .extinction_ratio_db();
        prop_assert!(er_small >= er_large);
    }
}
