//! Mach–Zehnder interferometer device model (device level, paper §III-B).
//!
//! An MZI is two phase shifters (`φ` at the input, `θ` between the
//! splitters, both on the upper arm) and two beam splitters:
//!
//! ```text
//! T_MZI(θ, φ) = U_BeS · U_PhS(θ) · U_BeS · U_PhS(φ)        (paper Eq. 1)
//! ```
//!
//! With ideal 50:50 splitters this evaluates to the closed form
//!
//! ```text
//!         ⎛ e^{iφ}(e^{iθ}−1)/2     i(e^{iθ}+1)/2  ⎞
//! T_MZI = ⎜                                        ⎟
//!         ⎝ ie^{iφ}(e^{iθ}+1)/2   −(e^{iθ}−1)/2   ⎠
//! ```
//!
//! and with non-ideal splitters (reflectances `r`, `r′`, transmittances
//! `t`, `t′`) to Eq. (5) of the paper. The first-order sensitivity to phase
//! errors, Eqs. (3)–(4), generates the Fig. 2 deviation surfaces.

use crate::beam_splitter::BeamSplitter;
use spnn_linalg::{CMatrix, C64};

/// A 2×2 Mach–Zehnder interferometer.
///
/// # Example
///
/// ```
/// use spnn_photonics::Mzi;
///
/// // θ = π puts the MZI in the full "bar↔cross" switching point.
/// let mzi = Mzi::ideal(std::f64::consts::PI, 0.0);
/// let t = mzi.transfer_matrix();
/// assert!(t.is_unitary(1e-12));
/// // At θ = π all power exits the bar port: |T11| = 1.
/// assert!((t[(0, 0)].abs() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mzi {
    theta: f64,
    phi: f64,
    bs_in: BeamSplitter,
    bs_out: BeamSplitter,
    loss_db: f64,
}

impl Mzi {
    /// Creates an MZI with ideal 50:50 splitters and no excess loss.
    pub fn ideal(theta: f64, phi: f64) -> Self {
        Self {
            theta,
            phi,
            bs_in: BeamSplitter::ideal_50_50(),
            bs_out: BeamSplitter::ideal_50_50(),
            loss_db: 0.0,
        }
    }

    /// Creates an MZI with explicit (possibly imperfect) splitters.
    ///
    /// `bs_in` is the splitter the light meets first (after the `φ`
    /// shifter); in the paper's Eq. (5) notation it carries `(r, t)` and
    /// `bs_out` carries `(r′, t′)`.
    pub fn with_splitters(theta: f64, phi: f64, bs_in: BeamSplitter, bs_out: BeamSplitter) -> Self {
        Self {
            theta,
            phi,
            bs_in,
            bs_out,
            loss_db: 0.0,
        }
    }

    /// Returns a copy with the given excess insertion loss in dB (≥ 0),
    /// applied as a uniform amplitude factor `10^{−loss/20}`.
    ///
    /// # Panics
    ///
    /// Panics if `loss_db < 0` (gain is modeled by the β layer, not here).
    #[must_use]
    pub fn with_loss_db(mut self, loss_db: f64) -> Self {
        assert!(loss_db >= 0.0, "insertion loss must be non-negative");
        self.loss_db = loss_db;
        self
    }

    /// Internal phase `θ` (controls the splitting ratio of the device).
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Input phase `φ` (controls the relative output phase).
    #[inline]
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// The input-side beam splitter `(r, t)`.
    #[inline]
    pub fn splitter_in(&self) -> BeamSplitter {
        self.bs_in
    }

    /// The output-side beam splitter `(r′, t′)`.
    #[inline]
    pub fn splitter_out(&self) -> BeamSplitter {
        self.bs_out
    }

    /// Excess insertion loss in dB.
    #[inline]
    pub fn loss_db(&self) -> f64 {
        self.loss_db
    }

    /// Returns a copy with perturbed phases (`θ + dθ`, `φ + dφ`).
    #[must_use]
    pub fn with_phase_errors(&self, d_theta: f64, d_phi: f64) -> Self {
        Self {
            theta: self.theta + d_theta,
            phi: self.phi + d_phi,
            ..*self
        }
    }

    /// Returns a copy with perturbed splitter reflectances (`r + dr`,
    /// `r′ + dr′`), both kept lossless.
    #[must_use]
    pub fn with_splitter_errors(&self, dr_in: f64, dr_out: f64) -> Self {
        Self {
            bs_in: self.bs_in.perturbed(dr_in),
            bs_out: self.bs_out.perturbed(dr_out),
            ..*self
        }
    }

    /// The 2×2 transfer matrix, using the general non-ideal-BeS closed form
    /// (paper Eq. 5), which reduces to Eq. (1) for ideal 50:50 splitters.
    /// Includes the insertion-loss amplitude factor.
    pub fn transfer_matrix(&self) -> CMatrix {
        let (r, t) = (self.bs_in.reflectance(), self.bs_in.transmittance());
        let (rp, tp) = (self.bs_out.reflectance(), self.bs_out.transmittance());
        let e_tp = C64::cis(self.theta + self.phi); // e^{i(θ+φ)}
        let e_t = C64::cis(self.theta); // e^{iθ}
        let e_p = C64::cis(self.phi); // e^{iφ}
        let i = C64::i();

        let mut m = CMatrix::zeros(2, 2);
        m[(0, 0)] = e_tp.scale(r * rp) - e_p.scale(t * tp);
        m[(0, 1)] = i * e_t.scale(rp * t) + i.scale(tp * r);
        m[(1, 0)] = i * e_tp.scale(tp * r) + i * e_p.scale(t * rp);
        m[(1, 1)] = -e_t.scale(t * tp) + C64::from(r * rp);

        let amp = loss_amplitude(self.loss_db);
        if amp != 1.0 {
            m.map_inplace(|z| z.scale(amp));
        }
        m
    }

    /// The same transfer matrix built compositionally as
    /// `U_BeS(out) · U_PhS(θ) · U_BeS(in) · U_PhS(φ)` — used to cross-check
    /// the closed form (they must agree to machine precision).
    pub fn transfer_matrix_composed(&self) -> CMatrix {
        let phase = |x: f64| {
            let mut m = CMatrix::identity(2);
            m[(0, 0)] = C64::cis(x);
            m
        };
        let m = self
            .bs_out
            .matrix()
            .mul(&phase(self.theta))
            .mul(&self.bs_in.matrix())
            .mul(&phase(self.phi));
        let amp = loss_amplitude(self.loss_db);
        if amp != 1.0 {
            let mut m = m;
            m.map_inplace(|z| z.scale(amp));
            return m;
        }
        m
    }

    /// Bar-path amplitude `T₁₁` — the transmission used when the MZI acts as
    /// a terminated attenuator in the diagonal Σ line (paper §II-B).
    pub fn bar_amplitude(&self) -> C64 {
        self.transfer_matrix()[(0, 0)]
    }

    /// Extinction ratio of the bar port in dB: the max/min power
    /// transmission achievable by sweeping `θ` with the *fabricated*
    /// splitters held fixed.
    ///
    /// `|T₁₁| = |r·r′·e^{iθ} − t·t′|` ranges over `[|rr′ − tt′|, rr′ + tt′]`,
    /// so `ER = 20·log₁₀((rr′ + tt′)/|rr′ − tt′|)`. Ideal 50:50 splitters
    /// give `rr′ = tt′` and therefore **infinite** ER; any splitter
    /// imbalance makes the ER finite, which is why fabricated BeS errors
    /// cannot be tuned away with the phase shifters (paper §II-C) — the
    /// quantitative limit used by the calibration study.
    pub fn extinction_ratio_db(&self) -> f64 {
        let rr = self.bs_in.reflectance() * self.bs_out.reflectance();
        let tt = self.bs_in.transmittance() * self.bs_out.transmittance();
        let max = rr + tt;
        let min = (rr - tt).abs();
        if min == 0.0 {
            f64::INFINITY
        } else {
            20.0 * (max / min).log10()
        }
    }
}

impl Default for Mzi {
    /// An untuned ideal MZI (`θ = φ = 0`), which is the full-cross state.
    fn default() -> Self {
        Self::ideal(0.0, 0.0)
    }
}

/// Converts an insertion loss in dB to an amplitude factor `10^{−dB/20}`.
pub fn loss_amplitude(loss_db: f64) -> f64 {
    if loss_db == 0.0 {
        1.0
    } else {
        10f64.powf(-loss_db / 20.0)
    }
}

/// The ideal MZI transfer matrix of Eq. (1) as a free function —
/// convenient for mesh synthesis where no device state is needed.
///
/// Closed form: `T = i·e^{iθ/2}·[[e^{iφ}·sin(θ/2), cos(θ/2)],
/// [e^{iφ}·cos(θ/2), −sin(θ/2)]]`, identical to Eq. (1).
pub fn ideal_transfer(theta: f64, phi: f64) -> CMatrix {
    let half = theta / 2.0;
    let (s, c) = (half.sin(), half.cos());
    let pre = C64::i() * C64::cis(half);
    let e_p = C64::cis(phi);
    let mut m = CMatrix::zeros(2, 2);
    m[(0, 0)] = pre * e_p.scale(s);
    m[(0, 1)] = pre.scale(c);
    m[(1, 0)] = pre * e_p.scale(c);
    m[(1, 1)] = pre.scale(-s);
    m
}

/// First-order sensitivity of the ideal transfer matrix to phase errors:
/// `(∂T/∂θ, ∂T/∂φ)` per Eq. (3) of the paper.
pub fn phase_sensitivity(theta: f64, phi: f64) -> (CMatrix, CMatrix) {
    let e_tp = C64::cis(theta + phi);
    let e_t = C64::cis(theta);
    let e_p = C64::cis(phi);
    let i = C64::i();
    let half = 0.5;

    let mut d_theta = CMatrix::zeros(2, 2);
    d_theta[(0, 0)] = (i * e_tp).scale(half);
    d_theta[(0, 1)] = -e_t.scale(half);
    d_theta[(1, 0)] = -e_tp.scale(half);
    d_theta[(1, 1)] = -(i * e_t).scale(half);

    let mut d_phi = CMatrix::zeros(2, 2);
    d_phi[(0, 0)] = (i * e_p * (e_t - C64::one())).scale(half);
    d_phi[(0, 1)] = C64::zero();
    d_phi[(1, 0)] = -(e_p * (e_t + C64::one())).scale(half);
    d_phi[(1, 1)] = C64::zero();

    (d_theta, d_phi)
}

/// First-order deviation `ΔT` under a *common relative* phase error
/// `Δθ/θ = Δφ/φ = k` — Eq. (4) of the paper, used for the Fig. 2 surfaces.
pub fn first_order_deviation(theta: f64, phi: f64, k: f64) -> CMatrix {
    let (d_theta, d_phi) = phase_sensitivity(theta, phi);
    let mut out = CMatrix::zeros(2, 2);
    for r in 0..2 {
        for c in 0..2 {
            out[(r, c)] = (d_theta[(r, c)].scale(theta) + d_phi[(r, c)].scale(phi)).scale(k);
        }
    }
    out
}

/// Element-wise relative deviation `|ΔTᵢⱼ| / |Tᵢⱼ|` for a common relative
/// phase error `k` — the quantity plotted in Fig. 2(a)–(d).
///
/// Elements whose nominal modulus is below `eps` yield `f64::INFINITY`
/// (the deviation ratio genuinely diverges at the transfer-matrix zeros).
pub fn relative_deviation(theta: f64, phi: f64, k: f64, eps: f64) -> [[f64; 2]; 2] {
    let t = ideal_transfer(theta, phi);
    let dt = first_order_deviation(theta, phi, k);
    let mut out = [[0.0; 2]; 2];
    for r in 0..2 {
        for c in 0..2 {
            let denom = t[(r, c)].abs();
            out[r][c] = if denom > eps {
                dt[(r, c)].abs() / denom
            } else {
                f64::INFINITY
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn closed_form_matches_composition_ideal() {
        for &theta in &[0.0, 0.3, FRAC_PI_2, PI, 2.5, TAU - 0.1] {
            for &phi in &[0.0, 0.7, PI, 4.0] {
                let mzi = Mzi::ideal(theta, phi);
                assert!(
                    mzi.transfer_matrix()
                        .approx_eq(&mzi.transfer_matrix_composed(), 1e-12),
                    "mismatch at θ={theta}, φ={phi}"
                );
            }
        }
    }

    #[test]
    fn closed_form_matches_composition_non_ideal() {
        let bs1 = BeamSplitter::from_reflectance(0.6);
        let bs2 = BeamSplitter::from_reflectance(0.8);
        for &theta in &[0.4, 1.9, 3.3] {
            for &phi in &[0.1, 2.2, 5.0] {
                let mzi = Mzi::with_splitters(theta, phi, bs1, bs2);
                assert!(
                    mzi.transfer_matrix()
                        .approx_eq(&mzi.transfer_matrix_composed(), 1e-12),
                    "mismatch at θ={theta}, φ={phi}"
                );
            }
        }
    }

    #[test]
    fn eq1_verbatim() {
        // Check the paper's Eq. (1) entries literally.
        let (theta, phi) = (1.1, 0.4);
        let t = Mzi::ideal(theta, phi).transfer_matrix();
        let e_t = C64::cis(theta);
        let e_p = C64::cis(phi);
        let i = C64::i();
        let one = C64::one();
        assert!(t[(0, 0)].approx_eq((e_p * (e_t - one)).scale(0.5), 1e-12));
        assert!(t[(0, 1)].approx_eq((i * (e_t + one)).scale(0.5), 1e-12));
        assert!(t[(1, 0)].approx_eq((i * e_p * (e_t + one)).scale(0.5), 1e-12));
        assert!(t[(1, 1)].approx_eq((one - e_t).scale(0.5), 1e-12));
    }

    #[test]
    fn ideal_transfer_free_function_matches_struct() {
        for &theta in &[0.0, 0.9, PI, 5.1] {
            for &phi in &[0.0, 1.3, 4.4] {
                let a = ideal_transfer(theta, phi);
                let b = Mzi::ideal(theta, phi).transfer_matrix();
                assert!(a.approx_eq(&b, 1e-12), "θ={theta}, φ={phi}");
            }
        }
    }

    #[test]
    fn unitary_for_lossless_splitters() {
        let mzi = Mzi::with_splitters(
            1.2,
            0.3,
            BeamSplitter::from_reflectance(0.55),
            BeamSplitter::from_reflectance(0.75),
        );
        assert!(mzi.transfer_matrix().is_unitary(1e-12));
    }

    #[test]
    fn bar_and_cross_states() {
        // θ = π: bar state (|T11| = 1). θ = 0: cross state (|T01| = 1).
        let bar = Mzi::ideal(PI, 0.0).transfer_matrix();
        assert!((bar[(0, 0)].abs() - 1.0).abs() < 1e-12);
        assert!(bar[(0, 1)].abs() < 1e-12);
        let cross = Mzi::ideal(0.0, 0.0).transfer_matrix();
        assert!((cross[(0, 1)].abs() - 1.0).abs() < 1e-12);
        assert!(cross[(0, 0)].abs() < 1e-12);
    }

    #[test]
    fn theta_controls_power_split() {
        // |T11|² = sin²(θ/2): tunable splitter.
        for &theta in &[0.2, 1.0, 2.0, 3.0] {
            let t = Mzi::ideal(theta, 0.7).transfer_matrix();
            let expect = (theta / 2.0).sin().powi(2);
            assert!((t[(0, 0)].abs_sq() - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn sensitivity_matches_finite_differences() {
        let (theta, phi) = (1.3, 2.1);
        let (d_theta, d_phi) = phase_sensitivity(theta, phi);
        let h = 1e-6;
        let base = ideal_transfer(theta, phi);
        let bumped_t = ideal_transfer(theta + h, phi);
        let bumped_p = ideal_transfer(theta, phi + h);
        for r in 0..2 {
            for c in 0..2 {
                let fd_t = (bumped_t[(r, c)] - base[(r, c)]).scale(1.0 / h);
                let fd_p = (bumped_p[(r, c)] - base[(r, c)]).scale(1.0 / h);
                assert!(fd_t.approx_eq(d_theta[(r, c)], 1e-5), "dθ ({r},{c})");
                assert!(fd_p.approx_eq(d_phi[(r, c)], 1e-5), "dφ ({r},{c})");
            }
        }
    }

    #[test]
    fn eq4_matches_eq3_combination() {
        let (theta, phi, k) = (0.9, 1.7, 0.05);
        let dev = first_order_deviation(theta, phi, k);
        // ΔT = K(θ·∂T/∂θ + φ·∂T/∂φ); check the paper's explicit entries.
        let e_tp = C64::cis(theta + phi);
        let e_t = C64::cis(theta);
        let e_p = C64::cis(phi);
        let i = C64::i();
        let expect00 = ((i * e_tp).scale(theta + phi) - (i * e_p).scale(phi)).scale(k / 2.0);
        let expect01 = (-e_t.scale(theta)).scale(k / 2.0);
        let expect10 = (-e_tp.scale(theta + phi) - e_p.scale(phi)).scale(k / 2.0);
        let expect11 = (-(i * e_t).scale(theta)).scale(k / 2.0);
        assert!(dev[(0, 0)].approx_eq(expect00, 1e-12));
        assert!(dev[(0, 1)].approx_eq(expect01, 1e-12));
        assert!(dev[(1, 0)].approx_eq(expect10, 1e-12));
        assert!(dev[(1, 1)].approx_eq(expect11, 1e-12));
    }

    #[test]
    fn relative_deviation_t22_known_value() {
        // |ΔT22|/|T22| = K·θ/(2·sin(θ/2)) for any φ.
        let (theta, phi, k) = (2.0, 1.0, 0.05);
        let rd = relative_deviation(theta, phi, k, 1e-12);
        let expect = k * theta / (2.0 * (theta / 2.0).sin());
        assert!((rd[1][1] - expect).abs() < 1e-12);
    }

    #[test]
    fn relative_deviation_grows_with_phases() {
        // Paper Fig. 2 observation: deviation increases with θ and φ
        // (checked for T11 in the interior region).
        let k = 0.05;
        let rd_small = relative_deviation(1.0, 1.0, k, 1e-9)[0][0];
        let rd_large = relative_deviation(2.5, 2.5, k, 1e-9)[0][0];
        assert!(rd_large > rd_small);
    }

    #[test]
    fn relative_deviation_diverges_at_zeros() {
        // T11 = 0 at θ = 0 ⇒ infinite relative deviation.
        let rd = relative_deviation(0.0, 1.0, 0.05, 1e-9);
        assert!(rd[0][0].is_infinite());
    }

    #[test]
    fn loss_reduces_power_uniformly() {
        use spnn_linalg::vector::norm_sq;
        let mzi = Mzi::ideal(1.0, 0.5).with_loss_db(3.0);
        let input = vec![C64::one(), C64::zero()];
        let out = mzi.transfer_matrix().mul_vec(&input);
        let expect = 10f64.powf(-3.0 / 10.0); // 3 dB ≈ half power
        assert!((norm_sq(&out) - expect).abs() < 1e-9);
    }

    #[test]
    fn with_phase_errors_shifts_parameters() {
        let mzi = Mzi::ideal(1.0, 2.0).with_phase_errors(0.1, -0.2);
        assert!((mzi.theta() - 1.1).abs() < 1e-15);
        assert!((mzi.phi() - 1.8).abs() < 1e-15);
    }

    #[test]
    fn with_splitter_errors_stays_lossless() {
        let mzi = Mzi::ideal(1.0, 2.0).with_splitter_errors(0.05, -0.08);
        assert!(mzi.splitter_in().is_lossless(1e-12));
        assert!(mzi.splitter_out().is_lossless(1e-12));
        assert!(mzi.transfer_matrix().is_unitary(1e-12));
    }

    #[test]
    fn bar_amplitude_matches_t11() {
        let mzi = Mzi::ideal(0.8, 1.9);
        assert!(mzi
            .bar_amplitude()
            .approx_eq(mzi.transfer_matrix()[(0, 0)], 1e-15));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_loss_panics() {
        let _ = Mzi::ideal(0.0, 0.0).with_loss_db(-1.0);
    }

    #[test]
    fn ideal_mzi_has_infinite_extinction_ratio() {
        assert!(Mzi::ideal(1.0, 0.0).extinction_ratio_db().is_infinite());
    }

    #[test]
    fn splitter_imbalance_makes_extinction_finite() {
        let er = |dr: f64| {
            Mzi::ideal(1.0, 0.0)
                .with_splitter_errors(dr, 0.0)
                .extinction_ratio_db()
        };
        let small = er(0.01);
        let large = er(0.05);
        assert!(small.is_finite() && large.is_finite());
        assert!(
            small > large,
            "bigger imbalance ⇒ worse ER: {small} vs {large}"
        );
        assert!(large > 10.0, "5% error still leaves a usable device");
    }

    #[test]
    fn extinction_ratio_matches_theta_sweep() {
        // Brute-force sweep of |T11|² must reach the closed-form extremes.
        let mzi = Mzi::ideal(0.0, 0.0).with_splitter_errors(0.07, -0.04);
        let mut min_p = f64::INFINITY;
        let mut max_p = 0.0f64;
        for k in 0..=2000 {
            let theta = TAU * k as f64 / 2000.0;
            let p = Mzi::with_splitters(theta, 0.0, mzi.splitter_in(), mzi.splitter_out())
                .transfer_matrix()[(0, 0)]
                .abs_sq();
            min_p = min_p.min(p);
            max_p = max_p.max(p);
        }
        let er_swept = 10.0 * (max_p / min_p).log10();
        assert!(
            (er_swept - mzi.extinction_ratio_db()).abs() < 0.05,
            "swept {er_swept} vs closed form {}",
            mzi.extinction_ratio_db()
        );
    }
}
