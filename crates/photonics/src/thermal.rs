//! Thermal-crosstalk model (paper §II-C, §III-A).
//!
//! Thermo-optic phase shifters are micro-heaters, and heat spreads: driving
//! heater `j` raises the temperature of neighbouring waveguide `i`,
//! producing an *unintended* phase shift there. The paper cites this mutual
//! thermal crosstalk (ref. \[8\], Milanizadeh et al.) as a primary source of
//! correlated phase error, then folds it into the Gaussian phase-uncertainty
//! budget. Here we model the mechanism explicitly so its contribution can be
//! studied separately (ablation C in DESIGN.md):
//!
//! ```text
//! Δφᵢ = κ · Σ_{j≠i} exp(−dᵢⱼ / d₀) · φⱼ
//! ```
//!
//! where `φⱼ` is the phase commanded on heater `j` (proportional to its
//! dissipated power), `dᵢⱼ` the Euclidean distance between heaters, `d₀` the
//! thermal decay length, and `κ` the nearest-neighbour coupling strength.
//! With `κ = 0` the model reduces to the paper's i.i.d. assumption.

/// Physical position of a heater on the chip, in micrometers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeaterPosition {
    /// Horizontal position (µm), increasing along the light path.
    pub x_um: f64,
    /// Vertical position (µm), across waveguides.
    pub y_um: f64,
}

impl HeaterPosition {
    /// Creates a position.
    pub fn new(x_um: f64, y_um: f64) -> Self {
        Self { x_um, y_um }
    }

    /// Euclidean distance to another heater (µm).
    pub fn distance_um(&self, other: &HeaterPosition) -> f64 {
        (self.x_um - other.x_um).hypot(self.y_um - other.y_um)
    }
}

/// Mutual-heating crosstalk model with exponential distance decay.
///
/// # Example
///
/// ```
/// use spnn_photonics::thermal::{HeaterPosition, ThermalCrosstalk};
///
/// let model = ThermalCrosstalk::new(0.01, 50.0);
/// let positions = [
///     HeaterPosition::new(0.0, 0.0),
///     HeaterPosition::new(0.0, 50.0),
/// ];
/// let phases = [std::f64::consts::PI, 0.0];
/// let errors = model.phase_errors(&phases, &positions);
/// // Heater 0 is hot; heater 1 picks up a crosstalk phase of
/// // κ·e^{−1}·π ≈ 0.0116 rad.
/// assert!((errors[1] - 0.01 * (-1.0f64).exp() * std::f64::consts::PI).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalCrosstalk {
    coupling: f64,
    decay_length_um: f64,
}

impl ThermalCrosstalk {
    /// Creates a model with nearest-neighbour coupling strength `coupling`
    /// (dimensionless, typically 0–0.05) and thermal decay length
    /// `decay_length_um` (µm, typically tens of µm on SOI).
    ///
    /// # Panics
    ///
    /// Panics if `coupling < 0` or `decay_length_um <= 0`.
    pub fn new(coupling: f64, decay_length_um: f64) -> Self {
        assert!(coupling >= 0.0, "coupling must be non-negative");
        assert!(decay_length_um > 0.0, "decay length must be positive");
        Self {
            coupling,
            decay_length_um,
        }
    }

    /// A disabled model (κ = 0) — the paper's i.i.d. baseline.
    pub fn disabled() -> Self {
        Self {
            coupling: 0.0,
            decay_length_um: 1.0,
        }
    }

    /// Nearest-neighbour coupling strength κ.
    #[inline]
    pub fn coupling(&self) -> f64 {
        self.coupling
    }

    /// Thermal decay length d₀ (µm).
    #[inline]
    pub fn decay_length_um(&self) -> f64 {
        self.decay_length_um
    }

    /// `true` when the model contributes no crosstalk.
    pub fn is_disabled(&self) -> bool {
        self.coupling == 0.0
    }

    /// Computes the crosstalk-induced phase error on every heater given the
    /// commanded phases and heater positions.
    ///
    /// # Panics
    ///
    /// Panics if `phases.len() != positions.len()`.
    pub fn phase_errors(&self, phases: &[f64], positions: &[HeaterPosition]) -> Vec<f64> {
        assert_eq!(
            phases.len(),
            positions.len(),
            "phases and positions must align"
        );
        let n = phases.len();
        let mut errors = vec![0.0; n];
        if self.is_disabled() || n < 2 {
            return errors;
        }
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = positions[i].distance_um(&positions[j]);
                // Phase is proportional to dissipated power, and power wraps
                // with the commanded phase: use the wrapped magnitude.
                let drive = phases[j].rem_euclid(std::f64::consts::TAU);
                acc += (-d / self.decay_length_um).exp() * drive;
            }
            errors[i] = self.coupling * acc;
        }
        errors
    }
}

impl Default for ThermalCrosstalk {
    /// Disabled (κ = 0).
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn line_positions(n: usize, pitch_um: f64) -> Vec<HeaterPosition> {
        (0..n)
            .map(|i| HeaterPosition::new(0.0, i as f64 * pitch_um))
            .collect()
    }

    #[test]
    fn disabled_model_gives_zero_errors() {
        let model = ThermalCrosstalk::disabled();
        let pos = line_positions(4, 50.0);
        let errors = model.phase_errors(&[1.0, 2.0, 3.0, 0.5], &pos);
        assert!(errors.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn single_heater_has_no_crosstalk() {
        let model = ThermalCrosstalk::new(0.05, 50.0);
        let errors = model.phase_errors(&[PI], &[HeaterPosition::new(0.0, 0.0)]);
        assert_eq!(errors, vec![0.0]);
    }

    #[test]
    fn closer_heaters_couple_more() {
        let model = ThermalCrosstalk::new(0.02, 30.0);
        // Victim at origin; one aggressor close, scenario two: same aggressor far.
        let near = model.phase_errors(
            &[0.0, PI],
            &[
                HeaterPosition::new(0.0, 0.0),
                HeaterPosition::new(0.0, 20.0),
            ],
        );
        let far = model.phase_errors(
            &[0.0, PI],
            &[
                HeaterPosition::new(0.0, 0.0),
                HeaterPosition::new(0.0, 100.0),
            ],
        );
        assert!(near[0] > far[0]);
        assert!(far[0] > 0.0);
    }

    #[test]
    fn error_scales_linearly_with_coupling_and_drive() {
        let pos = line_positions(2, 40.0);
        let e1 = ThermalCrosstalk::new(0.01, 40.0).phase_errors(&[0.0, 1.0], &pos)[0];
        let e2 = ThermalCrosstalk::new(0.02, 40.0).phase_errors(&[0.0, 1.0], &pos)[0];
        assert!((e2 - 2.0 * e1).abs() < 1e-15);
        let e3 = ThermalCrosstalk::new(0.01, 40.0).phase_errors(&[0.0, 2.0], &pos)[0];
        assert!((e3 - 2.0 * e1).abs() < 1e-15);
    }

    #[test]
    fn superposition_over_aggressors() {
        let model = ThermalCrosstalk::new(0.01, 50.0);
        let pos = line_positions(3, 50.0);
        let both = model.phase_errors(&[0.0, 1.0, 1.0], &pos)[0];
        let only1 = model.phase_errors(&[0.0, 1.0, 0.0], &pos)[0];
        let only2 = model.phase_errors(&[0.0, 0.0, 1.0], &pos)[0];
        assert!((both - only1 - only2).abs() < 1e-15);
    }

    #[test]
    fn drive_wraps_modulo_two_pi() {
        let model = ThermalCrosstalk::new(0.01, 50.0);
        let pos = line_positions(2, 50.0);
        let base = model.phase_errors(&[0.0, 1.0], &pos)[0];
        let wrapped = model.phase_errors(&[0.0, 1.0 + std::f64::consts::TAU], &pos)[0];
        assert!((base - wrapped).abs() < 1e-12);
    }

    #[test]
    fn symmetric_pair_symmetric_errors() {
        let model = ThermalCrosstalk::new(0.03, 60.0);
        let pos = line_positions(2, 45.0);
        let errors = model.phase_errors(&[1.5, 1.5], &pos);
        assert!((errors[0] - errors[1]).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_decay_length_panics() {
        let _ = ThermalCrosstalk::new(0.01, 0.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let model = ThermalCrosstalk::new(0.01, 50.0);
        let _ = model.phase_errors(&[1.0], &line_positions(2, 50.0));
    }
}
