//! Directional-coupler beam-splitter model (component level, paper §III-A).
//!
//! A 2×2 beam splitter (BeS) transmits a fraction of the field at each input
//! port straight through (amplitude `t`… note the paper uses `r` for the
//! *straight* path and `t` for the *cross* path, Eq. 2) and couples the rest
//! to the other port with a π/2 phase shift:
//!
//! ```text
//! | Ẽ₀ |   |  r₀₀   i·t₁₀ | | E₀ |
//! | Ẽ₁ | = |  i·t₀₁  r₁₁  | | E₁ |        (paper Eq. 2)
//! ```
//!
//! with losslessness constraints `r₀₀² + t₀₁² = 1` and `r₁₁² + t₁₀² = 1`.
//! For symmetric splitters `r₀₀ = r₁₁ = r`, `t₀₁ = t₁₀ = t`, and the ideal
//! 50:50 case has `r = t = 1/√2`.
//!
//! Beam splitters are **passive**: once fabricated their splitting ratio
//! cannot be tuned, so fabrication-process variations in `r`/`t` cannot be
//! calibrated away (paper §II-C) — this is why the paper studies them
//! separately from phase shifters.

use crate::constants::SPLIT_50_50;
use spnn_linalg::{CMatrix, C64};

/// A symmetric, lossless 2×2 beam splitter with reflectance `r` and
/// transmittance `t = √(1 − r²)`.
///
/// # Example
///
/// ```
/// use spnn_photonics::BeamSplitter;
///
/// let ideal = BeamSplitter::ideal_50_50();
/// assert!(ideal.matrix().is_unitary(1e-12));
/// assert!((ideal.power_split_ratio() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamSplitter {
    r: f64,
    t: f64,
}

impl BeamSplitter {
    /// Creates a lossless splitter from its reflectance `r ∈ [0, 1]`;
    /// the transmittance is derived as `t = √(1 − r²)`.
    ///
    /// Out-of-range values are clamped into `[0, 1]` — under Gaussian
    /// perturbation of `r` this is the physical behaviour (a coupler cannot
    /// reflect more than all of the light).
    pub fn from_reflectance(r: f64) -> Self {
        let r = r.clamp(0.0, 1.0);
        Self {
            r,
            t: (1.0 - r * r).max(0.0).sqrt(),
        }
    }

    /// Creates an explicitly non-unitary splitter with independent `r` and
    /// `t` (clamped to `[0, 1]`). Only for sensitivity studies; the paper's
    /// experiments use the lossless constraint.
    pub fn from_r_t_unchecked(r: f64, t: f64) -> Self {
        Self {
            r: r.clamp(0.0, 1.0),
            t: t.clamp(0.0, 1.0),
        }
    }

    /// The ideal symmetric 50:50 splitter, `r = t = 1/√2`.
    pub fn ideal_50_50() -> Self {
        Self {
            r: SPLIT_50_50,
            t: SPLIT_50_50,
        }
    }

    /// Reflectance (straight-path amplitude) `r`.
    #[inline]
    pub fn reflectance(&self) -> f64 {
        self.r
    }

    /// Transmittance (cross-path amplitude) `t`.
    #[inline]
    pub fn transmittance(&self) -> f64 {
        self.t
    }

    /// Fraction of optical *power* crossing to the other port, `t²`.
    #[inline]
    pub fn power_split_ratio(&self) -> f64 {
        self.t * self.t
    }

    /// `true` when `r² + t² = 1` within `tol` (lossless).
    pub fn is_lossless(&self, tol: f64) -> bool {
        (self.r * self.r + self.t * self.t - 1.0).abs() <= tol
    }

    /// The 2×2 transfer matrix of Eq. (2): `[[r, i·t], [i·t, r]]`.
    pub fn matrix(&self) -> CMatrix {
        let mut m = CMatrix::zeros(2, 2);
        m[(0, 0)] = C64::from(self.r);
        m[(0, 1)] = C64::new(0.0, self.t);
        m[(1, 0)] = C64::new(0.0, self.t);
        m[(1, 1)] = C64::from(self.r);
        m
    }

    /// Returns a copy with the reflectance perturbed by `delta` (additive),
    /// re-deriving `t` to stay lossless. A zero delta is an exact no-op.
    #[must_use]
    pub fn perturbed(&self, delta: f64) -> Self {
        if delta == 0.0 {
            *self
        } else {
            Self::from_reflectance(self.r + delta)
        }
    }
}

impl Default for BeamSplitter {
    /// The ideal 50:50 splitter.
    fn default() -> Self {
        Self::ideal_50_50()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_50_50_and_unitary() {
        let b = BeamSplitter::ideal_50_50();
        assert!((b.reflectance() - SPLIT_50_50).abs() < 1e-15);
        assert!((b.transmittance() - SPLIT_50_50).abs() < 1e-15);
        assert!(b.is_lossless(1e-15));
        assert!(b.matrix().is_unitary(1e-14));
    }

    #[test]
    fn lossless_constraint_maintained_under_perturbation() {
        for delta in [-0.3, -0.1, 0.0, 0.05, 0.2] {
            let b = BeamSplitter::ideal_50_50().perturbed(delta);
            assert!(b.is_lossless(1e-12), "delta {delta}");
            assert!(b.matrix().is_unitary(1e-12), "delta {delta}");
        }
    }

    #[test]
    fn reflectance_clamped_to_physical_range() {
        let hi = BeamSplitter::from_reflectance(1.5);
        assert_eq!(hi.reflectance(), 1.0);
        assert_eq!(hi.transmittance(), 0.0);
        let lo = BeamSplitter::from_reflectance(-0.2);
        assert_eq!(lo.reflectance(), 0.0);
        assert!((lo.transmittance() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn power_conservation_through_splitter() {
        use spnn_linalg::vector::norm_sq;
        let b = BeamSplitter::from_reflectance(0.6);
        let input = vec![C64::new(0.8, 0.1), C64::new(-0.3, 0.5)];
        let output = b.matrix().mul_vec(&input);
        assert!((norm_sq(&input) - norm_sq(&output)).abs() < 1e-12);
    }

    #[test]
    fn cross_path_carries_quarter_wave_phase() {
        let b = BeamSplitter::ideal_50_50();
        let m = b.matrix();
        // Cross elements are purely imaginary (i·t): +π/2 relative phase.
        assert!(m[(0, 1)].re.abs() < 1e-15);
        assert!(m[(0, 1)].im > 0.0);
    }

    #[test]
    fn unchecked_constructor_allows_lossy() {
        let b = BeamSplitter::from_r_t_unchecked(0.5, 0.5);
        assert!(!b.is_lossless(1e-3));
        assert!(!b.matrix().is_unitary(1e-3));
    }

    #[test]
    fn split_ratio_bounds() {
        for r in [0.0, 0.3, SPLIT_50_50, 0.9, 1.0] {
            let b = BeamSplitter::from_reflectance(r);
            let ratio = b.power_split_ratio();
            assert!((0.0..=1.0).contains(&ratio));
            assert!((ratio + r * r - 1.0).abs() < 1e-12);
        }
    }
}
