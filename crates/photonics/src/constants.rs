//! Physical constants for the silicon-photonic platform, as quoted in the
//! paper (§III-A) and its references.

/// Operating wavelength λ₀ = 1550 nm (C-band), in meters.
pub const WAVELENGTH_M: f64 = 1550e-9;

/// Thermo-optic coefficient of silicon at λ₀ = 1550 nm and T = 300 K:
/// `dn/dT ≈ 1.8 × 10⁻⁴ K⁻¹` (paper §III-A, ref. \[11\]).
pub const THERMO_OPTIC_COEFF_PER_K: f64 = 1.8e-4;

/// Nominal operating temperature, in kelvin.
pub const NOMINAL_TEMPERATURE_K: f64 = 300.0;

/// Default thermo-optic phase-shifter length, in meters (typical SOI
/// micro-heater lengths are tens of microns to ~100 µm; ref. \[10\] of the
/// paper optimizes designs around this scale).
pub const DEFAULT_SHIFTER_LENGTH_M: f64 = 100e-6;

/// Ideal 50:50 beam-splitter amplitude coefficient `1/√2`.
pub const SPLIT_50_50: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Phase error (radians) observed in mature fabrication processes for tuned
/// phase angles: ~0.21 rad (paper §III-A, ref. \[4\]).
pub const MATURE_PROCESS_PHASE_ERROR_RAD: f64 = 0.21;

/// The paper's normalization of the mature-process phase error:
/// `0.21 / 2π ≈ 3.34 %` of the phase range — i.e. σ_PhS ≈ 0.0334.
pub const MATURE_PROCESS_SIGMA_PHS: f64 = MATURE_PROCESS_PHASE_ERROR_RAD / std::f64::consts::TAU;

/// Typical relative deviation expected in beam-splitter r/t parameters
/// (1–2 %, paper §III-A, ref. \[4\]). We store the midpoint.
pub const TYPICAL_BES_DEVIATION: f64 = 0.015;

/// Typical thermal tuning efficiency for an SOI micro-heater: power needed
/// for a π phase shift, in watts (≈ 20 mW/π is a common figure for
/// non-optimized designs; ref. \[10\] reports mW-class optimized shifters).
pub const HEATER_POWER_PER_PI_W: f64 = 20e-3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mature_process_sigma_matches_paper_number() {
        // Paper: 0.21/2π × 100 ≈ 3.34 %.
        assert!((MATURE_PROCESS_SIGMA_PHS * 100.0 - 3.34).abs() < 0.01);
    }

    #[test]
    fn split_50_50_squares_to_half() {
        assert!((SPLIT_50_50 * SPLIT_50_50 - 0.5).abs() < 1e-15);
    }
}
