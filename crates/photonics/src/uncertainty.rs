//! Uncertainty models and the paper's σ conventions (§III-A).
//!
//! The paper perturbs:
//!
//! - **phase angles** `θ, φ` with a Gaussian centered on the tuned value and
//!   standard deviation `σ ∈ [0.005·2π, 0.15·2π]`, reporting the normalized
//!   value `σ_PhS ≜ σ / 2π`;
//! - **beam-splitter reflectances** `r` with a Gaussian centered on `1/√2`
//!   and standard deviation `σ ∈ [0.005·(1/√2), 0.15·(1/√2)]`, reporting the
//!   normalized value `σ_BeS ≜ √2 · σ`.
//!
//! So `σ_PhS = σ_BeS = 0.05` means a 5 % relative perturbation of each
//! parameter's natural scale — the paper's "fair comparison" convention.
//!
//! [`UncertaintySpec`] bundles both sigmas plus a [`PerturbTarget`]
//! selecting which component class is perturbed (EXP 1 runs all three
//! combinations).

use crate::mzi::Mzi;
use rand::Rng;
use spnn_linalg::random::gaussian;
use std::f64::consts::TAU;

/// Which component class receives random perturbations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PerturbTarget {
    /// Perturb only the tunable phase shifters (σ_BeS treated as 0).
    PhaseShiftersOnly,
    /// Perturb only the passive beam splitters (σ_PhS treated as 0).
    BeamSplittersOnly,
    /// Perturb both component classes (the paper's σ_PhS = σ_BeS case).
    #[default]
    Both,
}

/// A component-level uncertainty specification in the paper's normalized
/// units.
///
/// # Example
///
/// ```
/// use spnn_photonics::{Mzi, UncertaintySpec};
/// use rand::SeedableRng;
///
/// let spec = UncertaintySpec::both(0.05);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let nominal = Mzi::ideal(1.0, 2.0);
/// let noisy = spec.perturb_mzi(&nominal, &mut rng);
/// assert!(noisy.theta() != nominal.theta());
/// // Losslessness is preserved under BeS perturbation:
/// assert!(noisy.transfer_matrix().is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertaintySpec {
    sigma_phs: f64,
    sigma_bes: f64,
    target: PerturbTarget,
}

impl UncertaintySpec {
    /// No uncertainty at all (σ_PhS = σ_BeS = 0).
    pub fn none() -> Self {
        Self {
            sigma_phs: 0.0,
            sigma_bes: 0.0,
            target: PerturbTarget::Both,
        }
    }

    /// Equal normalized sigmas on both component classes
    /// (the paper's `σ_PhS = σ_BeS` sweep).
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn both(sigma: f64) -> Self {
        Self::new(sigma, sigma, PerturbTarget::Both)
    }

    /// Phase-shifter-only uncertainty (`σ_BeS = 0`).
    pub fn phase_shifters_only(sigma_phs: f64) -> Self {
        Self::new(sigma_phs, 0.0, PerturbTarget::PhaseShiftersOnly)
    }

    /// Beam-splitter-only uncertainty (`σ_PhS = 0`).
    pub fn beam_splitters_only(sigma_bes: f64) -> Self {
        Self::new(0.0, sigma_bes, PerturbTarget::BeamSplittersOnly)
    }

    /// Fully explicit constructor.
    ///
    /// # Panics
    ///
    /// Panics if either sigma is negative.
    pub fn new(sigma_phs: f64, sigma_bes: f64, target: PerturbTarget) -> Self {
        assert!(
            sigma_phs >= 0.0 && sigma_bes >= 0.0,
            "sigmas must be non-negative"
        );
        Self {
            sigma_phs,
            sigma_bes,
            target,
        }
    }

    /// Normalized phase-shifter sigma `σ_PhS = σ/2π`.
    #[inline]
    pub fn sigma_phs(&self) -> f64 {
        self.sigma_phs
    }

    /// Normalized beam-splitter sigma `σ_BeS = √2·σ`.
    #[inline]
    pub fn sigma_bes(&self) -> f64 {
        self.sigma_bes
    }

    /// The perturbation target.
    #[inline]
    pub fn target(&self) -> PerturbTarget {
        self.target
    }

    /// Absolute phase standard deviation in radians: `σ_PhS · 2π`.
    #[inline]
    pub fn phase_sigma_rad(&self) -> f64 {
        self.sigma_phs * TAU
    }

    /// Absolute reflectance standard deviation: `σ_BeS / √2`.
    #[inline]
    pub fn reflectance_sigma(&self) -> f64 {
        self.sigma_bes * std::f64::consts::FRAC_1_SQRT_2
    }

    /// `true` when this spec perturbs phase shifters.
    pub fn affects_phs(&self) -> bool {
        self.sigma_phs > 0.0
            && matches!(
                self.target,
                PerturbTarget::PhaseShiftersOnly | PerturbTarget::Both
            )
    }

    /// `true` when this spec perturbs beam splitters.
    pub fn affects_bes(&self) -> bool {
        self.sigma_bes > 0.0
            && matches!(
                self.target,
                PerturbTarget::BeamSplittersOnly | PerturbTarget::Both
            )
    }

    /// Draws one additive phase error (radians).
    pub fn sample_phase_error<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.affects_phs() {
            gaussian(rng) * self.phase_sigma_rad()
        } else {
            0.0
        }
    }

    /// Draws one additive reflectance error.
    pub fn sample_reflectance_error<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.affects_bes() {
            gaussian(rng) * self.reflectance_sigma()
        } else {
            0.0
        }
    }

    /// Applies independent random errors to all six MZI parameters
    /// (θ, φ, r, r′) according to the target selection. The two phase
    /// shifters and the two splitters are perturbed independently, as in all
    /// of the paper's system-level analyses.
    #[must_use]
    pub fn perturb_mzi<R: Rng + ?Sized>(&self, mzi: &Mzi, rng: &mut R) -> Mzi {
        let d_theta = self.sample_phase_error(rng);
        let d_phi = self.sample_phase_error(rng);
        let dr_in = self.sample_reflectance_error(rng);
        let dr_out = self.sample_reflectance_error(rng);
        mzi.with_phase_errors(d_theta, d_phi)
            .with_splitter_errors(dr_in, dr_out)
    }

    /// Returns a copy scaled to a different sigma for both classes, keeping
    /// the target. Used by the EXP 2 zonal runner (σ 0.05 → 0.1 in a zone).
    #[must_use]
    pub fn with_sigma(&self, sigma: f64) -> Self {
        let phs = if self.sigma_phs > 0.0 || matches!(self.target, PerturbTarget::Both) {
            sigma
        } else {
            0.0
        };
        let bes = if self.sigma_bes > 0.0 || matches!(self.target, PerturbTarget::Both) {
            sigma
        } else {
            0.0
        };
        Self::new(phs, bes, self.target)
    }
}

impl Default for UncertaintySpec {
    /// No uncertainty.
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigma_conventions() {
        let spec = UncertaintySpec::both(0.05);
        assert!((spec.phase_sigma_rad() - 0.05 * TAU).abs() < 1e-15);
        assert!((spec.reflectance_sigma() - 0.05 / 2f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn mature_process_error_is_3_34_percent() {
        // 0.21 rad ≈ 3.34 % of 2π: the paper's motivating figure.
        let sigma_phs = 0.21 / TAU;
        let spec = UncertaintySpec::phase_shifters_only(sigma_phs);
        assert!((spec.phase_sigma_rad() - 0.21).abs() < 1e-12);
    }

    #[test]
    fn targets_mask_the_right_class() {
        let phs = UncertaintySpec::phase_shifters_only(0.1);
        assert!(phs.affects_phs() && !phs.affects_bes());
        let bes = UncertaintySpec::beam_splitters_only(0.1);
        assert!(!bes.affects_phs() && bes.affects_bes());
        let both = UncertaintySpec::both(0.1);
        assert!(both.affects_phs() && both.affects_bes());
        let none = UncertaintySpec::none();
        assert!(!none.affects_phs() && !none.affects_bes());
    }

    #[test]
    fn zero_sigma_perturbs_nothing() {
        let spec = UncertaintySpec::none();
        let mut rng = StdRng::seed_from_u64(3);
        let mzi = Mzi::ideal(1.0, 2.0);
        let p = spec.perturb_mzi(&mzi, &mut rng);
        assert_eq!(p, mzi);
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let spec = UncertaintySpec::both(0.05);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let phase_var: f64 = (0..n)
            .map(|_| spec.sample_phase_error(&mut rng).powi(2))
            .sum::<f64>()
            / n as f64;
        let expect = spec.phase_sigma_rad().powi(2);
        assert!(
            (phase_var / expect - 1.0).abs() < 0.05,
            "var {phase_var} vs {expect}"
        );

        let refl_var: f64 = (0..n)
            .map(|_| spec.sample_reflectance_error(&mut rng).powi(2))
            .sum::<f64>()
            / n as f64;
        let expect_r = spec.reflectance_sigma().powi(2);
        assert!((refl_var / expect_r - 1.0).abs() < 0.05);
    }

    #[test]
    fn perturbed_mzi_keeps_losslessness() {
        let spec = UncertaintySpec::both(0.15);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let p = spec.perturb_mzi(&Mzi::ideal(2.0, 1.0), &mut rng);
            assert!(p.transfer_matrix().is_unitary(1e-10));
        }
    }

    #[test]
    fn phs_only_leaves_splitters_ideal() {
        let spec = UncertaintySpec::phase_shifters_only(0.1);
        let mut rng = StdRng::seed_from_u64(6);
        let p = spec.perturb_mzi(&Mzi::ideal(1.0, 1.0), &mut rng);
        assert!((p.splitter_in().reflectance() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-15);
        assert!(p.theta() != 1.0);
    }

    #[test]
    fn bes_only_leaves_phases_nominal() {
        let spec = UncertaintySpec::beam_splitters_only(0.1);
        let mut rng = StdRng::seed_from_u64(7);
        let p = spec.perturb_mzi(&Mzi::ideal(1.0, 1.0), &mut rng);
        assert_eq!(p.theta(), 1.0);
        assert_eq!(p.phi(), 1.0);
        assert!(p.splitter_in().reflectance() != std::f64::consts::FRAC_1_SQRT_2);
    }

    #[test]
    fn with_sigma_rescales() {
        let spec = UncertaintySpec::both(0.05).with_sigma(0.1);
        assert!((spec.sigma_phs() - 0.1).abs() < 1e-15);
        assert!((spec.sigma_bes() - 0.1).abs() < 1e-15);
        let phs = UncertaintySpec::phase_shifters_only(0.05).with_sigma(0.1);
        assert!((phs.sigma_phs() - 0.1).abs() < 1e-15);
        assert_eq!(phs.sigma_bes(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let _ = UncertaintySpec::both(-0.1);
    }
}
