//! Component- and device-level models of silicon-photonic hardware.
//!
//! This crate implements the first two levels of the hierarchical uncertainty
//! study from *"Modeling Silicon-Photonic Neural Networks under
//! Uncertainties"* (DATE 2021):
//!
//! - **Component level** (§III-A of the paper):
//!   [`phase_shifter::PhaseShifter`] — a thermo-optic phase shifter with the
//!   temperature-dependent phase model `Δφ = (2πl/λ₀)·(dn/dT)·ΔT`, heater
//!   power and DAC quantization; [`beam_splitter::BeamSplitter`] — a
//!   directional-coupler 2×2 splitter with reflectance/transmittance
//!   satisfying `r² + t² = 1`.
//! - **Device level** (§III-B): [`mzi::Mzi`] — a 2×2 Mach–Zehnder
//!   interferometer assembled from two phase shifters and two beam
//!   splitters, with the ideal transfer matrix (Eq. 1), the non-ideal-BeS
//!   transfer matrix (Eq. 5) and the first-order sensitivity model
//!   (Eqs. 3–4) that generates Fig. 2.
//! - **Uncertainty models** (§III-A): [`uncertainty`] — the paper's
//!   `σ_PhS`/`σ_BeS` conventions and Gaussian perturbation sampling.
//! - **Thermal crosstalk** (§II-C/§III-A): [`thermal`] — a mutual-heating
//!   model with exponential distance decay that turns i.i.d. phase noise
//!   into spatially correlated noise.
//!
//! # Example
//!
//! ```
//! use spnn_photonics::Mzi;
//!
//! // An MZI tuned to (θ, φ) = (π/2, π/4) is a unitary 2×2 device.
//! let mzi = Mzi::ideal(std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_4);
//! assert!(mzi.transfer_matrix().is_unitary(1e-12));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod beam_splitter;
pub mod constants;
pub mod mzi;
pub mod phase_shifter;
pub mod spatial;
pub mod thermal;
pub mod uncertainty;

pub use beam_splitter::BeamSplitter;
pub use mzi::Mzi;
pub use phase_shifter::PhaseShifter;
pub use uncertainty::{PerturbTarget, UncertaintySpec};
