//! Thermo-optic phase-shifter model (component level, paper §III-A).
//!
//! A phase shifter (PhS) applies a configurable phase `φ` to the optical
//! field on one waveguide arm. Physically it is a micro-heater: raising the
//! waveguide temperature by `ΔT` changes the silicon refractive index
//! through the thermo-optic effect, giving
//!
//! ```text
//! Δφ = (2π·l / λ₀) · (dn/dT) · ΔT          (paper §III-A)
//! ```
//!
//! The model here exposes that physics in both directions (phase ↔
//! temperature ↔ heater power), plus the finite-precision phase encoding
//! ("finite-encoding precision on phase settings" is one of the roadblocks
//! listed in the paper's introduction).

use crate::constants;
use spnn_linalg::C64;
use std::f64::consts::TAU;

/// A thermo-optic phase shifter.
///
/// The transfer function of a phase shifter on the *upper* arm of an MZI is
/// `diag(e^{iφ}, 1)` (paper Fig. 1); on a single waveguide it is the scalar
/// `e^{iφ}`.
///
/// # Example
///
/// ```
/// use spnn_photonics::PhaseShifter;
///
/// let ps = PhaseShifter::new(std::f64::consts::PI);
/// // A π shifter flips the field sign.
/// assert!((ps.transfer().re + 1.0).abs() < 1e-12);
/// // Temperature needed for that shift on the default 100 µm heater:
/// let dt = ps.temperature_delta_k();
/// assert!(dt > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseShifter {
    phase_rad: f64,
    length_m: f64,
}

impl PhaseShifter {
    /// Creates a phase shifter tuned to `phase_rad` radians with the default
    /// heater length.
    pub fn new(phase_rad: f64) -> Self {
        Self {
            phase_rad,
            length_m: constants::DEFAULT_SHIFTER_LENGTH_M,
        }
    }

    /// Creates a phase shifter with an explicit heater length (meters).
    ///
    /// # Panics
    ///
    /// Panics if `length_m` is not strictly positive.
    pub fn with_length(phase_rad: f64, length_m: f64) -> Self {
        assert!(length_m > 0.0, "heater length must be positive");
        Self {
            phase_rad,
            length_m,
        }
    }

    /// The tuned phase in radians.
    #[inline]
    pub fn phase(&self) -> f64 {
        self.phase_rad
    }

    /// The heater length in meters.
    #[inline]
    pub fn length(&self) -> f64 {
        self.length_m
    }

    /// Scalar transfer function `e^{iφ}`.
    #[inline]
    pub fn transfer(&self) -> C64 {
        C64::cis(self.phase_rad)
    }

    /// Phase sensitivity to temperature: `dφ/dT = (2πl/λ₀)·(dn/dT)`,
    /// in rad/K.
    pub fn phase_per_kelvin(&self) -> f64 {
        (TAU * self.length_m / constants::WAVELENGTH_M) * constants::THERMO_OPTIC_COEFF_PER_K
    }

    /// Temperature rise `ΔT` (kelvin) needed to produce the tuned phase,
    /// assuming the phase is achieved purely thermo-optically.
    pub fn temperature_delta_k(&self) -> f64 {
        self.phase_rad / self.phase_per_kelvin()
    }

    /// Electrical heater power (watts) for the tuned phase, using the
    /// platform's power-per-π figure. Phase is taken modulo 2π into
    /// `[0, 2π)` because drivers wrap the setting.
    pub fn heater_power_w(&self) -> f64 {
        let wrapped = self.phase_rad.rem_euclid(TAU);
        constants::HEATER_POWER_PER_PI_W * wrapped / std::f64::consts::PI
    }

    /// Returns a copy with the phase perturbed by `delta_rad` (additive
    /// error, e.g. from fabrication-process variation or thermal crosstalk).
    #[must_use]
    pub fn perturbed(&self, delta_rad: f64) -> Self {
        Self {
            phase_rad: self.phase_rad + delta_rad,
            length_m: self.length_m,
        }
    }

    /// Returns a copy with the phase quantized to a `bits`-bit DAC over
    /// `[0, 2π)` — the paper's "finite-encoding precision" roadblock.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 63`.
    #[must_use]
    pub fn quantized(&self, bits: u32) -> Self {
        Self {
            phase_rad: quantize_phase(self.phase_rad, bits),
            length_m: self.length_m,
        }
    }
}

impl Default for PhaseShifter {
    /// An untuned (0 rad) shifter with the default heater length.
    fn default() -> Self {
        Self::new(0.0)
    }
}

/// Quantizes a phase to a `bits`-bit uniform code over `[0, 2π)`,
/// rounding to the nearest level (wrap-around aware).
///
/// # Panics
///
/// Panics if `bits == 0` or `bits > 63`.
///
/// # Example
///
/// ```
/// use spnn_photonics::phase_shifter::quantize_phase;
/// let q = quantize_phase(0.3, 8);
/// assert!((q - 0.3).abs() <= std::f64::consts::TAU / 256.0 / 2.0 + 1e-12);
/// ```
pub fn quantize_phase(phase_rad: f64, bits: u32) -> f64 {
    assert!((1..=63).contains(&bits), "quantizer bits must be in 1..=63");
    let levels = (1u64 << bits) as f64;
    let step = TAU / levels;
    let wrapped = phase_rad.rem_euclid(TAU);
    let code = (wrapped / step).round() % levels;
    code * step
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_unit_phasor() {
        for k in 0..8 {
            let phase = k as f64 * 0.7;
            let ps = PhaseShifter::new(phase);
            assert!((ps.transfer().abs() - 1.0).abs() < 1e-14);
            // Compare the full phasor — sidesteps arg()'s branch-cut wrap.
            let expect = spnn_linalg::C64::cis(phase);
            assert!((ps.transfer() - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn thermo_optic_formula_matches_hand_calculation() {
        // For l = 100 µm, λ₀ = 1550 nm, dn/dT = 1.8e-4:
        // dφ/dT = 2π·(100e-6/1550e-9)·1.8e-4 ≈ 0.07297 rad/K.
        let ps = PhaseShifter::new(1.0);
        let expect = TAU * (100e-6 / 1550e-9) * 1.8e-4;
        assert!((ps.phase_per_kelvin() - expect).abs() < 1e-12);
        // π shift needs ≈ 43 K on this (long) heater.
        let pi_shift = PhaseShifter::new(std::f64::consts::PI);
        assert!((pi_shift.temperature_delta_k() - std::f64::consts::PI / expect).abs() < 1e-9);
    }

    #[test]
    fn temperature_phase_roundtrip() {
        let ps = PhaseShifter::new(2.1);
        let dt = ps.temperature_delta_k();
        assert!((dt * ps.phase_per_kelvin() - 2.1).abs() < 1e-12);
    }

    #[test]
    fn heater_power_scales_with_phase() {
        let p_pi = PhaseShifter::new(std::f64::consts::PI).heater_power_w();
        assert!((p_pi - constants::HEATER_POWER_PER_PI_W).abs() < 1e-15);
        let p_2pi_wrapped = PhaseShifter::new(TAU + std::f64::consts::PI).heater_power_w();
        assert!(
            (p_2pi_wrapped - p_pi).abs() < 1e-12,
            "power should wrap modulo 2π"
        );
    }

    #[test]
    fn perturbed_adds_phase() {
        let ps = PhaseShifter::new(1.0).perturbed(0.25);
        assert!((ps.phase() - 1.25).abs() < 1e-15);
    }

    #[test]
    fn quantize_identity_at_levels() {
        let step = TAU / 16.0;
        for k in 0..16 {
            let phase = k as f64 * step;
            assert!((quantize_phase(phase, 4) - phase).abs() < 1e-12);
        }
    }

    #[test]
    fn quantize_error_bounded_by_half_step() {
        let bits = 6;
        let step = TAU / 64.0;
        for i in 0..1000 {
            let phase = i as f64 * 0.0137;
            let q = quantize_phase(phase, bits);
            let wrapped = phase.rem_euclid(TAU);
            // distance on the circle
            let diff = (q - wrapped).abs().min(TAU - (q - wrapped).abs());
            assert!(diff <= step / 2.0 + 1e-12, "phase {phase}: err {diff}");
        }
    }

    #[test]
    fn quantize_wraps_near_two_pi() {
        // A phase just below 2π should round to code 0, not to 2π itself.
        let q = quantize_phase(TAU - 1e-6, 8);
        assert!(q.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn quantize_zero_bits_panics() {
        let _ = quantize_phase(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_length_panics() {
        let _ = PhaseShifter::with_length(1.0, 0.0);
    }

    #[test]
    fn default_is_zero_phase() {
        assert_eq!(PhaseShifter::default().phase(), 0.0);
        assert!((PhaseShifter::default().transfer().re - 1.0).abs() < 1e-15);
    }
}
