//! Layout-dependent correlated fabrication variation (paper ref. \[7\],
//! Lu et al., *Optics Express* 2017).
//!
//! Real wafers do not produce i.i.d. device errors: etch depth, waveguide
//! width and film thickness drift *smoothly* across a die, so neighbouring
//! devices see correlated offsets. This module models that with a smooth
//! random field synthesized from a small number of low-spatial-frequency
//! cosine modes plus a linear (wafer-scale) gradient:
//!
//! ```text
//! f(x, y) = g·(aₓ·x + a_y·y)/L  +  Σ_k c_k · cos(kₓ·x + k_y·y + ψ_k)
//! ```
//!
//! The field is deterministic given its seed, has approximately zero mean
//! and unit RMS over the die, and is scaled by the caller to physical
//! units (e.g. a reflectance offset or a phase offset). Correlation decays
//! with distance on the scale `correlation_length_um`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spnn_linalg::random::gaussian;

/// A smooth, seeded random field over the chip plane.
///
/// # Example
///
/// ```
/// use spnn_photonics::spatial::SpatialField;
///
/// let field = SpatialField::new(42, 500.0, 8);
/// let a = field.value(0.0, 0.0);
/// let near = field.value(5.0, 0.0);      // 5 µm away: almost identical
/// let far = field.value(5000.0, 3000.0); // far away: unrelated
/// assert!((a - near).abs() < 0.1);
/// let _ = far;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialField {
    gradient: (f64, f64),
    /// Modes: (kx, ky, amplitude, phase).
    modes: Vec<(f64, f64, f64, f64)>,
    correlation_length_um: f64,
}

impl SpatialField {
    /// Creates a field with the given `seed`, correlation length (µm) and
    /// number of cosine modes (≥ 1; 8 is a good default).
    ///
    /// # Panics
    ///
    /// Panics if `correlation_length_um <= 0` or `n_modes == 0`.
    pub fn new(seed: u64, correlation_length_um: f64, n_modes: usize) -> Self {
        assert!(
            correlation_length_um > 0.0,
            "correlation length must be positive"
        );
        assert!(n_modes > 0, "need at least one mode");
        let mut rng = StdRng::seed_from_u64(seed);
        // Wafer-scale gradient: gentle, random direction.
        let angle = rng.gen::<f64>() * std::f64::consts::TAU;
        let gradient_strength = 0.3;
        let gradient = (
            gradient_strength * angle.cos() / correlation_length_um,
            gradient_strength * angle.sin() / correlation_length_um,
        );
        // Low-frequency cosine modes with |k| ~ 1/correlation_length.
        let amp = (2.0 / n_modes as f64).sqrt();
        let modes = (0..n_modes)
            .map(|_| {
                let dir = rng.gen::<f64>() * std::f64::consts::TAU;
                // Wavenumber magnitude spread around 2π/L.
                let k_mag =
                    std::f64::consts::TAU / correlation_length_um * (0.5 + rng.gen::<f64>());
                let psi = rng.gen::<f64>() * std::f64::consts::TAU;
                let c = amp * (0.5 + 0.5 * gaussian(&mut rng).abs()).min(1.5);
                (k_mag * dir.cos(), k_mag * dir.sin(), c, psi)
            })
            .collect();
        Self {
            gradient,
            modes,
            correlation_length_um,
        }
    }

    /// The correlation length (µm) the field was built with.
    pub fn correlation_length_um(&self) -> f64 {
        self.correlation_length_um
    }

    /// Field value at chip position `(x_um, y_um)` — dimensionless,
    /// O(1) RMS; scale it to physical units at the call site.
    pub fn value(&self, x_um: f64, y_um: f64) -> f64 {
        let mut v = self.gradient.0 * x_um + self.gradient.1 * y_um;
        for &(kx, ky, c, psi) in &self.modes {
            v += c * (kx * x_um + ky * y_um + psi).cos();
        }
        v
    }

    /// Empirical correlation between field values at two separations,
    /// estimated over `samples` random anchor points within a
    /// `die_um × die_um` region. Used by tests to verify the
    /// smoothness claim; exposed because it is handy for model fitting.
    pub fn empirical_correlation(
        &self,
        separation_um: f64,
        die_um: f64,
        samples: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(samples);
        let mut ys = Vec::with_capacity(samples);
        for _ in 0..samples {
            let x = rng.gen::<f64>() * die_um;
            let y = rng.gen::<f64>() * die_um;
            let dir = rng.gen::<f64>() * std::f64::consts::TAU;
            xs.push(self.value(x, y));
            ys.push(self.value(x + separation_um * dir.cos(), y + separation_um * dir.sin()));
        }
        correlation(&xs, &ys)
    }
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Correlated-FPV model for a mesh: two independent fields drive phase
/// offsets and reflectance offsets, scaled to the requested sigmas.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedFpv {
    phase_field: SpatialField,
    refl_field: SpatialField,
    phase_sigma_rad: f64,
    refl_sigma: f64,
}

impl CorrelatedFpv {
    /// Creates a correlated-FPV model. `phase_sigma_rad` and `refl_sigma`
    /// set the RMS scale of the phase (radians) and reflectance offsets;
    /// `correlation_length_um` sets the smoothness.
    pub fn new(
        seed: u64,
        correlation_length_um: f64,
        phase_sigma_rad: f64,
        refl_sigma: f64,
    ) -> Self {
        Self {
            phase_field: SpatialField::new(seed ^ 0x9A5E, correlation_length_um, 8),
            refl_field: SpatialField::new(seed ^ 0x0BE5, correlation_length_um, 8),
            phase_sigma_rad,
            refl_sigma,
        }
    }

    /// Phase offset (radians) for a heater at `(x_um, y_um)`.
    pub fn phase_offset(&self, x_um: f64, y_um: f64) -> f64 {
        self.phase_sigma_rad * self.phase_field.value(x_um, y_um)
    }

    /// Reflectance offset for a coupler at `(x_um, y_um)`.
    pub fn reflectance_offset(&self, x_um: f64, y_um: f64) -> f64 {
        self.refl_sigma * self.refl_field.value(x_um, y_um)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_is_deterministic_per_seed() {
        let a = SpatialField::new(1, 300.0, 8);
        let b = SpatialField::new(1, 300.0, 8);
        assert_eq!(a.value(120.0, 45.0), b.value(120.0, 45.0));
        let c = SpatialField::new(2, 300.0, 8);
        assert_ne!(a.value(120.0, 45.0), c.value(120.0, 45.0));
    }

    #[test]
    fn nearby_points_are_strongly_correlated() {
        let field = SpatialField::new(3, 400.0, 8);
        let near = field.empirical_correlation(20.0, 3000.0, 4000, 7);
        assert!(
            near > 0.9,
            "20 µm apart with 400 µm correlation length: {near}"
        );
    }

    #[test]
    fn correlation_decays_with_distance() {
        let field = SpatialField::new(4, 300.0, 8);
        let near = field.empirical_correlation(30.0, 3000.0, 4000, 8);
        let far = field.empirical_correlation(1500.0, 3000.0, 4000, 8);
        assert!(
            near > far + 0.2,
            "correlation should decay: near {near}, far {far}"
        );
    }

    #[test]
    fn field_rms_is_order_one() {
        let field = SpatialField::new(5, 300.0, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let mut acc = 0.0;
        let n = 5000;
        for _ in 0..n {
            let x = rng.gen::<f64>() * 2000.0;
            let y = rng.gen::<f64>() * 2000.0;
            let v = field.value(x, y);
            acc += v * v;
        }
        let rms = (acc / n as f64).sqrt();
        assert!((0.2..5.0).contains(&rms), "rms {rms} not O(1)");
    }

    #[test]
    fn correlated_fpv_scales_offsets() {
        let fpv = CorrelatedFpv::new(6, 300.0, 0.1, 0.02);
        let p = fpv.phase_offset(100.0, 100.0);
        let r = fpv.reflectance_offset(100.0, 100.0);
        assert!(p.abs() < 1.0, "phase offset {p} should be ~0.1-scale");
        assert!(
            r.abs() < 0.2,
            "reflectance offset {r} should be ~0.02-scale"
        );
        // Zero sigma kills the offsets.
        let off = CorrelatedFpv::new(6, 300.0, 0.0, 0.0);
        assert_eq!(off.phase_offset(50.0, 50.0), 0.0);
        assert_eq!(off.reflectance_offset(50.0, 50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_correlation_length_panics() {
        let _ = SpatialField::new(1, 0.0, 4);
    }
}
