//! Mini-batch training loop for the software SPNN.
//!
//! Deterministic given the seed: sample order is shuffled with a seeded RNG
//! and the optimizer state is rebuilt from scratch, so `train` is a pure
//! function of `(network, data, config)`.

use crate::network::ComplexNetwork;
use crate::optimizer::{Adam, Optimizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use spnn_linalg::C64;

/// Hyper-parameters for [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Shuffling seed.
    pub seed: u64,
    /// Print a line per epoch to stderr when `true`.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 32,
            learning_rate: 0.005,
            seed: 0xC0FFEE,
            verbose: false,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub loss_history: Vec<f64>,
    /// Final accuracy on the training set.
    pub train_accuracy: f64,
}

/// Trains `network` in place with Adam and returns the loss history.
///
/// # Panics
///
/// Panics if `features`/`labels` lengths differ, the set is empty, or the
/// batch size is zero.
///
/// # Example
///
/// ```
/// use spnn_neural::{ComplexNetwork, train, TrainConfig};
/// use spnn_linalg::C64;
///
/// // Two trivially separable classes on one complex feature.
/// let features = vec![vec![C64::new(1.0, 0.0)], vec![C64::new(0.05, 0.0)]];
/// let labels = vec![0, 1];
/// let mut net = ComplexNetwork::new(&[1, 4, 2], 3);
/// let cfg = TrainConfig { epochs: 200, batch_size: 2, ..TrainConfig::default() };
/// let report = train(&mut net, &features, &labels, &cfg);
/// assert!(report.train_accuracy > 0.99);
/// ```
pub fn train(
    network: &mut ComplexNetwork,
    features: &[Vec<C64>],
    labels: &[usize],
    config: &TrainConfig,
) -> TrainReport {
    assert_eq!(features.len(), labels.len(), "features/labels mismatch");
    assert!(!features.is_empty(), "training set must be non-empty");
    assert!(config.batch_size > 0, "batch size must be positive");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut optimizer = Adam::new(config.learning_rate);
    let mut order: Vec<usize> = (0..features.len()).collect();
    let mut loss_history = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size) {
            network.zero_grads();
            let mut batch_loss = 0.0;
            for &idx in batch {
                batch_loss += network.backward(&features[idx], labels[idx]);
            }
            network.scale_grads(1.0 / batch.len() as f64);
            optimizer.step(network);
            epoch_loss += batch_loss;
        }
        let mean_loss = epoch_loss / features.len() as f64;
        loss_history.push(mean_loss);
        if config.verbose {
            eprintln!("epoch {epoch:>3}: loss {mean_loss:.4}");
        }
    }

    TrainReport {
        loss_history,
        train_accuracy: network.accuracy(features, labels),
    }
}

/// Noise-aware training configuration (the countermeasure of the paper's
/// ref. \[9\], Zhu et al. ICCAD 2020, approximated in weight space).
///
/// At every mini-batch the gradients are computed at a *perturbed* copy of
/// the weights, `W + ΔW` with `ΔW` i.i.d. complex Gaussian of standard
/// deviation `weight_sigma · rms(W)` per layer. Descending on gradients
/// sampled around the operating point steers training toward flat minima
/// that survive hardware perturbations — at some cost in nominal accuracy,
/// exactly the trade-off the paper cites ("the modified training method
/// also results in accuracy loss").
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseAwareConfig {
    /// Base training hyper-parameters.
    pub base: TrainConfig,
    /// Relative weight-noise level injected during training (0 disables,
    /// reducing to plain [`train`]).
    pub weight_sigma: f64,
}

/// Trains with per-batch weight-noise injection (see [`NoiseAwareConfig`]).
///
/// # Panics
///
/// Same contract as [`train`]; also panics if `weight_sigma < 0`.
pub fn train_noise_aware(
    network: &mut ComplexNetwork,
    features: &[Vec<C64>],
    labels: &[usize],
    config: &NoiseAwareConfig,
) -> TrainReport {
    assert!(
        config.weight_sigma >= 0.0,
        "weight sigma must be non-negative"
    );
    assert_eq!(features.len(), labels.len(), "features/labels mismatch");
    assert!(!features.is_empty(), "training set must be non-empty");
    assert!(config.base.batch_size > 0, "batch size must be positive");

    let mut rng = StdRng::seed_from_u64(config.base.seed);
    let mut noise_rng = StdRng::seed_from_u64(config.base.seed ^ 0xD1CE);
    let mut optimizer = Adam::new(config.base.learning_rate);
    let mut order: Vec<usize> = (0..features.len()).collect();
    let mut loss_history = Vec::with_capacity(config.base.epochs);

    for epoch in 0..config.base.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.base.batch_size) {
            // Gradients at a noisy copy of the weights.
            let mut noisy = network.clone();
            if config.weight_sigma > 0.0 {
                for layer in noisy.layers_mut() {
                    let rms = {
                        let w = layer.weight();
                        (w.as_slice().iter().map(|z| z.abs_sq()).sum::<f64>()
                            / w.as_slice().len() as f64)
                            .sqrt()
                    };
                    let sigma = config.weight_sigma * rms;
                    let w = layer.weight_mut();
                    for z in w.as_mut_slice() {
                        *z += spnn_linalg::random::gaussian_complex(&mut noise_rng).scale(sigma);
                    }
                }
            }
            noisy.zero_grads();
            let mut batch_loss = 0.0;
            for &idx in batch {
                batch_loss += noisy.backward(&features[idx], labels[idx]);
            }
            noisy.scale_grads(1.0 / batch.len() as f64);
            // Copy the noisy-point gradients onto the clean network and step.
            for (clean, dirty) in network.layers_mut().iter_mut().zip(noisy.layers()) {
                clean.zero_grad();
                let g = dirty.grad().clone();
                let target = clean.grad_mut();
                for (t, s) in target.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *t = *s;
                }
            }
            optimizer.step(network);
            epoch_loss += batch_loss;
        }
        let mean_loss = epoch_loss / features.len() as f64;
        loss_history.push(mean_loss);
        if config.base.verbose {
            eprintln!("noise-aware epoch {epoch:>3}: loss {mean_loss:.4}");
        }
    }

    TrainReport {
        loss_history,
        train_accuracy: network.accuracy(features, labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use spnn_linalg::random::gaussian_complex;

    /// A 3-class toy problem: class = phase sector of a dominant feature.
    fn toy_dataset(n: usize, seed: u64) -> (Vec<Vec<C64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let class = rng.gen_range(0..3usize);
            // Distinct complex prototypes + noise.
            let proto = match class {
                0 => [C64::new(1.5, 0.0), C64::new(0.0, 0.0)],
                1 => [C64::new(0.0, 1.5), C64::new(0.5, 0.0)],
                _ => [C64::new(-1.0, -1.0), C64::new(0.0, 1.0)],
            };
            let x: Vec<C64> = proto
                .iter()
                .map(|&p| p + gaussian_complex(&mut rng).scale(0.15))
                .collect();
            xs.push(x);
            ys.push(class);
        }
        (xs, ys)
    }

    #[test]
    fn training_reaches_high_accuracy_on_toy_problem() {
        let (xs, ys) = toy_dataset(300, 1);
        let mut net = ComplexNetwork::new(&[2, 8, 3], 2);
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 16,
            learning_rate: 0.01,
            seed: 3,
            verbose: false,
        };
        let report = train(&mut net, &xs, &ys, &cfg);
        assert!(
            report.train_accuracy > 0.95,
            "accuracy {}",
            report.train_accuracy
        );
        // Loss went down substantially.
        let first = report.loss_history.first().unwrap();
        let last = report.loss_history.last().unwrap();
        assert!(last < &(first * 0.5), "loss {first} → {last}");
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = toy_dataset(100, 4);
        let cfg = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        let mut a = ComplexNetwork::new(&[2, 4, 3], 7);
        let mut b = ComplexNetwork::new(&[2, 4, 3], 7);
        let ra = train(&mut a, &xs, &ys, &cfg);
        let rb = train(&mut b, &xs, &ys, &cfg);
        assert_eq!(ra, rb);
        assert!(a.weights()[0].approx_eq(b.weights()[0], 0.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_panics() {
        let mut net = ComplexNetwork::new(&[2, 3], 1);
        let _ = train(&mut net, &[], &[], &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        let mut net = ComplexNetwork::new(&[2, 3], 1);
        let xs = vec![vec![C64::one(); 2]];
        let cfg = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        let _ = train(&mut net, &xs, &[0], &cfg);
    }

    #[test]
    fn noise_aware_with_zero_sigma_still_learns() {
        let (xs, ys) = toy_dataset(200, 8);
        let mut net = ComplexNetwork::new(&[2, 8, 3], 9);
        let report = train_noise_aware(
            &mut net,
            &xs,
            &ys,
            &NoiseAwareConfig {
                base: TrainConfig {
                    epochs: 40,
                    learning_rate: 0.01,
                    ..TrainConfig::default()
                },
                weight_sigma: 0.0,
            },
        );
        assert!(report.train_accuracy > 0.9, "acc {}", report.train_accuracy);
    }

    /// Average accuracy of `net` under relative complex weight noise.
    fn noisy_weight_accuracy(
        net: &ComplexNetwork,
        xs: &[Vec<C64>],
        ys: &[usize],
        rel_sigma: f64,
        draws: usize,
    ) -> f64 {
        let mut acc = 0.0;
        for k in 0..draws {
            let mut rng = StdRng::seed_from_u64(500 + k as u64);
            let mut noisy = net.clone();
            for layer in noisy.layers_mut() {
                let rms = {
                    let w = layer.weight();
                    (w.as_slice().iter().map(|z| z.abs_sq()).sum::<f64>()
                        / w.as_slice().len() as f64)
                        .sqrt()
                };
                let sigma = rel_sigma * rms;
                for z in layer.weight_mut().as_mut_slice() {
                    *z += gaussian_complex(&mut rng).scale(sigma);
                }
            }
            acc += noisy.accuracy(xs, ys);
        }
        acc / draws as f64
    }

    #[test]
    fn noise_aware_training_improves_robustness() {
        let (xs, ys) = toy_dataset(300, 10);
        let base_cfg = TrainConfig {
            epochs: 60,
            learning_rate: 0.01,
            batch_size: 16,
            seed: 3,
            verbose: false,
        };
        let mut baseline = ComplexNetwork::new(&[2, 8, 3], 11);
        train(&mut baseline, &xs, &ys, &base_cfg);
        let mut hardened = ComplexNetwork::new(&[2, 8, 3], 11);
        train_noise_aware(
            &mut hardened,
            &xs,
            &ys,
            &NoiseAwareConfig {
                base: base_cfg,
                weight_sigma: 0.25,
            },
        );
        // Under strong weight noise, the hardened network holds up better.
        // 50 draws keep the Monte-Carlo error on each estimate well below
        // the 2-point comparison slack.
        let test_sigma = 0.35;
        let robust_base = noisy_weight_accuracy(&baseline, &xs, &ys, test_sigma, 50);
        let robust_hard = noisy_weight_accuracy(&hardened, &xs, &ys, test_sigma, 50);
        assert!(
            robust_hard > robust_base - 0.02,
            "noise-aware ({robust_hard:.3}) should not lose to baseline ({robust_base:.3}) under noise"
        );
        // And both networks still learned the task nominally.
        assert!(hardened.accuracy(&xs, &ys) > 0.85);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_sigma_panics() {
        let mut net = ComplexNetwork::new(&[2, 3], 1);
        let xs = vec![vec![C64::one(); 2]];
        let _ = train_noise_aware(
            &mut net,
            &xs,
            &[0],
            &NoiseAwareConfig {
                base: TrainConfig::default(),
                weight_sigma: -0.1,
            },
        );
    }
}
