//! First-order optimizers over complex parameters.
//!
//! Complex weights are optimized component-wise: the packed gradient
//! `∂L/∂Re + i·∂L/∂Im` is exactly the steepest-ascent direction of the
//! real-valued loss in `(Re, Im)` coordinates, so SGD and Adam apply
//! verbatim with the real and imaginary parts treated as independent
//! parameters (Adam's second moment is tracked per component).

use crate::network::ComplexNetwork;

/// A first-order optimizer stepping a [`ComplexNetwork`] using its
/// accumulated gradients.
pub trait Optimizer {
    /// Applies one update step from the accumulated gradients. Does **not**
    /// zero the gradients — callers do that when starting the next batch.
    fn step(&mut self, network: &mut ComplexNetwork);
}

/// Plain stochastic gradient descent: `w ← w − lr·g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, network: &mut ComplexNetwork) {
        for layer in network.layers_mut() {
            let grad = layer.grad().clone();
            let w = layer.weight_mut();
            for (wi, gi) in w.as_mut_slice().iter_mut().zip(grad.as_slice().iter()) {
                *wi -= gi.scale(self.lr);
            }
        }
    }
}

/// Adam (Kingma & Ba, 2015) with per-real-component moments.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    /// Per-layer first/second moments over interleaved (re, im) components.
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates Adam with standard hyper-parameters (β₁ = 0.9, β₂ = 0.999,
    /// ε = 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure_state(&mut self, network: &ComplexNetwork) {
        if self.m.len() == network.n_layers() {
            return;
        }
        self.m = network
            .layers()
            .iter()
            .map(|l| vec![0.0; 2 * l.weight().as_slice().len()])
            .collect();
        self.v = self.m.clone();
    }
}

impl Optimizer for Adam {
    fn step(&mut self, network: &mut ComplexNetwork) {
        self.ensure_state(network);
        self.t += 1;
        let b1c = 1.0 - self.beta1.powi(self.t as i32);
        let b2c = 1.0 - self.beta2.powi(self.t as i32);
        for (layer, (m, v)) in network
            .layers_mut()
            .iter_mut()
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let grad = layer.grad().clone();
            let w = layer.weight_mut();
            for (i, (wi, gi)) in w
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice().iter())
                .enumerate()
            {
                for (part, g_part) in [(0, gi.re), (1, gi.im)] {
                    let k = 2 * i + part;
                    m[k] = self.beta1 * m[k] + (1.0 - self.beta1) * g_part;
                    v[k] = self.beta2 * v[k] + (1.0 - self.beta2) * g_part * g_part;
                    let m_hat = m[k] / b1c;
                    let v_hat = v[k] / b2c;
                    let upd = self.lr * m_hat / (v_hat.sqrt() + self.eps);
                    if part == 0 {
                        wi.re -= upd;
                    } else {
                        wi.im -= upd;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnn_linalg::C64;

    /// One gradient-descent step on a 1-layer net must reduce the loss.
    fn loss_decreases_with<O: Optimizer>(mut opt: O) {
        let mut net = ComplexNetwork::new(&[4, 4, 3], 11);
        let input = vec![
            C64::new(0.5, 0.1),
            C64::new(-0.3, 0.4),
            C64::new(0.2, -0.2),
            C64::new(0.9, 0.0),
        ];
        let label = 2;
        let before = net.loss(&input, label);
        for _ in 0..20 {
            net.zero_grads();
            let _ = net.backward(&input, label);
            opt.step(&mut net);
        }
        let after = net.loss(&input, label);
        assert!(after < before, "loss should decrease: {before} → {after}");
    }

    #[test]
    fn sgd_reduces_loss() {
        loss_decreases_with(Sgd::new(0.05));
    }

    #[test]
    fn adam_reduces_loss() {
        loss_decreases_with(Adam::new(0.01));
    }

    #[test]
    fn adam_overfits_single_sample_to_high_confidence() {
        let mut net = ComplexNetwork::new(&[3, 6, 2], 13);
        let mut opt = Adam::new(0.02);
        let input = vec![C64::new(1.0, 0.5), C64::new(-0.5, 0.2), C64::new(0.1, -0.9)];
        for _ in 0..300 {
            net.zero_grads();
            let _ = net.backward(&input, 0);
            opt.step(&mut net);
        }
        assert!(net.loss(&input, 0) < 0.05, "should overfit one sample");
        assert_eq!(net.predict(&input), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn adam_zero_lr_panics() {
        let _ = Adam::new(-1.0);
    }
}
