//! Cross-entropy loss over the intensity readout (paper §III-D).
//!
//! The network's real-valued output intensities `o = |z|²` go through
//! LogSoftMax; the loss for label `y` is the negative log-likelihood
//! `L = −log_softmax(o)[y]`, equivalently cross-entropy against the
//! one-hot target (paper ref. \[15\]).

use crate::activation::{log_softmax, softmax};

/// Cross-entropy loss value for a single sample.
///
/// # Panics
///
/// Panics if `label >= intensities.len()`.
///
/// # Example
///
/// ```
/// use spnn_neural::loss::cross_entropy;
/// // A confident, correct prediction has near-zero loss.
/// let loss = cross_entropy(&[10.0, 0.0, 0.0], 0);
/// assert!(loss < 0.01);
/// ```
pub fn cross_entropy(intensities: &[f64], label: usize) -> f64 {
    assert!(label < intensities.len(), "label out of range");
    -log_softmax(intensities)[label]
}

/// Gradient of the cross-entropy loss with respect to the intensities:
/// `∂L/∂o = softmax(o) − onehot(label)`.
///
/// # Panics
///
/// Panics if `label >= intensities.len()`.
pub fn cross_entropy_grad(intensities: &[f64], label: usize) -> Vec<f64> {
    assert!(label < intensities.len(), "label out of range");
    let mut g = softmax(intensities);
    g[label] -= 1.0;
    g
}

/// Index of the largest intensity — the predicted class.
///
/// # Panics
///
/// Panics if `intensities` is empty.
pub fn argmax(intensities: &[f64]) -> usize {
    assert!(!intensities.is_empty(), "empty prediction vector");
    let mut best = 0;
    for (i, &v) in intensities.iter().enumerate() {
        if v > intensities[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_nonnegative_and_zero_only_when_certain() {
        let uniform = cross_entropy(&[1.0, 1.0, 1.0], 1);
        assert!((uniform - (3.0f64).ln()).abs() < 1e-12);
        let confident = cross_entropy(&[0.0, 50.0, 0.0], 1);
        assert!((0.0..1e-12).contains(&confident));
    }

    #[test]
    fn wrong_confident_prediction_is_expensive() {
        let wrong = cross_entropy(&[50.0, 0.0], 1);
        assert!(wrong > 10.0);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let o = [0.5, -1.0, 2.0, 0.0];
        let label = 2;
        let g = cross_entropy_grad(&o, label);
        let h = 1e-6;
        for i in 0..o.len() {
            let mut op = o;
            op[i] += h;
            let mut om = o;
            om[i] -= h;
            let fd = (cross_entropy(&op, label) - cross_entropy(&om, label)) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-6, "component {i}");
        }
    }

    #[test]
    fn grad_sums_to_zero() {
        let g = cross_entropy_grad(&[1.0, 2.0, 3.0], 0);
        assert!(g.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn argmax_finds_peak() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[2.0]), 0);
        assert_eq!(argmax(&[1.0, 1.0]), 0); // ties break to first
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let _ = cross_entropy(&[1.0], 3);
    }
}
