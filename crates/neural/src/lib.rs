//! Complex-valued neural networks with Wirtinger-calculus backpropagation.
//!
//! The SPNN of the paper (§III-D) is trained *in software* before being
//! mapped onto photonic hardware. Its architecture:
//!
//! - complex-valued inputs (shifted-FFT features of MNIST-style images),
//! - fully connected complex linear layers (no bias — a photonic mesh
//!   realizes a pure matrix product),
//! - the **Softplus-on-modulus** activation after each hidden linear layer,
//! - a **modulus-squared** intensity readout after the output layer
//!   (photodetectors measure power, not field),
//! - **LogSoftMax** + cross-entropy loss.
//!
//! No Rust deep-learning ecosystem is assumed: gradients are derived by
//! hand. A real-valued loss `L` over complex parameters is differentiated
//! by packing `(∂L/∂Re, ∂L/∂Im)` into a `C64`; the backward rules used here
//! (and pinned by finite-difference tests):
//!
//! - linear layer `z = W·a`: `∇W = g_z·aᴴ`, `g_a = Wᴴ·g_z`,
//! - softplus-on-modulus `a = ln(1+e^{|z|})`: `g_z = Re(g_a)·σ(|z|)·z/|z|`,
//! - intensity `o = |z|²`: `g_z = 2·(∂L/∂o)·z`,
//! - log-softmax + NLL: `∂L/∂o = softmax(o) − onehot(label)`.
//!
//! # Example
//!
//! ```
//! use spnn_neural::ComplexNetwork;
//! use spnn_linalg::C64;
//!
//! let net = ComplexNetwork::new(&[4, 8, 3], 42);
//! let input = vec![C64::new(0.5, 0.1); 4];
//! let logits = net.forward(&input);
//! assert_eq!(logits.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activation;
pub mod layer;
pub mod loss;
pub mod network;
pub mod optimizer;
pub mod training;

pub use layer::DenseLayer;
pub use network::ComplexNetwork;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use training::{train, train_noise_aware, NoiseAwareConfig, TrainConfig, TrainReport};
