//! Complex fully connected (dense) layer — the software twin of a photonic
//! linear multiplier.
//!
//! No bias term: an MZI mesh realizes a pure matrix–vector product, so the
//! trained network must be bias-free for the hardware mapping `M = U·Σ·Vᴴ`
//! to be exact.

use rand::Rng;
use spnn_linalg::random::gaussian;
use spnn_linalg::{CMatrix, C64};

/// A complex dense layer `z = W·a` with gradient accumulation.
///
/// # Example
///
/// ```
/// use spnn_neural::DenseLayer;
/// use spnn_linalg::C64;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let layer = DenseLayer::glorot(3, 2, &mut rng);
/// let out = layer.forward(&[C64::one(), C64::i()]);
/// assert_eq!(out.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DenseLayer {
    weight: CMatrix,
    grad: CMatrix,
}

impl DenseLayer {
    /// Creates a layer with complex Glorot initialization: each of the real
    /// and imaginary parts is `N(0, 1/(fan_in + fan_out))`, giving the
    /// complex entries variance `2/(fan_in + fan_out)`.
    pub fn glorot<R: Rng + ?Sized>(out_dim: usize, in_dim: usize, rng: &mut R) -> Self {
        let std = (1.0 / (in_dim + out_dim) as f64).sqrt();
        let weight = CMatrix::from_fn(out_dim, in_dim, |_, _| {
            C64::new(gaussian(rng) * std, gaussian(rng) * std)
        });
        let grad = CMatrix::zeros(out_dim, in_dim);
        Self { weight, grad }
    }

    /// Creates a layer with explicit weights.
    pub fn from_weights(weight: CMatrix) -> Self {
        let grad = CMatrix::zeros(weight.rows(), weight.cols());
        Self { weight, grad }
    }

    /// Output dimension.
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Input dimension.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    #[inline]
    pub fn weight(&self) -> &CMatrix {
        &self.weight
    }

    /// Mutable access to the weight matrix (used by optimizers).
    #[inline]
    pub fn weight_mut(&mut self) -> &mut CMatrix {
        &mut self.weight
    }

    /// The accumulated gradient.
    #[inline]
    pub fn grad(&self) -> &CMatrix {
        &self.grad
    }

    /// Mutable access to the accumulated gradient (used by trainers that
    /// compute gradients at a surrogate point, e.g. noise-aware training).
    #[inline]
    pub fn grad_mut(&mut self) -> &mut CMatrix {
        &mut self.grad
    }

    /// Forward pass `z = W·a`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim()`.
    pub fn forward(&self, input: &[C64]) -> Vec<C64> {
        self.weight.mul_vec(input)
    }

    /// Backward pass: accumulates `∇W += g_z·aᴴ` and returns
    /// `g_a = Wᴴ·g_z`.
    ///
    /// `input` must be the same activation vector given to
    /// [`DenseLayer::forward`].
    ///
    /// # Panics
    ///
    /// Panics if the dimensions of `input`/`grad_out` do not match the layer.
    pub fn backward(&mut self, input: &[C64], grad_out: &[C64]) -> Vec<C64> {
        assert_eq!(input.len(), self.in_dim(), "input dim mismatch");
        assert_eq!(grad_out.len(), self.out_dim(), "grad dim mismatch");
        // ∇W[r][c] += g_z[r]·conj(a[c])
        for (r, &g) in grad_out.iter().enumerate() {
            for (c, a) in input.iter().enumerate() {
                let upd = g * a.conj();
                self.grad[(r, c)] += upd;
            }
        }
        self.weight.adjoint_mul_vec(grad_out)
    }

    /// Zeroes the accumulated gradient (call between optimizer steps).
    pub fn zero_grad(&mut self) {
        for g in self.grad.as_mut_slice() {
            *g = C64::zero();
        }
    }

    /// Scales the accumulated gradient (e.g. by `1/batch_size`).
    pub fn scale_grad(&mut self, k: f64) {
        for g in self.grad.as_mut_slice() {
            *g = g.scale(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_is_matrix_vector() {
        let w = CMatrix::from_fn(2, 3, |r, c| C64::new(r as f64, c as f64));
        let layer = DenseLayer::from_weights(w.clone());
        let a = vec![C64::one(), C64::i(), C64::new(1.0, 1.0)];
        let z = layer.forward(&a);
        let expect = w.mul_vec(&a);
        for (x, y) in z.iter().zip(expect.iter()) {
            assert!(x.approx_eq(*y, 1e-14));
        }
    }

    #[test]
    fn glorot_variance_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = DenseLayer::glorot(64, 64, &mut rng);
        let var: f64 = layer
            .weight()
            .as_slice()
            .iter()
            .map(|z| z.abs_sq())
            .sum::<f64>()
            / (64.0 * 64.0);
        // E|w|² = 2/(fan_in+fan_out) = 2/128.
        assert!((var / (2.0 / 128.0) - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn backward_weight_gradient_matches_finite_difference() {
        // L = Σᵢ wᵢ·Re(zᵢ) + vᵢ·Im(zᵢ) for fixed (w, v): grad_out packs (w, v).
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = DenseLayer::glorot(2, 3, &mut rng);
        let a = vec![C64::new(0.5, -0.2), C64::new(-1.0, 0.3), C64::new(0.1, 0.9)];
        let grad_out = vec![C64::new(0.7, -0.4), C64::new(-0.2, 1.1)];
        layer.zero_grad();
        let _ = layer.backward(&a, &grad_out);

        let loss = |w: &CMatrix| -> f64 {
            let z = w.mul_vec(&a);
            z.iter()
                .zip(grad_out.iter())
                .map(|(zi, gi)| gi.re * zi.re + gi.im * zi.im)
                .sum()
        };
        let h = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut wp = layer.weight().clone();
                wp[(r, c)].re += h;
                let mut wm = layer.weight().clone();
                wm[(r, c)].re -= h;
                let fd_re = (loss(&wp) - loss(&wm)) / (2.0 * h);
                assert!(
                    (fd_re - layer.grad()[(r, c)].re).abs() < 1e-6,
                    "∂L/∂Re W[{r}][{c}]"
                );
                let mut wp = layer.weight().clone();
                wp[(r, c)].im += h;
                let mut wm = layer.weight().clone();
                wm[(r, c)].im -= h;
                let fd_im = (loss(&wp) - loss(&wm)) / (2.0 * h);
                assert!(
                    (fd_im - layer.grad()[(r, c)].im).abs() < 1e-6,
                    "∂L/∂Im W[{r}][{c}]"
                );
            }
        }
    }

    #[test]
    fn backward_input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = DenseLayer::glorot(3, 2, &mut rng);
        let a = vec![C64::new(0.4, 0.6), C64::new(-0.8, 0.1)];
        let grad_out = vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0), C64::new(-0.5, 0.5)];
        let g_a = layer.backward(&a, &grad_out);

        let loss = |aa: &[C64]| -> f64 {
            let z = layer.forward(aa);
            z.iter()
                .zip(grad_out.iter())
                .map(|(zi, gi)| gi.re * zi.re + gi.im * zi.im)
                .sum()
        };
        let h = 1e-6;
        for i in 0..2 {
            let mut ap = a.clone();
            ap[i].re += h;
            let mut am = a.clone();
            am[i].re -= h;
            assert!(((loss(&ap) - loss(&am)) / (2.0 * h) - g_a[i].re).abs() < 1e-6);
            let mut ap = a.clone();
            ap[i].im += h;
            let mut am = a.clone();
            am[i].im -= h;
            assert!(((loss(&ap) - loss(&am)) / (2.0 * h) - g_a[i].im).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_accumulates_across_calls() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = DenseLayer::glorot(2, 2, &mut rng);
        let a = vec![C64::one(), C64::i()];
        let g = vec![C64::one(), C64::one()];
        layer.zero_grad();
        let _ = layer.backward(&a, &g);
        let first = layer.grad().clone();
        let _ = layer.backward(&a, &g);
        let doubled = layer.grad().clone();
        assert!(doubled.approx_eq(&first.scale_real(2.0), 1e-12));
        layer.zero_grad();
        assert!(layer.grad().max_abs() < 1e-15);
    }

    #[test]
    fn scale_grad_scales() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = DenseLayer::glorot(2, 2, &mut rng);
        let _ = layer.backward(&[C64::one(), C64::one()], &[C64::one(), C64::one()]);
        let before = layer.grad().clone();
        layer.scale_grad(0.5);
        assert!(layer.grad().approx_eq(&before.scale_real(0.5), 1e-14));
    }
}
