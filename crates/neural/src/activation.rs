//! Nonlinearities of the paper's SPNN (§III-D): Softplus on the modulus,
//! modulus-squared intensity readout, and LogSoftMax.
//!
//! Forward and backward passes are free functions over slices; the backward
//! functions take the *upstream* gradient and the cached forward inputs and
//! return the downstream gradient, packing complex gradients as
//! `∂L/∂Re + i·∂L/∂Im`.

use spnn_linalg::C64;

/// `e^{−t}` for `t ≥ 0` via range reduction and a degree-12 Estrin-scheme
/// polynomial — straight-line f64 arithmetic with no branches and no libm
/// calls, so the compiler can vectorize activation loops over contiguous
/// batches while scalar and SIMD evaluations stay bit-identical (same
/// operations, independent lanes).
///
/// Relative error < 3e-16 on the reduced interval. Inputs are clamped at
/// 709, where the 2^n scale factor becomes exactly 0 — the same 0 the
/// libm formulation underflows to. NaN propagates (the saturating
/// `NaN as i64` cast yields scale 1 and the polynomial keeps the NaN), so
/// an upstream numeric fault surfaces instead of masquerading as 0.
#[inline(always)]
fn exp_neg(t: f64) -> f64 {
    debug_assert!(
        t >= 0.0 || t.is_nan(),
        "exp_neg expects t >= 0 (or NaN), got {t}"
    );
    const LN2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    // NaN-preserving clamp (`f64::min` would swallow the NaN).
    let t = if t > 709.1 { 709.1 } else { t };
    let y = -t;
    let n = (y * std::f64::consts::LOG2_E).round_ties_even();
    // Two-part Cody–Waite reduction: r = y − n·ln2 ∈ [−ln2/2, ln2/2].
    let r = (y - n * LN2_HI) - n * LN2_LO;
    // e^r = Σ r^k/k!, k ≤ 12 (the k = 13 remainder is < 2e-16 relative),
    // evaluated Estrin-style to keep the dependency chain short.
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let p01 = 1.0 + r;
    let p23 = 1.0 / 2.0 + r * (1.0 / 6.0);
    let p45 = 1.0 / 24.0 + r * (1.0 / 120.0);
    let p67 = 1.0 / 720.0 + r * (1.0 / 5_040.0);
    let p89 = 1.0 / 40_320.0 + r * (1.0 / 362_880.0);
    let p1011 = 1.0 / 3_628_800.0 + r * (1.0 / 39_916_800.0);
    let a = p01 + r2 * p23;
    let b = p45 + r2 * p67;
    let c = p89 + r2 * p1011;
    let d = 1.0 / 479_001_600.0;
    let low = a + r4 * b;
    let high = c + r4 * d;
    let p = low + r8 * high;
    // 2^n for n ∈ [−1023, 0], built directly from the exponent bits
    // (n = −1023 gives the all-zero pattern, i.e. exactly 0.0).
    let scale = f64::from_bits(((n as i64 + 1023) as u64) << 52);
    p * scale
}

/// `ln(1 + u)` for `u ∈ [0, 1]` as `u · Q(u)` with a degree-21 Chebyshev
/// polynomial `Q ≈ ln(1+u)/u` (coefficients fitted at 45-digit precision;
/// worst relative error 1.1e-14 over the interval). Division-free,
/// branch-free, select-free — mul/add only — so it vectorizes to pure
/// `vmulpd`/`vaddpd` streams. `Q(0) = 1` exactly, so the deep tail
/// (`u → 0`) returns `u` itself with vanishing relative error.
#[inline(always)]
fn ln_1p_unit(u: f64) -> f64 {
    debug_assert!(
        (0.0..=1.0).contains(&u) || u.is_nan(),
        "ln_1p_unit expects u in [0, 1] (or NaN), got {u}"
    );
    const Q: [f64; 22] = [
        1.0,
        -0.49999999999924183,
        0.33333333328372006,
        -0.2499999976605303,
        0.19999993210767766,
        -0.16666546159020404,
        0.14284320411215368,
        -0.12488865029542943,
        0.11046999932925998,
        -0.09725940018684134,
        0.08203622424120112,
        -0.061304859365163895,
        0.03470461924839339,
        -0.008782192991243921,
        -0.0056015099516097564,
        0.0036703733141880755,
        0.0067014098459350704,
        -0.012924182782667213,
        0.01070219441875136,
        -0.005083833215212285,
        0.0013541833764644643,
        -0.00015820467965422803,
    ];
    // Estrin evaluation: short dependency chains, plenty of ILP.
    let u2 = u * u;
    let u4 = u2 * u2;
    let u8 = u4 * u4;
    let u16 = u8 * u8;
    let p01 = Q[0] + u * Q[1];
    let p23 = Q[2] + u * Q[3];
    let p45 = Q[4] + u * Q[5];
    let p67 = Q[6] + u * Q[7];
    let p89 = Q[8] + u * Q[9];
    let p1011 = Q[10] + u * Q[11];
    let p1213 = Q[12] + u * Q[13];
    let p1415 = Q[14] + u * Q[15];
    let p1617 = Q[16] + u * Q[17];
    let p1819 = Q[18] + u * Q[19];
    let p2021 = Q[20] + u * Q[21];
    let a0 = p01 + u2 * p23;
    let a1 = p45 + u2 * p67;
    let a2 = p89 + u2 * p1011;
    let a3 = p1213 + u2 * p1415;
    let a4 = p1617 + u2 * p1819;
    let a5 = p2021;
    let b0 = a0 + u4 * a1;
    let b1 = a2 + u4 * a3;
    let b2 = a4 + u4 * a5;
    let c0 = b0 + u8 * b1;
    u * (c0 + u16 * b2)
}

/// Numerically stable softplus `ln(1 + eˣ)`.
///
/// Computed as `max(x, 0) + ln(1 + e^{−|x|})` (overflow-free) on top of
/// the branchless arithmetic kernels `exp_neg` / `ln_1p_unit`
/// instead of libm, so the batched forward path (`spnn-engine`) can
/// auto-vectorize whole activation planes while remaining bit-identical
/// to per-sample evaluation. Agrees with the libm formulation to better
/// than 1e-13 relative error for `x ≥ −18`; for deeper negative inputs
/// (where softplus itself is < 2e-8) the error stays below 1e-16
/// absolute (pinned by tests).
#[inline(always)]
pub fn softplus(x: f64) -> f64 {
    x.max(0.0) + ln_1p_unit(exp_neg(x.abs()))
}

/// Logistic sigmoid `1 / (1 + e^{−x})` — the derivative of softplus.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// The modulus used by the activation paths: `√(re² + im²)` evaluated as
/// `abs_sq().sqrt()` rather than `hypot`, so the batched forward can
/// vectorize it (`hypot` is a libm call; `sqrt` is a single instruction).
/// Over/underflow of the squares is impossible for the O(1) field
/// amplitudes this network propagates.
#[inline]
fn activation_modulus(v: C64) -> f64 {
    v.abs_sq().sqrt()
}

/// Softplus-on-modulus forward: `aᵢ = softplus(|zᵢ|)` (a *real* vector
/// returned as complex with zero imaginary part, since downstream layers
/// multiply it with complex weights).
pub fn mod_softplus(z: &[C64]) -> Vec<C64> {
    z.iter()
        .map(|v| C64::from(softplus(activation_modulus(*v))))
        .collect()
}

/// Backward pass of [`mod_softplus`]: `g_z = Re(g_a)·σ(|z|)·z/|z|`.
///
/// Only the real part of the upstream gradient propagates — the activation
/// output is structurally real, so its imaginary part receives no error
/// signal.
pub fn mod_softplus_backward(z: &[C64], grad_out: &[C64]) -> Vec<C64> {
    debug_assert_eq!(z.len(), grad_out.len());
    z.iter()
        .zip(grad_out.iter())
        .map(|(v, g)| {
            let scale = g.re * sigmoid(v.abs());
            v.unit_or_zero().scale(scale)
        })
        .collect()
}

/// Intensity readout forward: `oᵢ = |zᵢ|²` — photodetector power.
pub fn intensity(z: &[C64]) -> Vec<f64> {
    z.iter().map(|v| v.abs_sq()).collect()
}

/// Backward pass of [`intensity`]: `g_z = 2·(∂L/∂o)·z`.
pub fn intensity_backward(z: &[C64], grad_out: &[f64]) -> Vec<C64> {
    debug_assert_eq!(z.len(), grad_out.len());
    z.iter()
        .zip(grad_out.iter())
        .map(|(v, &g)| v.scale(2.0 * g))
        .collect()
}

/// LogSoftMax over a real vector (numerically stabilized).
pub fn log_softmax(o: &[f64]) -> Vec<f64> {
    let max = o.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let log_sum: f64 = o.iter().map(|&x| (x - max).exp()).sum::<f64>().ln() + max;
    o.iter().map(|&x| x - log_sum).collect()
}

/// Softmax over a real vector (numerically stabilized).
pub fn softmax(o: &[f64]) -> Vec<f64> {
    let max = o.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = o.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softplus_known_values() {
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-14);
        assert!((softplus(100.0) - 100.0).abs() < 1e-12); // asymptote x
        assert!(softplus(-100.0) < 1e-12); // asymptote 0
        assert!(softplus(-100.0) > 0.0);
    }

    #[test]
    fn softplus_matches_libm_reference_everywhere() {
        // The libm formulation the polynomial kernels replace.
        fn reference(x: f64) -> f64 {
            x.max(0.0) + (-x.abs()).exp().ln_1p()
        }
        let mut x = -60.0;
        while x <= 60.0 {
            let fast = softplus(x);
            let slow = reference(x);
            // Relative in the main range; absolute (≪ any consumer's
            // resolution) in the deep-negative tail where the branchless
            // ln1p returns u instead of u − u²/2.
            let err = (fast - slow).abs();
            assert!(
                err / slow.abs().max(1e-300) < 1e-13 || err < 1e-16,
                "x={x}: fast {fast:e} vs libm {slow:e}"
            );
            x += 0.00917; // irrational-ish step to avoid hitting only round values
        }
        // Deep negative tail stays positive and finite like the reference.
        assert!(softplus(-300.0) > 0.0);
        assert!(softplus(-300.0) < 1e-128);
        assert_eq!(softplus(-1000.0), 0.0);
        assert_eq!(softplus(1000.0), 1000.0);
    }

    #[test]
    fn softplus_nonfinite_inputs() {
        // NaN must propagate (an upstream fault should not become a
        // confident zero activation), and infinities keep the libm
        // formulation's limits.
        assert!(softplus(f64::NAN).is_nan());
        assert_eq!(softplus(f64::INFINITY), f64::INFINITY);
        assert_eq!(softplus(f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn sigmoid_is_softplus_derivative() {
        for &x in &[-3.0, -0.5, 0.0, 0.7, 4.0] {
            let h = 1e-6;
            let fd = (softplus(x + h) - softplus(x - h)) / (2.0 * h);
            assert!((fd - sigmoid(x)).abs() < 1e-8, "x={x}");
        }
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert!((sigmoid(800.0) - 1.0).abs() < 1e-15);
        assert!(sigmoid(-800.0).abs() < 1e-15);
        assert!(sigmoid(-800.0) >= 0.0);
    }

    #[test]
    fn mod_softplus_output_is_real_nonnegative() {
        let z = [C64::new(1.0, -2.0), C64::new(-0.5, 0.0), C64::zero()];
        for a in mod_softplus(&z) {
            assert_eq!(a.im, 0.0);
            assert!(a.re > 0.0);
        }
    }

    #[test]
    fn mod_softplus_backward_matches_finite_difference() {
        let z = [C64::new(0.8, -0.4), C64::new(-1.1, 0.6)];
        // Loss L = Σ wᵢ·softplus(|zᵢ|) for fixed weights w ⇒ grad_out = w.
        let w = [0.7, -1.3];
        let grad_out: Vec<C64> = w.iter().map(|&x| C64::from(x)).collect();
        let analytic = mod_softplus_backward(&z, &grad_out);
        let h = 1e-6;
        for i in 0..z.len() {
            let mut zp = z;
            zp[i].re += h;
            let lp: f64 = zp
                .iter()
                .zip(w.iter())
                .map(|(v, &wi)| wi * softplus(v.abs()))
                .sum();
            let mut zm = z;
            zm[i].re -= h;
            let lm: f64 = zm
                .iter()
                .zip(w.iter())
                .map(|(v, &wi)| wi * softplus(v.abs()))
                .sum();
            assert!(
                ((lp - lm) / (2.0 * h) - analytic[i].re).abs() < 1e-6,
                "re[{i}]"
            );

            let mut zp = z;
            zp[i].im += h;
            let lp: f64 = zp
                .iter()
                .zip(w.iter())
                .map(|(v, &wi)| wi * softplus(v.abs()))
                .sum();
            let mut zm = z;
            zm[i].im -= h;
            let lm: f64 = zm
                .iter()
                .zip(w.iter())
                .map(|(v, &wi)| wi * softplus(v.abs()))
                .sum();
            assert!(
                ((lp - lm) / (2.0 * h) - analytic[i].im).abs() < 1e-6,
                "im[{i}]"
            );
        }
    }

    #[test]
    fn mod_softplus_backward_at_zero_is_zero() {
        let z = [C64::zero()];
        let g = mod_softplus_backward(&z, &[C64::one()]);
        assert_eq!(g[0], C64::zero());
    }

    #[test]
    fn intensity_backward_matches_finite_difference() {
        let z = [C64::new(0.3, -0.9), C64::new(1.2, 0.4)];
        let w = [2.0, -0.5]; // L = Σ wᵢ·|zᵢ|²
        let analytic = intensity_backward(&z, &w);
        let h = 1e-6;
        for i in 0..z.len() {
            let loss = |zz: &[C64]| -> f64 {
                zz.iter()
                    .zip(w.iter())
                    .map(|(v, &wi)| wi * v.abs_sq())
                    .sum()
            };
            let mut zp = z;
            zp[i].re += h;
            let mut zm = z;
            zm[i].re -= h;
            assert!(((loss(&zp) - loss(&zm)) / (2.0 * h) - analytic[i].re).abs() < 1e-6);
            let mut zp = z;
            zp[i].im += h;
            let mut zm = z;
            zm[i].im -= h;
            assert!(((loss(&zp) - loss(&zm)) / (2.0 * h) - analytic[i].im).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_normalizes() {
        let o = [1.0, 2.0, 3.0];
        let ls = log_softmax(&o);
        let total: f64 = ls.iter().map(|&x| x.exp()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Order preserved.
        assert!(ls[2] > ls[1] && ls[1] > ls[0]);
    }

    #[test]
    fn log_softmax_handles_large_inputs() {
        let o = [1000.0, 1001.0];
        let ls = log_softmax(&o);
        assert!(ls.iter().all(|x| x.is_finite()));
        let total: f64 = ls.iter().map(|&x| x.exp()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_matches_exp_log_softmax() {
        let o = [0.1, -0.7, 2.0, 0.0];
        let sm = softmax(&o);
        let ls = log_softmax(&o);
        for (a, b) in sm.iter().zip(ls.iter()) {
            assert!((a - b.exp()).abs() < 1e-12);
        }
        assert!((sm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
