//! Nonlinearities of the paper's SPNN (§III-D): Softplus on the modulus,
//! modulus-squared intensity readout, and LogSoftMax.
//!
//! Forward and backward passes are free functions over slices; the backward
//! functions take the *upstream* gradient and the cached forward inputs and
//! return the downstream gradient, packing complex gradients as
//! `∂L/∂Re + i·∂L/∂Im`.

use spnn_linalg::C64;

/// Numerically stable softplus `ln(1 + eˣ)`.
pub fn softplus(x: f64) -> f64 {
    // max(x, 0) + ln(1 + e^{−|x|}) avoids overflow for large |x|.
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

/// Logistic sigmoid `1 / (1 + e^{−x})` — the derivative of softplus.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Softplus-on-modulus forward: `aᵢ = softplus(|zᵢ|)` (a *real* vector
/// returned as complex with zero imaginary part, since downstream layers
/// multiply it with complex weights).
pub fn mod_softplus(z: &[C64]) -> Vec<C64> {
    z.iter().map(|v| C64::from(softplus(v.abs()))).collect()
}

/// Backward pass of [`mod_softplus`]: `g_z = Re(g_a)·σ(|z|)·z/|z|`.
///
/// Only the real part of the upstream gradient propagates — the activation
/// output is structurally real, so its imaginary part receives no error
/// signal.
pub fn mod_softplus_backward(z: &[C64], grad_out: &[C64]) -> Vec<C64> {
    debug_assert_eq!(z.len(), grad_out.len());
    z.iter()
        .zip(grad_out.iter())
        .map(|(v, g)| {
            let scale = g.re * sigmoid(v.abs());
            v.unit_or_zero().scale(scale)
        })
        .collect()
}

/// Intensity readout forward: `oᵢ = |zᵢ|²` — photodetector power.
pub fn intensity(z: &[C64]) -> Vec<f64> {
    z.iter().map(|v| v.abs_sq()).collect()
}

/// Backward pass of [`intensity`]: `g_z = 2·(∂L/∂o)·z`.
pub fn intensity_backward(z: &[C64], grad_out: &[f64]) -> Vec<C64> {
    debug_assert_eq!(z.len(), grad_out.len());
    z.iter()
        .zip(grad_out.iter())
        .map(|(v, &g)| v.scale(2.0 * g))
        .collect()
}

/// LogSoftMax over a real vector (numerically stabilized).
pub fn log_softmax(o: &[f64]) -> Vec<f64> {
    let max = o.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let log_sum: f64 = o.iter().map(|&x| (x - max).exp()).sum::<f64>().ln() + max;
    o.iter().map(|&x| x - log_sum).collect()
}

/// Softmax over a real vector (numerically stabilized).
pub fn softmax(o: &[f64]) -> Vec<f64> {
    let max = o.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = o.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softplus_known_values() {
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-14);
        assert!((softplus(100.0) - 100.0).abs() < 1e-12); // asymptote x
        assert!(softplus(-100.0) < 1e-12); // asymptote 0
        assert!(softplus(-100.0) > 0.0);
    }

    #[test]
    fn sigmoid_is_softplus_derivative() {
        for &x in &[-3.0, -0.5, 0.0, 0.7, 4.0] {
            let h = 1e-6;
            let fd = (softplus(x + h) - softplus(x - h)) / (2.0 * h);
            assert!((fd - sigmoid(x)).abs() < 1e-8, "x={x}");
        }
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert!((sigmoid(800.0) - 1.0).abs() < 1e-15);
        assert!(sigmoid(-800.0).abs() < 1e-15);
        assert!(sigmoid(-800.0) >= 0.0);
    }

    #[test]
    fn mod_softplus_output_is_real_nonnegative() {
        let z = [C64::new(1.0, -2.0), C64::new(-0.5, 0.0), C64::zero()];
        for a in mod_softplus(&z) {
            assert_eq!(a.im, 0.0);
            assert!(a.re > 0.0);
        }
    }

    #[test]
    fn mod_softplus_backward_matches_finite_difference() {
        let z = [C64::new(0.8, -0.4), C64::new(-1.1, 0.6)];
        // Loss L = Σ wᵢ·softplus(|zᵢ|) for fixed weights w ⇒ grad_out = w.
        let w = [0.7, -1.3];
        let grad_out: Vec<C64> = w.iter().map(|&x| C64::from(x)).collect();
        let analytic = mod_softplus_backward(&z, &grad_out);
        let h = 1e-6;
        for i in 0..z.len() {
            let mut zp = z;
            zp[i].re += h;
            let lp: f64 = zp.iter().zip(w.iter()).map(|(v, &wi)| wi * softplus(v.abs())).sum();
            let mut zm = z;
            zm[i].re -= h;
            let lm: f64 = zm.iter().zip(w.iter()).map(|(v, &wi)| wi * softplus(v.abs())).sum();
            assert!(((lp - lm) / (2.0 * h) - analytic[i].re).abs() < 1e-6, "re[{i}]");

            let mut zp = z;
            zp[i].im += h;
            let lp: f64 = zp.iter().zip(w.iter()).map(|(v, &wi)| wi * softplus(v.abs())).sum();
            let mut zm = z;
            zm[i].im -= h;
            let lm: f64 = zm.iter().zip(w.iter()).map(|(v, &wi)| wi * softplus(v.abs())).sum();
            assert!(((lp - lm) / (2.0 * h) - analytic[i].im).abs() < 1e-6, "im[{i}]");
        }
    }

    #[test]
    fn mod_softplus_backward_at_zero_is_zero() {
        let z = [C64::zero()];
        let g = mod_softplus_backward(&z, &[C64::one()]);
        assert_eq!(g[0], C64::zero());
    }

    #[test]
    fn intensity_backward_matches_finite_difference() {
        let z = [C64::new(0.3, -0.9), C64::new(1.2, 0.4)];
        let w = [2.0, -0.5]; // L = Σ wᵢ·|zᵢ|²
        let analytic = intensity_backward(&z, &w);
        let h = 1e-6;
        for i in 0..z.len() {
            let loss = |zz: &[C64]| -> f64 { zz.iter().zip(w.iter()).map(|(v, &wi)| wi * v.abs_sq()).sum() };
            let mut zp = z;
            zp[i].re += h;
            let mut zm = z;
            zm[i].re -= h;
            assert!(((loss(&zp) - loss(&zm)) / (2.0 * h) - analytic[i].re).abs() < 1e-6);
            let mut zp = z;
            zp[i].im += h;
            let mut zm = z;
            zm[i].im -= h;
            assert!(((loss(&zp) - loss(&zm)) / (2.0 * h) - analytic[i].im).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_normalizes() {
        let o = [1.0, 2.0, 3.0];
        let ls = log_softmax(&o);
        let total: f64 = ls.iter().map(|&x| x.exp()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Order preserved.
        assert!(ls[2] > ls[1] && ls[1] > ls[0]);
    }

    #[test]
    fn log_softmax_handles_large_inputs() {
        let o = [1000.0, 1001.0];
        let ls = log_softmax(&o);
        assert!(ls.iter().all(|x| x.is_finite()));
        let total: f64 = ls.iter().map(|&x| x.exp()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_matches_exp_log_softmax() {
        let o = [0.1, -0.7, 2.0, 0.0];
        let sm = softmax(&o);
        let ls = log_softmax(&o);
        for (a, b) in sm.iter().zip(ls.iter()) {
            assert!((a - b.exp()).abs() < 1e-12);
        }
        assert!((sm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
