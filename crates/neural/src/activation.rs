//! Nonlinearities of the paper's SPNN (§III-D): Softplus on the modulus,
//! modulus-squared intensity readout, and LogSoftMax.
//!
//! Forward and backward passes are free functions over slices; the backward
//! functions take the *upstream* gradient and the cached forward inputs and
//! return the downstream gradient, packing complex gradients as
//! `∂L/∂Re + i·∂L/∂Im`.

use spnn_linalg::C64;

/// Two-part Cody–Waite split of `ln 2` shared by every exp kernel in this
/// module (scalar, fused, and explicit-SIMD — one definition so the paths
/// cannot drift apart).
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;

/// Degree-21 Chebyshev fit of `ln(1+u)/u` on `[0, 1]` (coefficients
/// fitted at 45-digit precision; worst relative error 1.1e-14 over the
/// interval). Shared by every `ln(1+u)` kernel in this module.
const LN1P_Q: [f64; 22] = [
    1.0,
    -0.49999999999924183,
    0.33333333328372006,
    -0.2499999976605303,
    0.19999993210767766,
    -0.16666546159020404,
    0.14284320411215368,
    -0.12488865029542943,
    0.11046999932925998,
    -0.09725940018684134,
    0.08203622424120112,
    -0.061304859365163895,
    0.03470461924839339,
    -0.008782192991243921,
    -0.0056015099516097564,
    0.0036703733141880755,
    0.0067014098459350704,
    -0.012924182782667213,
    0.01070219441875136,
    -0.005083833215212285,
    0.0013541833764644643,
    -0.00015820467965422803,
];

/// `e^{−t}` for `t ≥ 0` via range reduction and a degree-12 Estrin-scheme
/// polynomial — straight-line f64 arithmetic with no branches and no libm
/// calls, so the compiler can vectorize activation loops over contiguous
/// batches while scalar and SIMD evaluations stay bit-identical (same
/// operations, independent lanes).
///
/// Relative error < 3e-16 on the reduced interval. Inputs are clamped at
/// 709, where the 2^n scale factor becomes exactly 0 — the same 0 the
/// libm formulation underflows to. NaN propagates (the saturating
/// `NaN as i64` cast yields scale 1 and the polynomial keeps the NaN), so
/// an upstream numeric fault surfaces instead of masquerading as 0.
#[inline(always)]
fn exp_neg(t: f64) -> f64 {
    debug_assert!(
        t >= 0.0 || t.is_nan(),
        "exp_neg expects t >= 0 (or NaN), got {t}"
    );
    // NaN-preserving clamp (`f64::min` would swallow the NaN).
    let t = if t > 709.1 { 709.1 } else { t };
    let y = -t;
    let n = (y * std::f64::consts::LOG2_E).round_ties_even();
    // Two-part Cody–Waite reduction: r = y − n·ln2 ∈ [−ln2/2, ln2/2].
    let r = (y - n * LN2_HI) - n * LN2_LO;
    // e^r = Σ r^k/k!, k ≤ 12 (the k = 13 remainder is < 2e-16 relative),
    // evaluated Estrin-style to keep the dependency chain short.
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let p01 = 1.0 + r;
    let p23 = 1.0 / 2.0 + r * (1.0 / 6.0);
    let p45 = 1.0 / 24.0 + r * (1.0 / 120.0);
    let p67 = 1.0 / 720.0 + r * (1.0 / 5_040.0);
    let p89 = 1.0 / 40_320.0 + r * (1.0 / 362_880.0);
    let p1011 = 1.0 / 3_628_800.0 + r * (1.0 / 39_916_800.0);
    let a = p01 + r2 * p23;
    let b = p45 + r2 * p67;
    let c = p89 + r2 * p1011;
    let d = 1.0 / 479_001_600.0;
    let low = a + r4 * b;
    let high = c + r4 * d;
    let p = low + r8 * high;
    // 2^n for n ∈ [−1023, 0], built directly from the exponent bits
    // (n = −1023 gives the all-zero pattern, i.e. exactly 0.0).
    let scale = f64::from_bits(((n as i64 + 1023) as u64) << 52);
    p * scale
}

/// `ln(1 + u)` for `u ∈ [0, 1]` as `u · Q(u)` with a degree-21 Chebyshev
/// polynomial `Q ≈ ln(1+u)/u` (coefficients fitted at 45-digit precision;
/// worst relative error 1.1e-14 over the interval). Division-free,
/// branch-free, select-free — mul/add only — so it vectorizes to pure
/// `vmulpd`/`vaddpd` streams. `Q(0) = 1` exactly, so the deep tail
/// (`u → 0`) returns `u` itself with vanishing relative error.
#[inline(always)]
fn ln_1p_unit(u: f64) -> f64 {
    debug_assert!(
        (0.0..=1.0).contains(&u) || u.is_nan(),
        "ln_1p_unit expects u in [0, 1] (or NaN), got {u}"
    );
    const Q: [f64; 22] = LN1P_Q;
    // Estrin evaluation: short dependency chains, plenty of ILP.
    let u2 = u * u;
    let u4 = u2 * u2;
    let u8 = u4 * u4;
    let u16 = u8 * u8;
    let p01 = Q[0] + u * Q[1];
    let p23 = Q[2] + u * Q[3];
    let p45 = Q[4] + u * Q[5];
    let p67 = Q[6] + u * Q[7];
    let p89 = Q[8] + u * Q[9];
    let p1011 = Q[10] + u * Q[11];
    let p1213 = Q[12] + u * Q[13];
    let p1415 = Q[14] + u * Q[15];
    let p1617 = Q[16] + u * Q[17];
    let p1819 = Q[18] + u * Q[19];
    let p2021 = Q[20] + u * Q[21];
    let a0 = p01 + u2 * p23;
    let a1 = p45 + u2 * p67;
    let a2 = p89 + u2 * p1011;
    let a3 = p1213 + u2 * p1415;
    let a4 = p1617 + u2 * p1819;
    let a5 = p2021;
    let b0 = a0 + u4 * a1;
    let b1 = a2 + u4 * a3;
    let b2 = a4 + u4 * a5;
    let c0 = b0 + u8 * b1;
    u * (c0 + u16 * b2)
}

/// Numerically stable softplus `ln(1 + eˣ)`.
///
/// Computed as `max(x, 0) + ln(1 + e^{−|x|})` (overflow-free) on top of
/// the branchless arithmetic kernels `exp_neg` / `ln_1p_unit`
/// instead of libm, so the batched forward path (`spnn-engine`) can
/// auto-vectorize whole activation planes while remaining bit-identical
/// to per-sample evaluation. Agrees with the libm formulation to better
/// than 1e-13 relative error for `x ≥ −18`; for deeper negative inputs
/// (where softplus itself is < 2e-8) the error stays below 1e-16
/// absolute (pinned by tests).
#[inline(always)]
pub fn softplus(x: f64) -> f64 {
    x.max(0.0) + ln_1p_unit(exp_neg(x.abs()))
}

/// `e^{−t}` for `t ≥ 0` on fused multiply-adds: the same range reduction
/// and degree-12 Estrin polynomial as `exp_neg`, with every `a·b + c`
/// contracted through [`f64::mul_add`]. Since `mul_add` is correctly
/// rounded (one rounding per fused step instead of two), the result is
/// deterministic and machine-independent — but *different in the last
/// bits* from `exp_neg`, which is why the two live side by side: the
/// engine's `reference` kernel profile keeps the unfused form, the `fma`
/// profile uses this one under its own pinned goldens.
#[inline(always)]
fn exp_neg_fma(t: f64) -> f64 {
    debug_assert!(
        t >= 0.0 || t.is_nan(),
        "exp_neg_fma expects t >= 0 (or NaN), got {t}"
    );
    let t = if t > 709.1 { 709.1 } else { t };
    let y = -t;
    let n = (y * std::f64::consts::LOG2_E).round_ties_even();
    // Cody–Waite reduction, each step fused: r = y − n·ln2_hi − n·ln2_lo.
    let r = (-n).mul_add(LN2_LO, (-n).mul_add(LN2_HI, y));
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let p01 = 1.0 + r;
    let p23 = r.mul_add(1.0 / 6.0, 1.0 / 2.0);
    let p45 = r.mul_add(1.0 / 120.0, 1.0 / 24.0);
    let p67 = r.mul_add(1.0 / 5_040.0, 1.0 / 720.0);
    let p89 = r.mul_add(1.0 / 362_880.0, 1.0 / 40_320.0);
    let p1011 = r.mul_add(1.0 / 39_916_800.0, 1.0 / 3_628_800.0);
    let a = r2.mul_add(p23, p01);
    let b = r2.mul_add(p67, p45);
    let c = r2.mul_add(p1011, p89);
    let d = 1.0 / 479_001_600.0;
    let low = r4.mul_add(b, a);
    let high = r4.mul_add(d, c);
    let p = r8.mul_add(high, low);
    let scale = f64::from_bits(((n as i64 + 1023) as u64) << 52);
    p * scale
}

/// `ln(1 + u)` for `u ∈ [0, 1]`: the `ln_1p_unit` Chebyshev evaluation
/// with every Estrin combination step contracted through
/// [`f64::mul_add`]. See [`exp_neg_fma`] for why the fused twin exists.
#[inline(always)]
fn ln_1p_unit_fma(u: f64) -> f64 {
    debug_assert!(
        (0.0..=1.0).contains(&u) || u.is_nan(),
        "ln_1p_unit_fma expects u in [0, 1] (or NaN), got {u}"
    );
    const Q: [f64; 22] = LN1P_Q;
    let u2 = u * u;
    let u4 = u2 * u2;
    let u8 = u4 * u4;
    let u16 = u8 * u8;
    let p01 = u.mul_add(Q[1], Q[0]);
    let p23 = u.mul_add(Q[3], Q[2]);
    let p45 = u.mul_add(Q[5], Q[4]);
    let p67 = u.mul_add(Q[7], Q[6]);
    let p89 = u.mul_add(Q[9], Q[8]);
    let p1011 = u.mul_add(Q[11], Q[10]);
    let p1213 = u.mul_add(Q[13], Q[12]);
    let p1415 = u.mul_add(Q[15], Q[14]);
    let p1617 = u.mul_add(Q[17], Q[16]);
    let p1819 = u.mul_add(Q[19], Q[18]);
    let p2021 = u.mul_add(Q[21], Q[20]);
    let a0 = u2.mul_add(p23, p01);
    let a1 = u2.mul_add(p67, p45);
    let a2 = u2.mul_add(p1011, p89);
    let a3 = u2.mul_add(p1415, p1213);
    let a4 = u2.mul_add(p1819, p1617);
    let a5 = p2021;
    let b0 = u4.mul_add(a1, a0);
    let b1 = u4.mul_add(a3, a2);
    let b2 = u4.mul_add(a5, a4);
    let c0 = u8.mul_add(b1, b0);
    u * u16.mul_add(b2, c0)
}

/// Softplus on fused multiply-adds — the `fma` kernel profile's twin of
/// [`softplus`]: same `max(x, 0) + ln(1 + e^{−|x|})` formulation, same
/// polynomial kernels, every `a·b + c` contracted through the correctly
/// rounded [`f64::mul_add`]. Deterministic and machine-independent like
/// the unfused form (one rounding per fused step, everywhere), but not
/// bit-identical to it — engine outputs produced with this path are
/// pinned under the `fma` profile's own goldens. Accuracy is the same or
/// slightly better than [`softplus`] (fewer roundings); the agreement
/// bound against libm is pinned by tests.
#[inline(always)]
pub fn softplus_fma(x: f64) -> f64 {
    x.max(0.0) + ln_1p_unit_fma(exp_neg_fma(x.abs()))
}

/// Explicit AVX-512 evaluation of the fused softplus-on-modulus plane
/// sweep — the `fma` kernel profile's activation path on machines with
/// the F+DQ+VL subsets.
///
/// LLVM only partially vectorizes the scalar [`softplus_fma`] chain (the
/// `f64 → i64` exponent build and the NaN-preserving clamp defeat the
/// loop vectorizer), so the hot sweep is written directly against the
/// 8-lane intrinsics. **Every intrinsic maps 1:1 to one scalar operation
/// of the fused chain** — `vfmadd`/`vfnmadd` for each `mul_add`,
/// `vrndscalepd(0x08)` for `round_ties_even`, `vmaxpd(x, 0)` /
/// `vandpd`-abs with the scalar operand order, `vcvttpd2qq + vpaddq +
/// vpsllq` for the exponent bit-build — and lanes are independent, so the
/// result is bit-identical to the scalar evaluation for every input
/// (including the NaN and ±0 edge cases; pinned by tests). The
/// non-multiple-of-8 tail runs the scalar chain under the same
/// `target_feature` context.
#[cfg(target_arch = "x86_64")]
#[doc(hidden)]
pub mod fma_avx512 {
    use super::{softplus_fma, LN1P_Q, LN2_HI, LN2_LO};
    use std::arch::x86_64::*;

    /// `z_re[k] = softplus_fma(√(re²+im²))`, `z_im[k] = 0` over whole
    /// planes — the fused-modulus activation sweep of the `fma` profile.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX-512 F, DQ and VL (callers dispatch via
    /// `is_x86_feature_detected!`).
    ///
    /// # Panics
    ///
    /// Panics if the planes differ in length.
    #[target_feature(enable = "avx512f,avx512dq,avx512vl")]
    pub unsafe fn activate_planes(z_re: &mut [f64], z_im: &mut [f64]) {
        assert_eq!(z_re.len(), z_im.len(), "plane length mismatch");
        let len = z_re.len();
        let mut k = 0usize;
        while k + 8 <= len {
            let re = _mm512_loadu_pd(z_re.as_ptr().add(k));
            let im = _mm512_loadu_pd(z_im.as_ptr().add(k));
            // s = fma(re, re, im·im); x = √s — same ops as the scalar body.
            let s = _mm512_fmadd_pd(re, re, _mm512_mul_pd(im, im));
            let x = _mm512_sqrt_pd(s);
            let out = softplus8(x);
            _mm512_storeu_pd(z_re.as_mut_ptr().add(k), out);
            _mm512_storeu_pd(z_im.as_mut_ptr().add(k), _mm512_setzero_pd());
            k += 8;
        }
        // Scalar tail: the identical fused chain (still compiled under
        // this function's target features, so `mul_add` is hardware fma).
        for k in k..len {
            let r = z_re[k];
            let i = z_im[k];
            let s = r.mul_add(r, i * i);
            z_re[k] = softplus_fma(s.sqrt());
            z_im[k] = 0.0;
        }
    }

    /// 8-lane [`softplus_fma`]: `max(x, 0) + ln(1 + e^{−|x|})`.
    #[inline(always)]
    unsafe fn softplus8(x: __m512d) -> __m512d {
        // x.max(0.0): vmaxpd returns the second operand when the first is
        // NaN — matching scalar `f64::max`, which returns the non-NaN arg.
        let m = _mm512_max_pd(x, _mm512_setzero_pd());
        let t = _mm512_abs_pd(x);
        _mm512_add_pd(m, ln_1p_unit8(exp_neg8(t)))
    }

    /// 8-lane [`super::exp_neg_fma`], one intrinsic per scalar op.
    #[inline(always)]
    unsafe fn exp_neg8(t: __m512d) -> __m512d {
        // NaN-preserving clamp: `t > 709.1` is false for NaN (ordered
        // quiet compare), so NaN lanes keep their payload like the scalar
        // `if t > 709.1` branch.
        let cap = _mm512_set1_pd(709.1);
        let gt = _mm512_cmp_pd_mask::<_CMP_GT_OQ>(t, cap);
        let t = _mm512_mask_blend_pd(gt, t, cap);
        let y = _mm512_xor_pd(t, _mm512_set1_pd(-0.0));
        let n = _mm512_roundscale_pd::<0x08>(_mm512_mul_pd(
            y,
            _mm512_set1_pd(std::f64::consts::LOG2_E),
        ));
        // r = (−n)·ln2_lo + ((−n)·ln2_hi + y), each step fused: vfnmadd
        // computes −(a·b) + c ≡ (−a)·b + c exactly.
        let r = _mm512_fnmadd_pd(
            n,
            _mm512_set1_pd(LN2_LO),
            _mm512_fnmadd_pd(n, _mm512_set1_pd(LN2_HI), y),
        );
        let r2 = _mm512_mul_pd(r, r);
        let r4 = _mm512_mul_pd(r2, r2);
        let r8 = _mm512_mul_pd(r4, r4);
        let c = |v: f64| _mm512_set1_pd(v);
        let p01 = _mm512_add_pd(c(1.0), r);
        let p23 = _mm512_fmadd_pd(r, c(1.0 / 6.0), c(1.0 / 2.0));
        let p45 = _mm512_fmadd_pd(r, c(1.0 / 120.0), c(1.0 / 24.0));
        let p67 = _mm512_fmadd_pd(r, c(1.0 / 5_040.0), c(1.0 / 720.0));
        let p89 = _mm512_fmadd_pd(r, c(1.0 / 362_880.0), c(1.0 / 40_320.0));
        let p1011 = _mm512_fmadd_pd(r, c(1.0 / 39_916_800.0), c(1.0 / 3_628_800.0));
        let a = _mm512_fmadd_pd(r2, p23, p01);
        let b = _mm512_fmadd_pd(r2, p67, p45);
        let cc = _mm512_fmadd_pd(r2, p1011, p89);
        let low = _mm512_fmadd_pd(r4, b, a);
        let high = _mm512_fmadd_pd(r4, c(1.0 / 479_001_600.0), cc);
        let p = _mm512_fmadd_pd(r8, high, low);
        // scale = 2^n via ((n as i64 + 1023) << 52). vcvttpd2qq turns a
        // NaN lane into i64::MIN where the scalar saturating cast gives 0,
        // but the +1023 / << 52 keep only the low 12 bits — identical
        // 0x3FF << 52 either way (and the NaN still propagates through p).
        let i = _mm512_cvttpd_epi64(n);
        let i = _mm512_add_epi64(i, _mm512_set1_epi64(1023));
        let scale = _mm512_castsi512_pd(_mm512_slli_epi64::<52>(i));
        _mm512_mul_pd(p, scale)
    }

    /// 8-lane [`super::ln_1p_unit_fma`], one intrinsic per scalar op.
    #[inline(always)]
    unsafe fn ln_1p_unit8(u: __m512d) -> __m512d {
        let q = |idx: usize| _mm512_set1_pd(LN1P_Q[idx]);
        let u2 = _mm512_mul_pd(u, u);
        let u4 = _mm512_mul_pd(u2, u2);
        let u8 = _mm512_mul_pd(u4, u4);
        let u16 = _mm512_mul_pd(u8, u8);
        let p01 = _mm512_fmadd_pd(u, q(1), q(0));
        let p23 = _mm512_fmadd_pd(u, q(3), q(2));
        let p45 = _mm512_fmadd_pd(u, q(5), q(4));
        let p67 = _mm512_fmadd_pd(u, q(7), q(6));
        let p89 = _mm512_fmadd_pd(u, q(9), q(8));
        let p1011 = _mm512_fmadd_pd(u, q(11), q(10));
        let p1213 = _mm512_fmadd_pd(u, q(13), q(12));
        let p1415 = _mm512_fmadd_pd(u, q(15), q(14));
        let p1617 = _mm512_fmadd_pd(u, q(17), q(16));
        let p1819 = _mm512_fmadd_pd(u, q(19), q(18));
        let p2021 = _mm512_fmadd_pd(u, q(21), q(20));
        let a0 = _mm512_fmadd_pd(u2, p23, p01);
        let a1 = _mm512_fmadd_pd(u2, p67, p45);
        let a2 = _mm512_fmadd_pd(u2, p1011, p89);
        let a3 = _mm512_fmadd_pd(u2, p1415, p1213);
        let a4 = _mm512_fmadd_pd(u2, p1819, p1617);
        let a5 = p2021;
        let b0 = _mm512_fmadd_pd(u4, a1, a0);
        let b1 = _mm512_fmadd_pd(u4, a3, a2);
        let b2 = _mm512_fmadd_pd(u4, a5, a4);
        let c0 = _mm512_fmadd_pd(u8, b1, b0);
        _mm512_mul_pd(u, _mm512_fmadd_pd(u16, b2, c0))
    }
}

/// Logistic sigmoid `1 / (1 + e^{−x})` — the derivative of softplus.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// The modulus used by the activation paths: `√(re² + im²)` evaluated as
/// `abs_sq().sqrt()` rather than `hypot`, so the batched forward can
/// vectorize it (`hypot` is a libm call; `sqrt` is a single instruction).
/// Over/underflow of the squares is impossible for the O(1) field
/// amplitudes this network propagates.
#[inline]
fn activation_modulus(v: C64) -> f64 {
    v.abs_sq().sqrt()
}

/// Softplus-on-modulus forward: `aᵢ = softplus(|zᵢ|)` (a *real* vector
/// returned as complex with zero imaginary part, since downstream layers
/// multiply it with complex weights).
pub fn mod_softplus(z: &[C64]) -> Vec<C64> {
    z.iter()
        .map(|v| C64::from(softplus(activation_modulus(*v))))
        .collect()
}

/// Backward pass of [`mod_softplus`]: `g_z = Re(g_a)·σ(|z|)·z/|z|`.
///
/// Only the real part of the upstream gradient propagates — the activation
/// output is structurally real, so its imaginary part receives no error
/// signal.
pub fn mod_softplus_backward(z: &[C64], grad_out: &[C64]) -> Vec<C64> {
    debug_assert_eq!(z.len(), grad_out.len());
    z.iter()
        .zip(grad_out.iter())
        .map(|(v, g)| {
            let scale = g.re * sigmoid(v.abs());
            v.unit_or_zero().scale(scale)
        })
        .collect()
}

/// Intensity readout forward: `oᵢ = |zᵢ|²` — photodetector power.
pub fn intensity(z: &[C64]) -> Vec<f64> {
    z.iter().map(|v| v.abs_sq()).collect()
}

/// Backward pass of [`intensity`]: `g_z = 2·(∂L/∂o)·z`.
pub fn intensity_backward(z: &[C64], grad_out: &[f64]) -> Vec<C64> {
    debug_assert_eq!(z.len(), grad_out.len());
    z.iter()
        .zip(grad_out.iter())
        .map(|(v, &g)| v.scale(2.0 * g))
        .collect()
}

/// LogSoftMax over a real vector (numerically stabilized).
pub fn log_softmax(o: &[f64]) -> Vec<f64> {
    let max = o.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let log_sum: f64 = o.iter().map(|&x| (x - max).exp()).sum::<f64>().ln() + max;
    o.iter().map(|&x| x - log_sum).collect()
}

/// Softmax over a real vector (numerically stabilized).
pub fn softmax(o: &[f64]) -> Vec<f64> {
    let max = o.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = o.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The explicit AVX-512 plane sweep is bit-identical to the scalar
    /// fused chain for every lane — including the tail, ±0, the 709.1
    /// clamp boundary, deep-underflow inputs, and NaN propagation.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_plane_sweep_is_bit_identical_to_scalar() {
        if !(std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl"))
        {
            eprintln!("skipping: no AVX-512 F+DQ+VL on this machine");
            return;
        }
        // 8·k + tail lengths; values spanning the interesting ranges plus
        // a deterministic pseudo-random fill.
        let edges = [
            0.0,
            -0.0,
            1.0e-300,
            0.5,
            1.0,
            2.0,
            18.0,
            40.0,
            708.9,
            709.1,
            710.0,
            1.0e6,
            f64::NAN,
        ];
        for len in [1usize, 7, 8, 16, 37, 256] {
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            let mut rnd = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 * 8.0 - 4.0
            };
            let re: Vec<f64> = (0..len)
                .map(|i| edges.get(i).copied().unwrap_or_else(&mut rnd))
                .collect();
            let im: Vec<f64> = (0..len).map(|_| rnd()).collect();

            let (mut sr, mut si) = (re.clone(), im.clone());
            for (r, i) in sr.iter_mut().zip(si.iter_mut()) {
                let s = r.mul_add(*r, *i * *i);
                *r = softplus_fma(s.sqrt());
                *i = 0.0;
            }
            let (mut vr, mut vi) = (re.clone(), im.clone());
            unsafe { fma_avx512::activate_planes(&mut vr, &mut vi) };
            for k in 0..len {
                assert!(
                    sr[k].to_bits() == vr[k].to_bits() || (sr[k].is_nan() && vr[k].is_nan()),
                    "lane {k} (len {len}): scalar {:?} vs simd {:?} for re={:e} im={:e}",
                    sr[k],
                    vr[k],
                    re[k],
                    im[k]
                );
                assert_eq!(vi[k], 0.0, "imaginary plane not zeroed at {k}");
            }
        }
    }

    #[test]
    fn softplus_known_values() {
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-14);
        assert!((softplus(100.0) - 100.0).abs() < 1e-12); // asymptote x
        assert!(softplus(-100.0) < 1e-12); // asymptote 0
        assert!(softplus(-100.0) > 0.0);
    }

    #[test]
    fn softplus_matches_libm_reference_everywhere() {
        // The libm formulation the polynomial kernels replace.
        fn reference(x: f64) -> f64 {
            x.max(0.0) + (-x.abs()).exp().ln_1p()
        }
        let mut x = -60.0;
        while x <= 60.0 {
            let fast = softplus(x);
            let slow = reference(x);
            // Relative in the main range; absolute (≪ any consumer's
            // resolution) in the deep-negative tail where the branchless
            // ln1p returns u instead of u − u²/2.
            let err = (fast - slow).abs();
            assert!(
                err / slow.abs().max(1e-300) < 1e-13 || err < 1e-16,
                "x={x}: fast {fast:e} vs libm {slow:e}"
            );
            x += 0.00917; // irrational-ish step to avoid hitting only round values
        }
        // Deep negative tail stays positive and finite like the reference.
        assert!(softplus(-300.0) > 0.0);
        assert!(softplus(-300.0) < 1e-128);
        assert_eq!(softplus(-1000.0), 0.0);
        assert_eq!(softplus(1000.0), 1000.0);
    }

    #[test]
    fn softplus_fma_matches_libm_and_unfused_softplus() {
        fn reference(x: f64) -> f64 {
            x.max(0.0) + (-x.abs()).exp().ln_1p()
        }
        let mut x = -60.0;
        while x <= 60.0 {
            let fused = softplus_fma(x);
            let slow = reference(x);
            let err = (fused - slow).abs();
            assert!(
                err / slow.abs().max(1e-300) < 1e-13 || err < 1e-16,
                "x={x}: fma {fused:e} vs libm {slow:e}"
            );
            // The two profiles agree to far better than any consumer's
            // resolution — they differ only in rounding, never in value.
            let unfused = softplus(x);
            let delta = (fused - unfused).abs();
            assert!(
                delta / unfused.abs().max(1e-300) < 1e-13 || delta < 1e-16,
                "x={x}: fma {fused:e} vs unfused {unfused:e}"
            );
            x += 0.00917;
        }
        assert_eq!(softplus_fma(-1000.0), 0.0);
        assert_eq!(softplus_fma(1000.0), 1000.0);
        assert!(softplus_fma(f64::NAN).is_nan());
        assert_eq!(softplus_fma(f64::INFINITY), f64::INFINITY);
        assert_eq!(softplus_fma(f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn softplus_fma_is_deterministic() {
        // Same input, same bits — every call, any call site. The engine
        // pins cross-machine stability at the report level; this pins the
        // primitive.
        for &x in &[0.0, 0.3, 1.7, -2.9, 14.25, -40.0] {
            let a = softplus_fma(x);
            let b = softplus_fma(x);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn softplus_nonfinite_inputs() {
        // NaN must propagate (an upstream fault should not become a
        // confident zero activation), and infinities keep the libm
        // formulation's limits.
        assert!(softplus(f64::NAN).is_nan());
        assert_eq!(softplus(f64::INFINITY), f64::INFINITY);
        assert_eq!(softplus(f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn sigmoid_is_softplus_derivative() {
        for &x in &[-3.0, -0.5, 0.0, 0.7, 4.0] {
            let h = 1e-6;
            let fd = (softplus(x + h) - softplus(x - h)) / (2.0 * h);
            assert!((fd - sigmoid(x)).abs() < 1e-8, "x={x}");
        }
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert!((sigmoid(800.0) - 1.0).abs() < 1e-15);
        assert!(sigmoid(-800.0).abs() < 1e-15);
        assert!(sigmoid(-800.0) >= 0.0);
    }

    #[test]
    fn mod_softplus_output_is_real_nonnegative() {
        let z = [C64::new(1.0, -2.0), C64::new(-0.5, 0.0), C64::zero()];
        for a in mod_softplus(&z) {
            assert_eq!(a.im, 0.0);
            assert!(a.re > 0.0);
        }
    }

    #[test]
    fn mod_softplus_backward_matches_finite_difference() {
        let z = [C64::new(0.8, -0.4), C64::new(-1.1, 0.6)];
        // Loss L = Σ wᵢ·softplus(|zᵢ|) for fixed weights w ⇒ grad_out = w.
        let w = [0.7, -1.3];
        let grad_out: Vec<C64> = w.iter().map(|&x| C64::from(x)).collect();
        let analytic = mod_softplus_backward(&z, &grad_out);
        let h = 1e-6;
        for i in 0..z.len() {
            let mut zp = z;
            zp[i].re += h;
            let lp: f64 = zp
                .iter()
                .zip(w.iter())
                .map(|(v, &wi)| wi * softplus(v.abs()))
                .sum();
            let mut zm = z;
            zm[i].re -= h;
            let lm: f64 = zm
                .iter()
                .zip(w.iter())
                .map(|(v, &wi)| wi * softplus(v.abs()))
                .sum();
            assert!(
                ((lp - lm) / (2.0 * h) - analytic[i].re).abs() < 1e-6,
                "re[{i}]"
            );

            let mut zp = z;
            zp[i].im += h;
            let lp: f64 = zp
                .iter()
                .zip(w.iter())
                .map(|(v, &wi)| wi * softplus(v.abs()))
                .sum();
            let mut zm = z;
            zm[i].im -= h;
            let lm: f64 = zm
                .iter()
                .zip(w.iter())
                .map(|(v, &wi)| wi * softplus(v.abs()))
                .sum();
            assert!(
                ((lp - lm) / (2.0 * h) - analytic[i].im).abs() < 1e-6,
                "im[{i}]"
            );
        }
    }

    #[test]
    fn mod_softplus_backward_at_zero_is_zero() {
        let z = [C64::zero()];
        let g = mod_softplus_backward(&z, &[C64::one()]);
        assert_eq!(g[0], C64::zero());
    }

    #[test]
    fn intensity_backward_matches_finite_difference() {
        let z = [C64::new(0.3, -0.9), C64::new(1.2, 0.4)];
        let w = [2.0, -0.5]; // L = Σ wᵢ·|zᵢ|²
        let analytic = intensity_backward(&z, &w);
        let h = 1e-6;
        for i in 0..z.len() {
            let loss = |zz: &[C64]| -> f64 {
                zz.iter()
                    .zip(w.iter())
                    .map(|(v, &wi)| wi * v.abs_sq())
                    .sum()
            };
            let mut zp = z;
            zp[i].re += h;
            let mut zm = z;
            zm[i].re -= h;
            assert!(((loss(&zp) - loss(&zm)) / (2.0 * h) - analytic[i].re).abs() < 1e-6);
            let mut zp = z;
            zp[i].im += h;
            let mut zm = z;
            zm[i].im -= h;
            assert!(((loss(&zp) - loss(&zm)) / (2.0 * h) - analytic[i].im).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_normalizes() {
        let o = [1.0, 2.0, 3.0];
        let ls = log_softmax(&o);
        let total: f64 = ls.iter().map(|&x| x.exp()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Order preserved.
        assert!(ls[2] > ls[1] && ls[1] > ls[0]);
    }

    #[test]
    fn log_softmax_handles_large_inputs() {
        let o = [1000.0, 1001.0];
        let ls = log_softmax(&o);
        assert!(ls.iter().all(|x| x.is_finite()));
        let total: f64 = ls.iter().map(|&x| x.exp()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_matches_exp_log_softmax() {
        let o = [0.1, -0.7, 2.0, 0.0];
        let sm = softmax(&o);
        let ls = log_softmax(&o);
        for (a, b) in sm.iter().zip(ls.iter()) {
            assert!((a - b.exp()).abs() < 1e-12);
        }
        assert!((sm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
