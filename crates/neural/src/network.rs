//! The complex-valued feedforward network of paper §III-D.
//!
//! Architecture: complex dense layers with Softplus-on-modulus after every
//! hidden layer, and a modulus-squared intensity readout after the output
//! layer. The LogSoftMax + cross-entropy stage lives in [`crate::loss`].
//!
//! The paper's instance is `dims = [16, 16, 16, 10]`: three weight matrices
//! 16×16, 16×16 and 10×16 — exactly the ones later mapped onto MZI meshes.

use crate::activation::{intensity, intensity_backward, mod_softplus, mod_softplus_backward};
use crate::layer::DenseLayer;
use crate::loss::{argmax, cross_entropy, cross_entropy_grad};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_linalg::{CMatrix, C64};

/// A bias-free complex feedforward classifier.
///
/// # Example
///
/// ```
/// use spnn_neural::ComplexNetwork;
/// use spnn_linalg::C64;
///
/// // The paper's SPNN architecture: 16 → 16 → 16 → 10.
/// let net = ComplexNetwork::new(&[16, 16, 16, 10], 7);
/// assert_eq!(net.n_layers(), 3);
/// let out = net.forward(&vec![C64::one(); 16]);
/// assert_eq!(out.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct ComplexNetwork {
    layers: Vec<DenseLayer>,
}

impl ComplexNetwork {
    /// Creates a network with Glorot-initialized layers.
    ///
    /// `dims` lists the layer widths input-first, e.g. `[16, 16, 16, 10]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given or any dim is zero.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "dims must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| DenseLayer::glorot(w[1], w[0], &mut rng))
            .collect();
        Self { layers }
    }

    /// Builds a network from explicit weight matrices (output-dim × input-dim
    /// each, consecutive shapes chaining).
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not chain or the list is empty.
    pub fn from_weights(weights: Vec<CMatrix>) -> Self {
        assert!(!weights.is_empty(), "need at least one layer");
        for pair in weights.windows(2) {
            assert_eq!(
                pair[1].cols(),
                pair[0].rows(),
                "layer shapes must chain: {}x{} then {}x{}",
                pair[0].rows(),
                pair[0].cols(),
                pair[1].rows(),
                pair[1].cols()
            );
        }
        Self {
            layers: weights.into_iter().map(DenseLayer::from_weights).collect(),
        }
    }

    /// Number of linear layers.
    #[inline]
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output dimension (number of classes).
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// The layers (read-only).
    #[inline]
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Mutable layer access (used by optimizers).
    #[inline]
    pub fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }

    /// The weight matrices, input layer first — the objects handed to the
    /// photonic mapping (`SVD → Clements meshes`).
    pub fn weights(&self) -> Vec<&CMatrix> {
        self.layers.iter().map(|l| l.weight()).collect()
    }

    /// Forward pass returning the output *intensities* `|z|²`
    /// (pre-LogSoftMax logits).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim()`.
    pub fn forward(&self, input: &[C64]) -> Vec<f64> {
        let mut a = input.to_vec();
        let last = self.layers.len() - 1;
        for (l, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&a);
            a = if l < last { mod_softplus(&z) } else { z };
        }
        intensity(&a)
    }

    /// Predicted class for one input.
    pub fn predict(&self, input: &[C64]) -> usize {
        argmax(&self.forward(input))
    }

    /// Cross-entropy loss for one labelled sample.
    pub fn loss(&self, input: &[C64], label: usize) -> f64 {
        cross_entropy(&self.forward(input), label)
    }

    /// Backpropagates one labelled sample, *accumulating* weight gradients,
    /// and returns the sample loss. Call [`ComplexNetwork::zero_grads`]
    /// before each mini-batch and an optimizer step after.
    pub fn backward(&mut self, input: &[C64], label: usize) -> f64 {
        let last = self.layers.len() - 1;
        // Forward with caches: pre-activations z_l and activations a_l.
        let mut activations: Vec<Vec<C64>> = vec![input.to_vec()];
        let mut pre_acts: Vec<Vec<C64>> = Vec::with_capacity(self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(activations.last().expect("non-empty"));
            if l < last {
                activations.push(mod_softplus(&z));
            }
            pre_acts.push(z);
        }
        let z_out = pre_acts.last().expect("non-empty");
        let o = intensity(z_out);
        let loss_val = cross_entropy(&o, label);

        // Backward.
        let grad_o = cross_entropy_grad(&o, label);
        let mut g_z = intensity_backward(z_out, &grad_o);
        for l in (0..self.layers.len()).rev() {
            let g_a = self.layers[l].backward(&activations[l], &g_z);
            if l > 0 {
                g_z = mod_softplus_backward(&pre_acts[l - 1], &g_a);
            }
        }
        loss_val
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Scales all accumulated gradients (e.g. by `1/batch_size`).
    pub fn scale_grads(&mut self, k: f64) {
        for layer in &mut self.layers {
            layer.scale_grad(k);
        }
    }

    /// Classification accuracy (fraction correct) over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn accuracy(&self, features: &[Vec<C64>], labels: &[usize]) -> f64 {
        assert_eq!(features.len(), labels.len(), "features/labels mismatch");
        if features.is_empty() {
            return 0.0;
        }
        let correct = features
            .iter()
            .zip(labels.iter())
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / features.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net(seed: u64) -> ComplexNetwork {
        ComplexNetwork::new(&[3, 4, 2], seed)
    }

    #[test]
    fn dims_wire_up() {
        let net = ComplexNetwork::new(&[16, 16, 16, 10], 1);
        assert_eq!(net.n_layers(), 3);
        assert_eq!(net.in_dim(), 16);
        assert_eq!(net.out_dim(), 10);
        let shapes: Vec<(usize, usize)> = net.weights().iter().map(|w| w.shape()).collect();
        assert_eq!(shapes, vec![(16, 16), (16, 16), (10, 16)]);
    }

    #[test]
    fn forward_output_is_nonnegative_intensity() {
        let net = tiny_net(2);
        let out = net.forward(&[C64::new(0.5, -0.5), C64::one(), C64::i()]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn full_gradient_check() {
        // End-to-end finite-difference check of every weight component.
        let mut net = tiny_net(3);
        let input = vec![C64::new(0.4, -0.1), C64::new(-0.7, 0.2), C64::new(0.1, 0.8)];
        let label = 1;
        net.zero_grads();
        let _ = net.backward(&input, label);

        let h = 1e-6;
        for l in 0..net.n_layers() {
            let (rows, cols) = net.layers()[l].weight().shape();
            for r in 0..rows {
                for c in 0..cols {
                    for part in 0..2 {
                        let mut plus = net.clone();
                        let mut minus = net.clone();
                        {
                            let w = plus.layers_mut()[l].weight_mut();
                            if part == 0 {
                                w[(r, c)].re += h;
                            } else {
                                w[(r, c)].im += h;
                            }
                        }
                        {
                            let w = minus.layers_mut()[l].weight_mut();
                            if part == 0 {
                                w[(r, c)].re -= h;
                            } else {
                                w[(r, c)].im -= h;
                            }
                        }
                        let fd = (plus.loss(&input, label) - minus.loss(&input, label)) / (2.0 * h);
                        let g = net.layers()[l].grad()[(r, c)];
                        let analytic = if part == 0 { g.re } else { g.im };
                        assert!(
                            (fd - analytic).abs() < 1e-5,
                            "layer {l} W[{r}][{c}] part {part}: fd {fd} vs {analytic}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn backward_returns_same_loss_as_loss() {
        let mut net = tiny_net(4);
        let input = vec![C64::one(), C64::i(), C64::new(-0.3, 0.2)];
        let l1 = net.loss(&input, 0);
        let l2 = net.backward(&input, 0);
        assert!((l1 - l2).abs() < 1e-12);
    }

    #[test]
    fn from_weights_roundtrip() {
        let net = tiny_net(5);
        let weights: Vec<CMatrix> = net.weights().into_iter().cloned().collect();
        let rebuilt = ComplexNetwork::from_weights(weights);
        let input = vec![C64::new(0.1, 0.2); 3];
        let a = net.forward(&input);
        let b = rebuilt.forward(&input);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn mismatched_weights_panic() {
        let w1 = CMatrix::zeros(4, 3);
        let w2 = CMatrix::zeros(2, 5); // should be (_, 4)
        let _ = ComplexNetwork::from_weights(vec![w1, w2]);
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let net = tiny_net(6);
        let xs = vec![vec![C64::one(), C64::zero(), C64::zero()]; 4];
        let pred = net.predict(&xs[0]);
        let labels_right = vec![pred; 4];
        assert!((net.accuracy(&xs, &labels_right) - 1.0).abs() < 1e-15);
        let labels_wrong = vec![1 - pred; 4];
        assert!(net.accuracy(&xs, &labels_wrong) < 1e-15);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tiny_net(9);
        let b = tiny_net(9);
        assert!(a.weights()[0].approx_eq(b.weights()[0], 0.0));
        let c = tiny_net(10);
        assert!(!a.weights()[0].approx_eq(c.weights()[0], 1e-6));
    }
}
