//! Fig. 5 / EXP 2 — accuracy loss under zonal perturbations.
//!
//! One heat map per unitary multiplier (U_L0, Vᴴ_L0, U_L1, Vᴴ_L1, U_L2,
//! Vᴴ_L2): the selected 2×2-MZI zone gets σ = 0.1 while the rest of the
//! SPNN sits at σ = 0.05; Σ lines are error-free with singular values in
//! random order; each cell reports the loss in mean accuracy versus nominal.
//!
//! Usage: `cargo run --release -p spnn-bench --bin fig5`
//! (paper scale: `SPNN_MC=1000 SPNN_NTEST=10000` — slow; defaults are scaled
//! down but preserve the qualitative result.)

use spnn_bench::{prepare_spnn, render_heatmap, write_csv, HarnessConfig};
use spnn_core::exp2::{run_all, Exp2Config};
use spnn_core::{MeshTopology, Stage};

fn panel_name(layer: usize, stage: Stage) -> String {
    match stage {
        Stage::UMesh => format!("U_L{layer}"),
        Stage::VMesh => format!("VH_L{layer}"),
        Stage::Sigma => format!("Sigma_L{layer}"),
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let spnn = prepare_spnn(&cfg, MeshTopology::Clements);

    let exp_cfg = Exp2Config {
        iterations: cfg.mc_iterations.min(200),
        seed: cfg.seed ^ 0xF16_5,
        ..Exp2Config::default()
    };
    println!(
        "Fig. 5 / EXP 2 reproduction ({} MC iterations per zone, base σ = {}, hot σ = {})",
        exp_cfg.iterations, exp_cfg.base_sigma, exp_cfg.hot_sigma
    );
    println!("nominal accuracy: {:.2}%", spnn.nominal_accuracy * 100.0);

    let panels = run_all(
        &spnn.hardware,
        &spnn.data.test_features,
        &spnn.data.test_labels,
        &exp_cfg,
    );

    let mut global_min = f64::INFINITY;
    let mut global_max = f64::NEG_INFINITY;
    for panel in &panels {
        let name = panel_name(panel.layer, panel.stage);
        let (rows, cols) = panel.shape();
        println!("\npanel {name} ({rows}x{cols} zones), accuracy loss (pts):");
        print!("{}", render_heatmap(&panel.loss_percent));
        let (lo, hi) = panel.loss_range();
        println!("  range: {lo:.2} – {hi:.2} pts");
        global_min = global_min.min(lo);
        global_max = global_max.max(hi);

        let mut csv_rows = Vec::new();
        for (zr, row) in panel.loss_percent.iter().enumerate() {
            for (zc, &v) in row.iter().enumerate() {
                csv_rows.push(format!("{zr},{zc},{v:.4}"));
            }
        }
        let fname = format!("fig5_zone_{}.csv", name.to_lowercase());
        write_csv(&fname, "zone_row,zone_col,accuracy_loss_pts", &csv_rows);
    }

    println!("\nshape checks vs. paper:");
    println!(
        "  zonal losses span {global_min:.2} – {global_max:.2} pts; the paper's span hovers around its 69.98-pt global-σ=0.05 figure with low-/high-impact zones scattered irregularly"
    );
}
