//! Fig. 5 / EXP 2 — accuracy loss under zonal perturbations, on the
//! `spnn-engine` batched Monte-Carlo engine.
//!
//! One heat map per unitary multiplier (U_L0, Vᴴ_L0, U_L1, Vᴴ_L1, U_L2,
//! Vᴴ_L2): the selected 2×2-MZI zone gets σ = 0.1 while the rest of the
//! SPNN sits at σ = 0.05; Σ lines are error-free with singular values in
//! random order; each cell reports the loss in mean accuracy versus
//! nominal. The sweep is the engine's `fig5` scenario (identical to
//! `scenarios/fig5.scn`; also `spnn run --preset fig5`), which expands to
//! one work-queue item per zone.
//!
//! Usage: `cargo run --release -p spnn-bench --bin fig5`
//! (paper scale: `SPNN_MC=1000 SPNN_NTEST=10000` — slow; defaults are scaled
//! down but preserve the qualitative result.)

use spnn_bench::{render_heatmap, write_engine_csv};
use spnn_engine::prelude::*;
use spnn_engine::runner::SweepRow;

fn main() {
    let scale = RunScale::from_env();
    let mut spec = presets::fig5(&scale);
    spec.iterations = spec.iterations.min(200); // the seed's fig5 cap
    let report = run_scenario(&spec, &EngineConfig::default()).expect("fig5 scenario");
    let nominal = report.topologies[0].nominal_accuracy;

    println!(
        "Fig. 5 / EXP 2 reproduction ({} MC iterations per zone, base σ = {}, hot σ = {})",
        spec.iterations, spec.zonal.base_sigma, spec.zonal.hot_sigma
    );
    println!("nominal accuracy: {:.2}%", nominal * 100.0);

    // Group rows into per-(layer, stage) panels.
    let mut panels: Vec<(String, Vec<&SweepRow>)> = Vec::new();
    for row in &report.rows {
        let (Some(layer), Some(stage)) = (row.label("layer"), row.label("stage")) else {
            continue;
        };
        let name = format!("{stage}_L{layer}");
        match panels.iter_mut().find(|(n, _)| *n == name) {
            Some((_, rows)) => rows.push(row),
            None => panels.push((name, vec![row])),
        }
    }

    let mut global_min = f64::INFINITY;
    let mut global_max = f64::NEG_INFINITY;
    for (name, rows) in &panels {
        let zr_max = rows
            .iter()
            .filter_map(|r| r.label_f64("zone_row"))
            .fold(0.0f64, f64::max) as usize;
        let zc_max = rows
            .iter()
            .filter_map(|r| r.label_f64("zone_col"))
            .fold(0.0f64, f64::max) as usize;
        let mut loss = vec![vec![f64::NAN; zc_max + 1]; zr_max + 1];
        for r in rows {
            let zr = r.label_f64("zone_row").unwrap() as usize;
            let zc = r.label_f64("zone_col").unwrap() as usize;
            loss[zr][zc] = (nominal - r.mean) * 100.0;
        }
        println!(
            "\npanel {name} ({}x{} zones), accuracy loss (pts):",
            zr_max + 1,
            zc_max + 1
        );
        print!("{}", render_heatmap(&loss));
        let lo = loss.iter().flatten().cloned().fold(f64::INFINITY, f64::min);
        let hi = loss
            .iter()
            .flatten()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!("  range: {lo:.2} – {hi:.2} pts");
        global_min = global_min.min(lo);
        global_max = global_max.max(hi);
    }
    write_engine_csv("fig5_exp2.csv", &report);

    println!("\nshape checks vs. paper:");
    println!(
        "  zonal losses span {global_min:.2} – {global_max:.2} pts; the paper's span hovers around its 69.98-pt global-σ=0.05 figure with low-/high-impact zones scattered irregularly"
    );
}
