//! Architecture table — the paper's §I / §III-D component arithmetic.
//!
//! Checks the headline "1374 tunable-thermal-phase shifters" census and the
//! feature-compression trade-off (784-dim full spectrum vs 16-dim central
//! crop; the paper reports 94.12 % → 87.35 %, a 6.77-pt cost).
//!
//! Usage: `cargo run --release -p spnn-bench --bin arch_table`

use spnn_bench::{prepare_spnn, write_csv, HarnessConfig};
use spnn_core::{ComponentCensus, MeshTopology};
use spnn_dataset::{DatasetConfig, SpnnDataset};
use spnn_neural::{train, ComplexNetwork, TrainConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    let spnn = prepare_spnn(&cfg, MeshTopology::Clements);

    let census = ComponentCensus::of(&spnn.hardware);
    println!("Architecture census (16-16-16-10 SPNN, Clements meshes):\n");
    println!("{census}");
    assert_eq!(census.total_phase_shifters(), 1374, "paper headline count");
    println!("matches the paper's 1374 tunable thermal phase shifters ✓\n");

    let mut rows: Vec<String> = census
        .layers
        .iter()
        .map(|l| {
            format!(
                "{},{}x{},{},{},{},{},{}",
                l.layer,
                l.out_dim,
                l.in_dim,
                l.u_mzis,
                l.v_mzis,
                l.sigma_mzis,
                l.mzis(),
                l.phase_shifters()
            )
        })
        .collect();
    rows.push(format!(
        "total,,,,,,{},{}",
        census.total_mzis(),
        census.total_phase_shifters()
    ));

    // Feature-compression comparison: central crop k ∈ {4, 8} vs larger
    // context. (The full 784-dim run would need a 784×784 mesh — the paper
    // also trains it only in software; we sweep crop sizes in software to
    // show the same saturation trend.)
    println!("feature-compression trade-off (software accuracy, test set):");
    let mut crop_rows = Vec::new();
    for crop in [2usize, 4, 6, 8] {
        let data = SpnnDataset::generate(&DatasetConfig {
            n_train: cfg.n_train,
            n_test: cfg.n_test,
            crop,
            seed: cfg.seed,
        });
        let dim = crop * crop;
        let mut net = ComplexNetwork::new(&[dim, 16, 16, 10], cfg.seed ^ 0x44);
        train(
            &mut net,
            &data.train_features,
            &data.train_labels,
            &TrainConfig {
                epochs: cfg.epochs,
                batch_size: 32,
                learning_rate: 0.01,
                seed: cfg.seed ^ 0x55,
                verbose: false,
            },
        );
        let acc = net.accuracy(&data.test_features, &data.test_labels);
        println!(
            "  crop {crop}x{crop} ({dim:>3} features): {:.2}%",
            acc * 100.0
        );
        crop_rows.push(format!("{crop},{dim},{acc:.6}"));
    }
    println!("  (paper: 28x28 baseline 94.12%, 4x4 crop costs 6.77 pts)");

    write_csv(
        "arch_table.csv",
        "layer,shape,u_mzis,v_mzis,sigma_mzis,mzis,phase_shifters",
        &rows,
    );
    write_csv(
        "arch_crop_sweep.csv",
        "crop,features,test_accuracy",
        &crop_rows,
    );
}
