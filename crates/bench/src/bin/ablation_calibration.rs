//! Ablation D — post-fabrication calibration (the paper's §II-C
//! compensation discussion, quantified).
//!
//! Fabricates each unitary mesh of a trained SPNN with both PhS and BeS
//! errors, then re-tunes every θ/φ by exact-coordinate descent while the
//! faulty splitters stay fixed. Reports RVD recovery per mesh, the tuning
//! cost (number of phase updates — the scaling concern the paper raises),
//! and end-to-end accuracy before/after calibration.
//!
//! Usage: `cargo run --release -p spnn-bench --bin ablation_calibration`

use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_bench::{prepare_spnn, write_csv, HarnessConfig};
use spnn_core::calibration::{
    calibrate_mesh, calibrate_network_accuracy, CalibrationConfig, FabricatedMesh,
};
use spnn_core::MeshTopology;
use spnn_photonics::UncertaintySpec;

fn main() {
    let cfg = HarnessConfig::from_env();
    let spnn = prepare_spnn(&cfg, MeshTopology::Clements);

    println!("Ablation D: post-fabrication phase calibration (σ_PhS = σ_BeS = 0.05)");
    let spec = UncertaintySpec::both(0.05);
    let cal_cfg = CalibrationConfig {
        max_sweeps: 60,
        ..CalibrationConfig::default()
    };

    // Per-mesh RVD recovery on the first layer's multipliers.
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>14}",
        "mesh", "RVD before", "RVD after", "recovery%", "phase updates"
    );
    for (name, mesh) in [
        ("U_L0", spnn.hardware.layers()[0].u_mesh()),
        ("VH_L0", spnn.hardware.layers()[0].v_mesh()),
        ("U_L2", spnn.hardware.layers()[2].u_mesh()),
    ] {
        let intended = mesh.matrix();
        let mut fab =
            FabricatedMesh::fabricate(mesh, &spec, &mut StdRng::seed_from_u64(cfg.seed ^ 0xCA1));
        let outcome = calibrate_mesh(&mut fab, &intended, &cal_cfg);
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.1} {:>14}",
            name,
            outcome.rvd_before,
            outcome.rvd_after,
            outcome.recovery() * 100.0,
            outcome.phase_updates
        );
        rows.push(format!(
            "{name},{:.6},{:.6},{:.6},{}",
            outcome.rvd_before,
            outcome.rvd_after,
            outcome.recovery(),
            outcome.phase_updates
        ));
    }

    // End-to-end accuracy recovery (smaller test set for speed).
    let n_eval = spnn.data.test_features.len().min(400);
    let xs = &spnn.data.test_features[..n_eval];
    let ys = &spnn.data.test_labels[..n_eval];
    let (before, after, nominal) = calibrate_network_accuracy(
        &spnn.hardware,
        &spec,
        xs,
        ys,
        &CalibrationConfig {
            max_sweeps: 30,
            ..CalibrationConfig::default()
        },
        &mut StdRng::seed_from_u64(cfg.seed ^ 0xCA2),
    );
    println!("\nend-to-end accuracy ({} test images):", n_eval);
    println!("  nominal (no errors):        {:.1}%", nominal * 100.0);
    println!("  fabricated, uncalibrated:   {:.1}%", before * 100.0);
    println!("  fabricated, calibrated:     {:.1}%", after * 100.0);
    rows.push(format!("network,{before:.6},{after:.6},{nominal:.6},"));
    write_csv(
        "ablation_calibration.csv",
        "mesh,rvd_before_or_acc_before,rvd_after_or_acc_after,recovery_or_nominal,phase_updates",
        &rows,
    );
    println!("\nthe paper's point: calibration works but requires tuning every MZI (counts above), and residual error from fixed splitters remains — motivating design-time criticality analysis instead.");
}
