//! Ablation C — thermal-crosstalk coupling strength, on the `spnn-engine`
//! batched Monte-Carlo engine.
//!
//! The paper attributes part of the phase-angle uncertainty to mutual
//! thermal crosstalk between neighbouring actuated waveguides (§II-C,
//! ref. \[8\]). The engine's `thermal` scenario (identical to
//! `scenarios/ablation_thermal.scn`; also `spnn run --preset thermal`)
//! sweeps the mutual-heating coupling κ (deterministic, correlated errors)
//! with and without the residual random FPV noise, showing how correlated
//! errors compound i.i.d. ones.
//!
//! Usage: `cargo run --release -p spnn-bench --bin ablation_thermal`

use spnn_bench::write_engine_csv;
use spnn_engine::prelude::*;

fn main() {
    let spec = presets::thermal(&RunScale::from_env());
    let report = run_scenario(&spec, &EngineConfig::default()).expect("thermal scenario");
    let nominal = report.topologies[0].nominal_accuracy;

    println!("Ablation C: thermal-crosstalk coupling sweep (decay length 60 µm)");
    println!("nominal accuracy: {:.2}%", nominal * 100.0);
    println!(
        "{:>8} {:>16} {:>22}",
        "kappa", "crosstalk-only %", "crosstalk + σ=0.01 %"
    );
    let find = |kappa: &str, sigma: f64| {
        report.rows.iter().find(|r| {
            r.label("thermal_kappa") == Some(kappa)
                && (r.label_f64("sigma").unwrap_or(f64::NAN) - sigma).abs() < 1e-12
        })
    };
    for kappa in ["0", "0.001", "0.002", "0.005", "0.01", "0.02", "0.05"] {
        let (Some(xt), Some(xs)) = (find(kappa, 0.0), find(kappa, 0.01)) else {
            continue;
        };
        println!(
            "{:>8} {:>16.2} {:>22.2}",
            kappa,
            xt.mean * 100.0,
            xs.mean * 100.0
        );
    }
    write_engine_csv("ablation_thermal.csv", &report);
    println!("\nnote: crosstalk is deterministic given the tuned phases, so it biases every inference the same way — unlike FPV noise it could in principle be calibrated out, which is the premise of compensation schemes like ref. [9].");
}
