//! Ablation C — thermal-crosstalk coupling strength.
//!
//! The paper attributes part of the phase-angle uncertainty to mutual
//! thermal crosstalk between neighbouring actuated waveguides (§II-C,
//! ref. \[8\]). This ablation sweeps the explicit mutual-heating coupling κ
//! (deterministic, correlated errors) with and without the residual random
//! FPV noise, showing how correlated errors compound i.i.d. ones.
//!
//! Usage: `cargo run --release -p spnn-bench --bin ablation_thermal`

use spnn_bench::{prepare_spnn, write_csv, HarnessConfig};
use spnn_core::{mc_accuracy, HardwareEffects, MeshTopology, PerturbationPlan};
use spnn_photonics::thermal::ThermalCrosstalk;
use spnn_photonics::UncertaintySpec;

fn main() {
    let cfg = HarnessConfig::from_env();
    let spnn = prepare_spnn(&cfg, MeshTopology::Clements);

    println!("Ablation C: thermal-crosstalk coupling sweep (decay length 60 µm)");
    println!("nominal accuracy: {:.2}%", spnn.nominal_accuracy * 100.0);
    println!(
        "{:>8} {:>16} {:>22}",
        "kappa", "crosstalk-only %", "crosstalk + σ=0.01 %"
    );

    let residual = UncertaintySpec::both(0.01);
    let mut rows = Vec::new();
    for kappa in [0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05] {
        let fx = if kappa > 0.0 {
            HardwareEffects::with_thermal(ThermalCrosstalk::new(kappa, 60.0))
        } else {
            HardwareEffects::default()
        };
        let xtalk_only = mc_accuracy(
            &spnn.hardware,
            &PerturbationPlan::None,
            &fx,
            &spnn.data.test_features,
            &spnn.data.test_labels,
            1, // deterministic
            cfg.seed,
        );
        let with_noise = mc_accuracy(
            &spnn.hardware,
            &PerturbationPlan::global(residual),
            &fx,
            &spnn.data.test_features,
            &spnn.data.test_labels,
            cfg.mc_iterations.min(40),
            cfg.seed ^ 0xC0 ^ (kappa * 1e4) as u64,
        );
        println!(
            "{kappa:>8.3} {:>16.2} {:>22.2}",
            xtalk_only.mean * 100.0,
            with_noise.mean * 100.0
        );
        rows.push(format!(
            "{kappa},{:.6},{:.6}",
            xtalk_only.mean, with_noise.mean
        ));
    }
    write_csv(
        "ablation_thermal.csv",
        "kappa,crosstalk_accuracy,crosstalk_plus_noise_accuracy",
        &rows,
    );
    println!("\nnote: crosstalk is deterministic given the tuned phases, so it biases every inference the same way — unlike FPV noise it could in principle be calibrated out, which is the premise of compensation schemes like ref. [9].");
}
