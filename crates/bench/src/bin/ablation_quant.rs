//! Ablation B — finite phase-encoding precision.
//!
//! The paper's introduction lists "the finite-encoding precision on phase
//! settings" among SPNN roadblocks. This ablation quantizes every
//! commanded phase to a b-bit DAC (no random uncertainty) and, separately,
//! combines quantization with the mature-process σ to show which regime
//! dominates.
//!
//! Usage: `cargo run --release -p spnn-bench --bin ablation_quant`

use spnn_bench::{prepare_spnn, write_csv, HarnessConfig};
use spnn_core::{mc_accuracy, HardwareEffects, MeshTopology, PerturbationPlan};
use spnn_photonics::UncertaintySpec;

fn main() {
    let cfg = HarnessConfig::from_env();
    let spnn = prepare_spnn(&cfg, MeshTopology::Clements);

    println!("Ablation B: phase-DAC quantization");
    println!("nominal accuracy: {:.2}%", spnn.nominal_accuracy * 100.0);
    println!(
        "{:>5} {:>18} {:>24}",
        "bits", "quantized-only %", "quantized + σ=0.0334 %"
    );

    let mature = UncertaintySpec::both(0.0334); // the paper's 0.21-rad figure
    let mut rows = Vec::new();
    for bits in [2u32, 3, 4, 5, 6, 8, 10] {
        let fx = HardwareEffects::with_quantization(bits);
        // Quantization alone is deterministic — one "iteration" suffices.
        let quant_only = mc_accuracy(
            &spnn.hardware,
            &PerturbationPlan::None,
            &fx,
            &spnn.data.test_features,
            &spnn.data.test_labels,
            1,
            cfg.seed,
        );
        let with_noise = mc_accuracy(
            &spnn.hardware,
            &PerturbationPlan::global(mature),
            &fx,
            &spnn.data.test_features,
            &spnn.data.test_labels,
            cfg.mc_iterations.min(40),
            cfg.seed ^ bits as u64,
        );
        println!(
            "{bits:>5} {:>18.2} {:>24.2}",
            quant_only.mean * 100.0,
            with_noise.mean * 100.0
        );
        rows.push(format!(
            "{bits},{:.6},{:.6}",
            quant_only.mean, with_noise.mean
        ));
    }
    write_csv(
        "ablation_quant.csv",
        "bits,quantized_accuracy,quantized_plus_noise_accuracy",
        &rows,
    );
    println!("\nnote: past the resolution where the quantization step falls below the analog phase noise, extra DAC bits stop helping.");
}
