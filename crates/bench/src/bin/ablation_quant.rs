//! Ablation B — finite phase-encoding precision, on the `spnn-engine`
//! batched Monte-Carlo engine.
//!
//! The paper's introduction lists "the finite-encoding precision on phase
//! settings" among SPNN roadblocks. The engine's `quant` scenario
//! (identical to `scenarios/ablation_quant.scn`; also
//! `spnn run --preset quant`) sweeps DAC bits × {no noise, the paper's
//! mature-process σ = 0.0334}. The σ = 0 points are deterministic, so the
//! engine's adaptive stopping proves a zero margin of error after a few
//! iterations and skips the rest of the budget.
//!
//! Usage: `cargo run --release -p spnn-bench --bin ablation_quant`

use spnn_bench::write_engine_csv;
use spnn_engine::prelude::*;

fn main() {
    let spec = presets::quant(&RunScale::from_env());
    let report = run_scenario(&spec, &EngineConfig::default()).expect("quant scenario");
    let nominal = report.topologies[0].nominal_accuracy;

    println!("Ablation B: phase-DAC quantization");
    println!("nominal accuracy: {:.2}%", nominal * 100.0);
    println!(
        "{:>5} {:>18} {:>24} {:>14}",
        "bits", "quantized-only %", "quantized + σ=0.0334 %", "iters (q / q+σ)"
    );
    let find = |bits: &str, sigma: f64| {
        report.rows.iter().find(|r| {
            r.label("quant_bits") == Some(bits)
                && (r.label_f64("sigma").unwrap_or(f64::NAN) - sigma).abs() < 1e-12
        })
    };
    for bits in ["2", "3", "4", "5", "6", "8", "10"] {
        let (Some(q), Some(qs)) = (find(bits, 0.0), find(bits, 0.0334)) else {
            continue;
        };
        println!(
            "{bits:>5} {:>18.2} {:>24.2} {:>8} / {:<5}",
            q.mean * 100.0,
            qs.mean * 100.0,
            q.iterations,
            qs.iterations
        );
    }
    write_engine_csv("ablation_quant.csv", &report);
    println!("\nnote: past the resolution where the quantization step falls below the analog phase noise, extra DAC bits stop helping.");
}
