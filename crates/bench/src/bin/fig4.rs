//! Fig. 4 / EXP 1 — SPNN accuracy under global uncertainties.
//!
//! Sweeps σ ∈ [0, 0.15] for the three targeting modes (PhS-only, BeS-only,
//! both) and reports mean inference accuracy per point. The paper's
//! headline numbers for comparison (see EXPERIMENTS.md):
//!
//! - accuracy collapses below 10 % (random guess) near σ ≈ 0.075,
//! - the loss at σ_PhS = σ_BeS = 0.05 is 69.98 %,
//! - PhS uncertainties dominate BeS uncertainties.
//!
//! Usage: `cargo run --release -p spnn-bench --bin fig4`
//! (paper scale: `SPNN_MC=1000 SPNN_NTEST=10000`)

use spnn_bench::{prepare_spnn, write_csv, HarnessConfig};
use spnn_core::exp1::{run, Exp1Config};
use spnn_core::MeshTopology;
use spnn_photonics::PerturbTarget;

fn mode_name(mode: PerturbTarget) -> &'static str {
    match mode {
        PerturbTarget::PhaseShiftersOnly => "phs_only",
        PerturbTarget::BeamSplittersOnly => "bes_only",
        PerturbTarget::Both => "both",
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let spnn = prepare_spnn(&cfg, MeshTopology::Clements);

    let exp_cfg = Exp1Config {
        iterations: cfg.mc_iterations,
        seed: cfg.seed ^ 0xF16_4,
        ..Exp1Config::default()
    };
    let points = run(
        &spnn.hardware,
        &spnn.data.test_features,
        &spnn.data.test_labels,
        &exp_cfg,
    );

    let mut rows = Vec::new();
    println!("Fig. 4 / EXP 1 reproduction ({} MC iterations, {} test images)", cfg.mc_iterations, cfg.n_test);
    println!("nominal accuracy: {:.2}%", spnn.nominal_accuracy * 100.0);
    println!("{:<10} {:>8} {:>10} {:>9} {:>9}", "mode", "sigma", "accuracy%", "std%", "moe95%");
    for p in &points {
        println!(
            "{:<10} {:>8.3} {:>10.2} {:>9.2} {:>9.2}",
            mode_name(p.mode),
            p.sigma,
            p.result.mean * 100.0,
            p.result.std_dev * 100.0,
            p.result.margin_of_error_95() * 100.0
        );
        rows.push(format!(
            "{},{},{:.6},{:.6},{:.6}",
            mode_name(p.mode),
            p.sigma,
            p.result.mean,
            p.result.std_dev,
            p.result.margin_of_error_95()
        ));
    }
    write_csv("fig4_exp1.csv", "mode,sigma,mean_accuracy,std_dev,moe95", &rows);

    // Paper-shape checks.
    let acc_at = |mode: PerturbTarget, sigma: f64| -> f64 {
        points
            .iter()
            .find(|p| p.mode == mode && (p.sigma - sigma).abs() < 1e-12)
            .map(|p| p.result.mean)
            .unwrap_or(f64::NAN)
    };
    let both_005 = acc_at(PerturbTarget::Both, 0.05);
    let loss_005 = (spnn.nominal_accuracy - both_005) * 100.0;
    println!("\nshape checks vs. paper:");
    println!(
        "  loss at σ = 0.05 (both): {loss_005:.2} pts   (paper: 69.98)"
    );
    let both_0075 = acc_at(PerturbTarget::Both, 0.075);
    println!(
        "  accuracy at σ = 0.075 (both): {:.2}%   (paper: < 10%, random guess)",
        both_0075 * 100.0
    );
    let phs_005 = acc_at(PerturbTarget::PhaseShiftersOnly, 0.05);
    let bes_005 = acc_at(PerturbTarget::BeamSplittersOnly, 0.05);
    println!(
        "  PhS-only {:.2}% vs BeS-only {:.2}% at σ = 0.05   (paper: PhS impact > BeS impact ⇒ PhS-only accuracy lower)",
        phs_005 * 100.0,
        bes_005 * 100.0
    );
}
