//! Fig. 4 / EXP 1 — SPNN accuracy under global uncertainties, on the
//! `spnn-engine` batched Monte-Carlo engine.
//!
//! The sweep itself is the engine's built-in `fig4` scenario (identical to
//! `scenarios/fig4.scn`; also runnable as `spnn run --preset fig4`): σ ∈
//! [0, 0.15] × {PhS-only, BeS-only, both}. This binary only adds the
//! paper-shape commentary (see EXPERIMENTS.md):
//!
//! - accuracy collapses below 10 % (random guess) near σ ≈ 0.075,
//! - the loss at σ_PhS = σ_BeS = 0.05 is 69.98 %,
//! - PhS uncertainties dominate BeS uncertainties.
//!
//! Usage: `cargo run --release -p spnn-bench --bin fig4`
//! (paper scale: `SPNN_MC=1000 SPNN_NTEST=10000`; add
//! `SPNN_TARGET_MOE=0.01` for adaptive early termination)

use spnn_bench::write_engine_csv;
use spnn_engine::prelude::*;

fn main() {
    let scale = RunScale::from_env();
    let spec = presets::fig4(&scale);
    let report = run_scenario(&spec, &EngineConfig::default()).expect("fig4 scenario");
    let nominal = report.topologies[0].nominal_accuracy;

    println!(
        "Fig. 4 / EXP 1 reproduction ({} MC iterations/point cap, {} test images)",
        spec.iterations, spec.dataset.n_test
    );
    println!("nominal accuracy: {:.2}%", nominal * 100.0);
    println!(
        "{:<10} {:>8} {:>10} {:>9} {:>9} {:>7}",
        "mode", "sigma", "accuracy%", "std%", "moe95%", "iters"
    );
    for row in &report.rows {
        println!(
            "{:<10} {:>8.3} {:>10.2} {:>9.2} {:>9.2} {:>7}",
            row.label("mode").unwrap_or("?"),
            row.label_f64("sigma").unwrap_or(f64::NAN),
            row.mean * 100.0,
            row.std_dev * 100.0,
            row.moe95 * 100.0,
            row.iterations,
        );
    }
    write_engine_csv("fig4_exp1.csv", &report);

    // Paper-shape checks.
    let acc_at = |mode: &str, sigma: f64| -> f64 {
        report
            .rows
            .iter()
            .find(|r| {
                r.label("mode") == Some(mode)
                    && (r.label_f64("sigma").unwrap_or(f64::NAN) - sigma).abs() < 1e-12
            })
            .map(|r| r.mean)
            .unwrap_or(f64::NAN)
    };
    let both_005 = acc_at("both", 0.05);
    let loss_005 = (nominal - both_005) * 100.0;
    println!("\nshape checks vs. paper:");
    println!("  loss at σ = 0.05 (both): {loss_005:.2} pts   (paper: 69.98)");
    let both_0075 = acc_at("both", 0.075);
    println!(
        "  accuracy at σ = 0.075 (both): {:.2}%   (paper: < 10%, random guess)",
        both_0075 * 100.0
    );
    let phs_005 = acc_at("phs_only", 0.05);
    let bes_005 = acc_at("bes_only", 0.05);
    println!(
        "  PhS-only {:.2}% vs BeS-only {:.2}% at σ = 0.05   (paper: PhS impact > BeS impact ⇒ PhS-only accuracy lower)",
        phs_005 * 100.0,
        bes_005 * 100.0
    );
}
