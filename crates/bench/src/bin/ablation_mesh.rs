//! Ablation A — Clements vs Reck topology robustness, on the
//! `spnn-engine` batched Monte-Carlo engine.
//!
//! The paper uses the Clements design (§II-B) and cites Reck as the
//! historical alternative. The engine's `mesh` scenario (identical to
//! `scenarios/ablation_mesh.scn`; also `spnn run --preset mesh`) runs the
//! EXP 1 "both" sweep on the same trained network mapped to both
//! topologies: same MZI count, different depth and error accumulation.
//!
//! Usage: `cargo run --release -p spnn-bench --bin ablation_mesh`

use spnn_bench::write_engine_csv;
use spnn_engine::prelude::*;

fn main() {
    let spec = presets::mesh(&RunScale::from_env());
    let report = run_scenario(&spec, &EngineConfig::default()).expect("mesh scenario");

    println!("Ablation A: mesh-topology robustness (EXP 1, both PhS & BeS)");
    for t in &report.topologies {
        println!(
            "nominal accuracy ({}): {:.2}%",
            t.topology,
            t.nominal_accuracy * 100.0
        );
    }
    println!(
        "{:<10} {:>8} {:>10} {:>9}",
        "topology", "sigma", "accuracy%", "std%"
    );
    for row in &report.rows {
        println!(
            "{:<10} {:>8.3} {:>10.2} {:>9.2}",
            row.topology,
            row.label_f64("sigma").unwrap_or(f64::NAN),
            row.mean * 100.0,
            row.std_dev * 100.0
        );
    }
    write_engine_csv("ablation_mesh.csv", &report);
    println!("\nnote: both topologies use N(N−1)/2 MZIs; Reck's 2N−3 depth concentrates tuned phases differently, changing uncertainty sensitivity.");
}
