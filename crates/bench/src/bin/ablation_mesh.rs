//! Ablation A — Clements vs Reck topology robustness.
//!
//! The paper uses the Clements design (§II-B) and cites Reck as the
//! historical alternative. This ablation runs the EXP 1 "both" sweep on the
//! same trained network mapped to both topologies: same MZI count,
//! different depth and error accumulation.
//!
//! Usage: `cargo run --release -p spnn-bench --bin ablation_mesh`

use spnn_bench::{prepare_spnn, write_csv, HarnessConfig};
use spnn_core::exp1::{run, Exp1Config};
use spnn_core::MeshTopology;
use spnn_photonics::PerturbTarget;

fn main() {
    let cfg = HarnessConfig::from_env();
    let sigmas = vec![0.0, 0.01, 0.025, 0.05, 0.075, 0.1];

    let mut rows = Vec::new();
    println!("Ablation A: mesh-topology robustness (EXP 1, both PhS & BeS)");
    println!("{:<10} {:>8} {:>10} {:>9}", "topology", "sigma", "accuracy%", "std%");
    for (topology, name) in [
        (MeshTopology::Clements, "clements"),
        (MeshTopology::Reck, "reck"),
    ] {
        let spnn = prepare_spnn(&cfg, topology);
        let points = run(
            &spnn.hardware,
            &spnn.data.test_features,
            &spnn.data.test_labels,
            &Exp1Config {
                sigmas: sigmas.clone(),
                iterations: cfg.mc_iterations,
                seed: cfg.seed ^ 0xAB1,
                modes: vec![PerturbTarget::Both],
            },
        );
        for p in &points {
            println!(
                "{:<10} {:>8.3} {:>10.2} {:>9.2}",
                name,
                p.sigma,
                p.result.mean * 100.0,
                p.result.std_dev * 100.0
            );
            rows.push(format!("{name},{},{:.6},{:.6}", p.sigma, p.result.mean, p.result.std_dev));
        }
    }
    write_csv("ablation_mesh.csv", "topology,sigma,mean_accuracy,std_dev", &rows);
    println!("\nnote: both topologies use N(N−1)/2 MZIs; Reck's 2N−3 depth concentrates tuned phases differently, changing uncertainty sensitivity.");
}
