//! Fig. 3 — average RVD per faulty MZI for four random 5×5 unitaries.
//!
//! "We consider four randomly generated 5×5 unitary matrices with random
//! perturbations in the PhS and BeS. For each matrix, we introduce
//! variations in one MZI at a time. For each MZI, we perform 1000 Monte
//! Carlo iterations and calculate the average RVD. … the MZI parameters
//! (θ, φ, r, r′, t, t′) corresponding to the faulty MZI are chosen from a
//! Gaussian distribution with σ_PhS = σ_BeS = 0.05."
//!
//! Usage: `cargo run --release -p spnn-bench --bin fig3`
//! (`SPNN_MC` overrides the per-MZI iteration count; paper scale is 1000.)

use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_bench::{write_csv, HarnessConfig};
use spnn_core::criticality::mzi_rvd_profile;
use spnn_linalg::random::haar_unitary;
use spnn_mesh::clements;
use spnn_photonics::UncertaintySpec;

fn main() {
    let cfg = HarnessConfig::from_env();
    let iterations = cfg.mc_iterations.max(100);
    let spec = UncertaintySpec::both(0.05);
    let n = 5;

    println!(
        "Fig. 3 reproduction: per-MZI average RVD, {iterations} MC iterations, σ_PhS = σ_BeS = 0.05"
    );
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF163);
    for matrix_idx in 0..4 {
        let u = haar_unitary(n, &mut rng);
        let mesh = clements::decompose(&u).expect("unitary decomposition");
        assert_eq!(mesh.n_mzis(), 10, "5×5 Clements mesh has 10 MZIs");
        let profile = mzi_rvd_profile(&mesh, &spec, iterations, cfg.seed ^ matrix_idx);

        print!("  matrix {matrix_idx}: ");
        for (mzi, &v) in profile.iter().enumerate() {
            print!("MZI{:<2}={v:.3} ", mzi + 1);
            rows.push(format!("{matrix_idx},{},{v:.6}", mzi + 1));
        }
        println!();
        let min = profile.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = profile.iter().cloned().fold(0.0, f64::max);
        println!(
            "    spread: min {min:.3}, max {max:.3} (ratio {:.2}x) — position-dependent impact",
            max / min
        );
    }
    write_csv("fig3_rvd.csv", "matrix,mzi,avg_rvd", &rows);
    println!("  paper observation: significant RVD variation across MZIs and across matrices");
}
