//! Fig. 2 — device-level relative deviation surfaces.
//!
//! Regenerates the four panels of Fig. 2: `|ΔTᵢⱼ|/|Tᵢⱼ|` over a
//! `(θ, φ) ∈ [0, 2π)²` grid for a common relative phase error `K = 0.05`
//! (paper Eq. 4). Emits one CSV per panel plus a monotonicity summary that
//! checks the paper's observation: "the relative deviation increases
//! monotonically as θ and φ increase".
//!
//! Usage: `cargo run --release -p spnn-bench --bin fig2`

use spnn_bench::write_csv;
use spnn_photonics::mzi::relative_deviation;
use std::f64::consts::TAU;

const K: f64 = 0.05;
const GRID: usize = 65;

fn main() {
    let names = [
        ("fig2_t11.csv", 0usize, 0usize),
        ("fig2_t12.csv", 0, 1),
        ("fig2_t21.csv", 1, 0),
        ("fig2_t22.csv", 1, 1),
    ];

    // Interior grid: exact 0 and 2π are the transfer-matrix zeros where the
    // relative deviation genuinely diverges (documented in the paper's Fig. 2
    // by the plotted range).
    let coords: Vec<f64> = (1..GRID).map(|i| TAU * i as f64 / GRID as f64).collect();

    let mut surfaces = vec![vec![vec![0.0f64; coords.len()]; coords.len()]; 4];
    for (ti, &theta) in coords.iter().enumerate() {
        for (pi, &phi) in coords.iter().enumerate() {
            let rd = relative_deviation(theta, phi, K, 1e-9);
            for (panel, &(_, r, c)) in names.iter().enumerate() {
                surfaces[panel][ti][pi] = rd[r][c];
            }
        }
    }

    for (panel, (name, r, c)) in names.iter().enumerate() {
        let mut rows = Vec::new();
        for (ti, &theta) in coords.iter().enumerate() {
            for (pi, &phi) in coords.iter().enumerate() {
                rows.push(format!(
                    "{theta:.6},{phi:.6},{:.8}",
                    surfaces[panel][ti][pi]
                ));
            }
        }
        write_csv(name, "theta,phi,relative_deviation", &rows);
        let _ = (r, c);
    }

    // Paper check 1: max/min of each surface (compare against Fig. 2 ranges).
    println!(
        "Fig. 2 reproduction (K = {K}), grid {}x{} over (0, 2π)²:",
        GRID - 1,
        GRID - 1
    );
    for (panel, (name, r, c)) in names.iter().enumerate() {
        let flat: Vec<f64> = surfaces[panel]
            .iter()
            .flatten()
            .cloned()
            .filter(|v| v.is_finite())
            .collect();
        let min = flat.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = flat.iter().cloned().fold(0.0, f64::max);
        println!(
            "  T{}{}  ({name}): min {min:.3}, max {max:.3}",
            r + 1,
            c + 1
        );
    }

    // Paper check 2: monotonic growth along the diagonal θ = φ in the bulk
    // region (up to the first transfer-matrix zero).
    let mut increasing = 0;
    let mut total = 0;
    let diag_limit = coords.iter().take_while(|&&t| t < 0.9 * TAU).count();
    for surface in surfaces.iter() {
        for i in 1..diag_limit {
            let prev = surface[i - 1][i - 1];
            let cur = surface[i][i];
            if prev.is_finite() && cur.is_finite() {
                total += 1;
                if cur >= prev - 1e-9 {
                    increasing += 1;
                }
            }
        }
    }
    let pct = 100.0 * increasing as f64 / total as f64;
    println!(
        "  monotone-increase check along θ = φ diagonal: {increasing}/{total} steps ({pct:.1}%)"
    );
    println!("  paper observation: deviation grows with θ, φ ⇒ MZIs with larger tuned phases are more susceptible");
}
