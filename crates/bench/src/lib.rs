//! Shared harness for the figure-regeneration binaries.
//!
//! Every `fig*`/`ablation_*` binary follows the same recipe: generate the
//! synthetic dataset, train the paper's 16-16-16-10 complex network, map it
//! to photonic hardware, run one experiment, and emit a CSV under
//! `results/` plus a human-readable summary on stdout. This module holds the
//! common pieces so each binary is a short, readable script.
//!
//! Scaling knobs (environment variables, all optional):
//!
//! | variable        | default | meaning                                  |
//! |-----------------|---------|------------------------------------------|
//! | `SPNN_MC`       | 60      | Monte-Carlo iterations per data point    |
//! | `SPNN_NTRAIN`   | 3000    | training samples                         |
//! | `SPNN_NTEST`    | 1000    | test samples per accuracy evaluation     |
//! | `SPNN_EPOCHS`   | 40      | training epochs                          |
//! | `SPNN_SEED`     | 7       | master seed                              |
//!
//! The paper-scale run is `SPNN_MC=1000 SPNN_NTEST=10000`.

use spnn_core::{MeshTopology, PhotonicNetwork};
use spnn_dataset::{DatasetConfig, SpnnDataset};
use spnn_neural::{train, ComplexNetwork, TrainConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Experiment-scale knobs, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Monte-Carlo iterations per data point.
    pub mc_iterations: usize,
    /// Training-set size.
    pub n_train: usize,
    /// Test-set size.
    pub n_test: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// Reads the configuration from `SPNN_*` environment variables.
    pub fn from_env() -> Self {
        fn read<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        Self {
            mc_iterations: read("SPNN_MC", 60),
            n_train: read("SPNN_NTRAIN", 3000),
            n_test: read("SPNN_NTEST", 1000),
            epochs: read("SPNN_EPOCHS", 40),
            seed: read("SPNN_SEED", 7),
        }
    }
}

/// A trained SPNN with its dataset — the starting point of every
/// system-level experiment.
#[derive(Debug)]
pub struct TrainedSpnn {
    /// The dataset (train + test splits).
    pub data: SpnnDataset,
    /// The software-trained network.
    pub software: ComplexNetwork,
    /// The photonic mapping (Clements, shuffled singular values as in EXP 2).
    pub hardware: PhotonicNetwork,
    /// Software accuracy on the test set.
    pub software_accuracy: f64,
    /// Ideal (σ = 0) hardware accuracy on the test set.
    pub nominal_accuracy: f64,
}

/// Generates data, trains the paper architecture and maps it to hardware.
///
/// # Panics
///
/// Panics if the photonic mapping fails (not expected for trained weights).
pub fn prepare_spnn(cfg: &HarnessConfig, topology: MeshTopology) -> TrainedSpnn {
    let data = SpnnDataset::generate(&DatasetConfig {
        n_train: cfg.n_train,
        n_test: cfg.n_test,
        crop: 4,
        seed: cfg.seed,
    });
    let mut software = ComplexNetwork::new(&[16, 16, 16, 10], cfg.seed ^ 0x11);
    let report = train(
        &mut software,
        &data.train_features,
        &data.train_labels,
        &TrainConfig {
            epochs: cfg.epochs,
            batch_size: 32,
            learning_rate: 0.01,
            seed: cfg.seed ^ 0x22,
            verbose: false,
        },
    );
    let hardware = PhotonicNetwork::from_network(&software, topology, Some(cfg.seed ^ 0x33))
        .expect("photonic mapping");
    let software_accuracy = software.accuracy(&data.test_features, &data.test_labels);
    let nominal_accuracy = hardware.ideal_accuracy(&data.test_features, &data.test_labels);
    eprintln!(
        "[harness] trained {} epochs: train acc {:.2}%, test acc {:.2}%, nominal hardware acc {:.2}%",
        cfg.epochs,
        report.train_accuracy * 100.0,
        software_accuracy * 100.0,
        nominal_accuracy * 100.0
    );
    TrainedSpnn {
        data,
        software,
        hardware,
        software_accuracy,
        nominal_accuracy,
    }
}

/// The `results/` directory at the workspace root (created on demand).
///
/// Anchored on this crate's manifest directory so the harness binaries can
/// be launched from any working directory.
pub fn results_dir() -> PathBuf {
    let raw = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&raw).ok();
    raw.canonicalize().unwrap_or(raw)
}

/// Writes a CSV file under `results/` and logs the path.
///
/// # Panics
///
/// Panics on I/O errors — the harness binaries should fail loudly.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    writeln!(body, "{header}").expect("string write");
    for row in rows {
        writeln!(body, "{row}").expect("string write");
    }
    std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("[harness] wrote {}", path.display());
    path
}

/// Writes an engine report as CSV under `results/` and logs the path.
///
/// # Panics
///
/// Panics on I/O errors — the harness binaries should fail loudly.
pub fn write_engine_csv(name: &str, report: &spnn_engine::EngineReport) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, spnn_engine::to_csv(report))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("[harness] wrote {}", path.display());
    path
}

/// Renders a heat map as an aligned text table (rows top-to-bottom).
pub fn render_heatmap(values: &[Vec<f64>]) -> String {
    let mut out = String::new();
    for row in values {
        for v in row {
            let _ = write!(out, "{v:>7.2}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_without_env() {
        // Read defaults via explicit fallbacks (env may or may not be set in
        // the test environment; only check that parsing doesn't panic).
        let cfg = HarnessConfig::from_env();
        assert!(cfg.mc_iterations > 0);
        assert!(cfg.n_test > 0);
    }

    #[test]
    fn heatmap_rendering_is_rectangular() {
        let s = render_heatmap(&[vec![1.0, 2.0], vec![3.0, 4.5]]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn tiny_end_to_end_pipeline() {
        // A miniature version of what every figure binary does.
        let cfg = HarnessConfig {
            mc_iterations: 2,
            n_train: 80,
            n_test: 40,
            epochs: 3,
            seed: 5,
        };
        let spnn = prepare_spnn(&cfg, MeshTopology::Clements);
        assert_eq!(spnn.data.test_features.len(), 40);
        // Hardware nominal accuracy equals software accuracy (same math).
        assert!((spnn.nominal_accuracy - spnn.software_accuracy).abs() < 1e-9);
    }
}
