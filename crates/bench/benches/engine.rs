//! Criterion bench: `spnn-engine` batched forward path vs per-sample
//! Monte-Carlo loops.
//!
//! Three variants of one accuracy evaluation (the per-iteration hot path)
//! are measured for the paper's 16-16-16-10 network:
//!
//! - **`naive_seed`** — the per-figure loop exactly as the seed repository
//!   shipped it: per-sample `mul_vec` products, per-sample allocations,
//!   libm-based softplus on a `hypot` modulus (reproduced verbatim in
//!   [`naive`] below). This is the baseline the engine replaced.
//! - **`per_sample`** — today's `PhotonicNetwork::accuracy_with`: still a
//!   per-sample loop, but it already benefits from the polynomial
//!   activation kernels introduced with the engine.
//! - **`batched`** — the engine's `TestBatch::accuracy_with`: tiled
//!   split-plane matrix products + vectorized activation planes,
//!   bit-identical to `per_sample`.
//!
//! A full Monte-Carlo iteration (hardware realization + accuracy) is also
//! timed to bound the end-to-end win. `SPNN_NTEST` scales the test-set
//! size (default 1000, the acceptance configuration). A
//! `BENCH_engine.json` datapoint with the measured speedups is written to
//! the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spnn_core::{HardwareEffects, MeshTopology, PerturbationPlan, PhotonicNetwork};
use spnn_engine::TestBatch;
use spnn_linalg::{CMatrix, C64};
use spnn_neural::ComplexNetwork;
use spnn_photonics::UncertaintySpec;
use std::time::Instant;

/// The seed's original forward path, reproduced verbatim as the
/// historical baseline (see the seed's `network.rs`/`activation.rs`):
/// libm `exp`/`ln_1p` softplus on a `hypot` modulus, one heap-allocated
/// vector per layer per sample.
mod naive {
    use super::*;
    use spnn_neural::loss::argmax;

    fn softplus(x: f64) -> f64 {
        x.max(0.0) + (-x.abs()).exp().ln_1p()
    }

    fn mod_softplus(z: &[C64]) -> Vec<C64> {
        z.iter().map(|v| C64::from(softplus(v.abs()))).collect()
    }

    pub fn accuracy_with(matrices: &[CMatrix], features: &[Vec<C64>], labels: &[usize]) -> f64 {
        let last = matrices.len() - 1;
        let correct = features
            .iter()
            .zip(labels.iter())
            .filter(|(x, &y)| {
                let mut a = x.to_vec();
                for (l, m) in matrices.iter().enumerate() {
                    let z = m.mul_vec(&a);
                    a = if l < last { mod_softplus(&z) } else { z };
                }
                let intensities: Vec<f64> = a.iter().map(|v| v.abs_sq()).collect();
                argmax(&intensities) == y
            })
            .count();
        correct as f64 / features.len() as f64
    }
}

fn n_test() -> usize {
    std::env::var("SPNN_NTEST")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

fn setup(n: usize) -> (PhotonicNetwork, Vec<Vec<C64>>, Vec<usize>, Vec<CMatrix>) {
    let sw = ComplexNetwork::new(&[16, 16, 16, 10], 9);
    let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
    let features: Vec<Vec<C64>> = (0..n)
        .map(|i| {
            (0..16)
                .map(|j| {
                    C64::new(
                        ((i * 3 + j) % 7) as f64 * 0.1,
                        ((i + j * 5) % 4) as f64 * 0.1,
                    )
                })
                .collect()
        })
        .collect();
    let ideal = hw.ideal_matrices();
    let labels: Vec<usize> = features
        .iter()
        .map(|f| hw.classify_with(&ideal, f))
        .collect();
    // Bench against a realistically-perturbed realization, not the ideal.
    let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
    let matrices = hw.realize(
        &plan,
        &HardwareEffects::default(),
        &mut spnn_core::iteration_rng(3, 0),
    );
    (hw, features, labels, matrices)
}

fn bench_accuracy_paths(c: &mut Criterion) {
    let n = n_test();
    let (hw, xs, ys, matrices) = setup(n);
    let batch = TestBatch::new(&xs, &ys);
    assert_eq!(
        hw.accuracy_with(&matrices, &xs, &ys),
        batch.accuracy_with(&hw, &matrices),
        "paths must agree before timing them"
    );

    let mut group = c.benchmark_group("accuracy_eval");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("naive_seed", n), &n, |b, _| {
        b.iter(|| naive::accuracy_with(std::hint::black_box(&matrices), &xs, &ys))
    });
    group.bench_with_input(BenchmarkId::new("per_sample", n), &n, |b, _| {
        b.iter(|| hw.accuracy_with(std::hint::black_box(&matrices), &xs, &ys))
    });
    group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
        b.iter(|| batch.accuracy_with(&hw, std::hint::black_box(&matrices)))
    });
    group.finish();
}

fn bench_full_iteration(c: &mut Criterion) {
    let n = n_test();
    let (hw, xs, ys, _) = setup(n);
    let batch = TestBatch::new(&xs, &ys);
    let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
    let fx = HardwareEffects::default();

    let mut group = c.benchmark_group("mc_iteration");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("per_sample", n), &n, |b, _| {
        let mut k = 0usize;
        b.iter(|| {
            let m = hw.realize(&plan, &fx, &mut spnn_core::iteration_rng(7, k));
            k += 1;
            hw.accuracy_with(&m, &xs, &ys)
        })
    });
    group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
        let mut k = 0usize;
        b.iter(|| {
            let m = hw.realize(&plan, &fx, &mut spnn_core::iteration_rng(7, k));
            k += 1;
            batch.accuracy_with(&hw, &m)
        })
    });
    group.finish();
}

/// Times `f` over `reps` calls and returns ns/call (min of 7 samples —
/// robust against scheduler noise on shared machines).
fn time_ns<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / reps as f64);
    }
    best
}

/// Writes the `BENCH_engine.json` datapoint at the workspace root.
fn emit_datapoint(_c: &mut Criterion) {
    let n = n_test();
    let (hw, xs, ys, matrices) = setup(n);
    let batch = TestBatch::new(&xs, &ys);
    let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
    let fx = HardwareEffects::default();

    let naive_eval = time_ns(5, || naive::accuracy_with(&matrices, &xs, &ys));
    let per_sample_eval = time_ns(5, || hw.accuracy_with(&matrices, &xs, &ys));
    let batched_eval = time_ns(5, || batch.accuracy_with(&hw, &matrices));
    let mut k = 0usize;
    let per_sample_iter = time_ns(5, || {
        let m = hw.realize(&plan, &fx, &mut spnn_core::iteration_rng(7, k));
        k += 1;
        hw.accuracy_with(&m, &xs, &ys)
    });
    let batched_iter = time_ns(5, || {
        let m = hw.realize(&plan, &fx, &mut spnn_core::iteration_rng(7, k));
        k += 1;
        batch.accuracy_with(&hw, &m)
    });

    let vs_naive = naive_eval / batched_eval;
    let vs_per_sample = per_sample_eval / batched_eval;
    let iter_speedup = per_sample_iter / batched_iter;
    let json = format!(
        "{{\n  \"bench\": \"engine_batched_vs_per_sample\",\n  \"network\": \"16-16-16-10\",\n  \"n_test\": {n},\n  \"accuracy_eval\": {{\n    \"naive_seed_ns\": {naive_eval:.0},\n    \"per_sample_ns\": {per_sample_eval:.0},\n    \"batched_ns\": {batched_eval:.0},\n    \"speedup_vs_naive_seed\": {vs_naive:.2},\n    \"speedup_vs_per_sample\": {vs_per_sample:.2}\n  }},\n  \"mc_iteration\": {{\"per_sample_ns\": {per_sample_iter:.0}, \"batched_ns\": {batched_iter:.0}, \"speedup\": {iter_speedup:.2}}}\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    std::fs::write(&path, &json).expect("write BENCH_engine.json");
    println!(
        "engine datapoint: batched {vs_naive:.2}x vs the seed's naive loop, {vs_per_sample:.2}x vs today's per-sample path → {}",
        path.display()
    );
}

criterion_group!(
    benches,
    bench_accuracy_paths,
    bench_full_iteration,
    emit_datapoint
);
criterion_main!(benches);
