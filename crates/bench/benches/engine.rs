//! Criterion bench: `spnn-engine` batched forward path vs per-sample
//! Monte-Carlo loops.
//!
//! Three variants of one accuracy evaluation (the per-iteration hot path)
//! are measured for the paper's 16-16-16-10 network:
//!
//! - **`naive_seed`** — the per-figure loop exactly as the seed repository
//!   shipped it: per-sample `mul_vec` products, per-sample allocations,
//!   libm-based softplus on a `hypot` modulus (reproduced verbatim in
//!   [`naive`] below). This is the baseline the engine replaced.
//! - **`per_sample`** — today's `PhotonicNetwork::accuracy_with`: still a
//!   per-sample loop, but it already benefits from the polynomial
//!   activation kernels introduced with the engine.
//! - **`batched`** — the engine's `TestBatch::accuracy_with`: tiled
//!   split-plane matrix products + vectorized activation planes,
//!   bit-identical to `per_sample`.
//!
//! A full Monte-Carlo iteration (hardware realization + accuracy) is also
//! timed to bound the end-to-end win, and two additional datapoints cover
//! the batched-by-default flip and the trained-context cache:
//!
//! - **`mc_accuracy` flip** — `spnn_core::mc_accuracy` now delegates to
//!   `TestBatch` internally; its end-to-end time is compared against a
//!   faithful reproduction of the legacy per-sample implementation (same
//!   threading, per-sample `accuracy_with`).
//! - **trained-context cache** — a cold `ContextCache::get_or_train`
//!   (dataset generation + training + mapping + persist) is compared with
//!   a warm one (load + deserialize) at a reduced training scale.
//!
//! `SPNN_NTEST` scales the test-set size (default 1000, the acceptance
//! configuration). A `BENCH_engine.json` datapoint with the measured
//! speedups is written to the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spnn_core::{
    mc_accuracy, BatchScratch, HardwareEffects, KernelProfile, MeshTopology, PerturbationPlan,
    PhotonicNetwork, RealizeScratch,
};
use spnn_engine::cache::ContextCache;
use spnn_engine::{presets, RunScale, TestBatch};
use spnn_linalg::{CMatrix, C64};
use spnn_neural::ComplexNetwork;
use spnn_photonics::UncertaintySpec;
use std::time::Instant;

/// The seed's original forward path, reproduced verbatim as the
/// historical baseline (see the seed's `network.rs`/`activation.rs`):
/// libm `exp`/`ln_1p` softplus on a `hypot` modulus, one heap-allocated
/// vector per layer per sample.
mod naive {
    use super::*;
    use spnn_neural::loss::argmax;

    fn softplus(x: f64) -> f64 {
        x.max(0.0) + (-x.abs()).exp().ln_1p()
    }

    fn mod_softplus(z: &[C64]) -> Vec<C64> {
        z.iter().map(|v| C64::from(softplus(v.abs()))).collect()
    }

    pub fn accuracy_with(matrices: &[CMatrix], features: &[Vec<C64>], labels: &[usize]) -> f64 {
        let last = matrices.len() - 1;
        let correct = features
            .iter()
            .zip(labels.iter())
            .filter(|(x, &y)| {
                let mut a = x.to_vec();
                for (l, m) in matrices.iter().enumerate() {
                    let z = m.mul_vec(&a);
                    a = if l < last { mod_softplus(&z) } else { z };
                }
                let intensities: Vec<f64> = a.iter().map(|v| v.abs_sq()).collect();
                argmax(&intensities) == y
            })
            .count();
        correct as f64 / features.len() as f64
    }
}

/// The pre-flip `mc_accuracy`, reproduced faithfully: identical seeding
/// and thread-splitting, but per-sample `accuracy_with` per iteration.
fn legacy_mc_accuracy(
    network: &PhotonicNetwork,
    plan: &PerturbationPlan,
    effects: &HardwareEffects,
    features: &[Vec<C64>],
    labels: &[usize],
    iterations: usize,
    seed: u64,
) -> f64 {
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(iterations)
        .max(1);
    let mut samples = vec![0.0f64; iterations];
    let chunk = iterations.div_ceil(n_threads);
    std::thread::scope(|scope| {
        for (t, out_chunk) in samples.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            scope.spawn(move || {
                for (off, slot) in out_chunk.iter_mut().enumerate() {
                    let mut rng = spnn_core::iteration_rng(seed, start + off);
                    let matrices = network.realize(plan, effects, &mut rng);
                    *slot = network.accuracy_with(&matrices, features, labels);
                }
            });
        }
    });
    samples.iter().sum::<f64>() / iterations as f64
}

fn n_test() -> usize {
    std::env::var("SPNN_NTEST")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

fn setup(n: usize) -> (PhotonicNetwork, Vec<Vec<C64>>, Vec<usize>, Vec<CMatrix>) {
    let sw = ComplexNetwork::new(&[16, 16, 16, 10], 9);
    let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
    let features: Vec<Vec<C64>> = (0..n)
        .map(|i| {
            (0..16)
                .map(|j| {
                    C64::new(
                        ((i * 3 + j) % 7) as f64 * 0.1,
                        ((i + j * 5) % 4) as f64 * 0.1,
                    )
                })
                .collect()
        })
        .collect();
    let ideal = hw.ideal_matrices();
    let labels: Vec<usize> = features
        .iter()
        .map(|f| hw.classify_with(&ideal, f))
        .collect();
    // Bench against a realistically-perturbed realization, not the ideal.
    let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
    let matrices = hw.realize(
        &plan,
        &HardwareEffects::default(),
        &mut spnn_core::iteration_rng(3, 0),
    );
    (hw, features, labels, matrices)
}

fn bench_accuracy_paths(c: &mut Criterion) {
    let n = n_test();
    let (hw, xs, ys, matrices) = setup(n);
    let batch = TestBatch::new(&xs, &ys);
    assert_eq!(
        hw.accuracy_with(&matrices, &xs, &ys),
        batch.accuracy_with(&hw, &matrices),
        "paths must agree before timing them"
    );

    let mut group = c.benchmark_group("accuracy_eval");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("naive_seed", n), &n, |b, _| {
        b.iter(|| naive::accuracy_with(std::hint::black_box(&matrices), &xs, &ys))
    });
    group.bench_with_input(BenchmarkId::new("per_sample", n), &n, |b, _| {
        b.iter(|| hw.accuracy_with(std::hint::black_box(&matrices), &xs, &ys))
    });
    group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
        b.iter(|| batch.accuracy_with(&hw, std::hint::black_box(&matrices)))
    });
    group.finish();
}

fn bench_full_iteration(c: &mut Criterion) {
    let n = n_test();
    let (hw, xs, ys, _) = setup(n);
    let batch = TestBatch::new(&xs, &ys);
    let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
    let fx = HardwareEffects::default();

    let mut group = c.benchmark_group("mc_iteration");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("per_sample", n), &n, |b, _| {
        let mut k = 0usize;
        b.iter(|| {
            let m = hw.realize(&plan, &fx, &mut spnn_core::iteration_rng(7, k));
            k += 1;
            hw.accuracy_with(&m, &xs, &ys)
        })
    });
    group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
        let mut k = 0usize;
        b.iter(|| {
            let m = hw.realize(&plan, &fx, &mut spnn_core::iteration_rng(7, k));
            k += 1;
            batch.accuracy_with(&hw, &m)
        })
    });
    group.finish();
}

/// The opt-in fma profile vs the reference path, measured exactly as the
/// engine's worker loop runs them: reference is realize + batched
/// accuracy (the pre-profile hot path), fma adds the runtime-dispatched
/// FMA/SIMD kernels *and* the reused realize/batch scratch.
fn bench_fma_profile(c: &mut Criterion) {
    let n = n_test();
    let (hw, xs, ys, _) = setup(n);
    let batch = TestBatch::new(&xs, &ys);
    let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
    let fx = HardwareEffects::default();

    let mut group = c.benchmark_group("fma_profile");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
        let mut k = 0usize;
        b.iter(|| {
            let m = hw.realize(&plan, &fx, &mut spnn_core::iteration_rng(7, k));
            k += 1;
            batch.accuracy_with(&hw, &m)
        })
    });
    group.bench_with_input(BenchmarkId::new("fma", n), &n, |b, _| {
        let mut k = 0usize;
        let mut realize = RealizeScratch::default();
        let mut scratch = BatchScratch::default();
        let mut m = Vec::new();
        b.iter(|| {
            hw.realize_into(
                &plan,
                &fx,
                &mut spnn_core::iteration_rng(7, k),
                &mut realize,
                &mut m,
            );
            k += 1;
            batch.accuracy_with_profile(&hw, &m, KernelProfile::Fma, &mut scratch)
        })
    });
    group.finish();
}

/// Times `f` over `reps` calls and returns ns/call (min of 7 samples —
/// robust against scheduler noise on shared machines).
fn time_ns<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / reps as f64);
    }
    best
}

/// Writes the `BENCH_engine.json` datapoint at the workspace root.
fn emit_datapoint(_c: &mut Criterion) {
    let n = n_test();
    let (hw, xs, ys, matrices) = setup(n);
    let batch = TestBatch::new(&xs, &ys);
    let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
    let fx = HardwareEffects::default();

    let naive_eval = time_ns(5, || naive::accuracy_with(&matrices, &xs, &ys));
    let per_sample_eval = time_ns(5, || hw.accuracy_with(&matrices, &xs, &ys));
    let batched_eval = time_ns(5, || batch.accuracy_with(&hw, &matrices));
    let mut k = 0usize;
    let per_sample_iter = time_ns(5, || {
        let m = hw.realize(&plan, &fx, &mut spnn_core::iteration_rng(7, k));
        k += 1;
        hw.accuracy_with(&m, &xs, &ys)
    });
    let batched_iter = time_ns(5, || {
        let m = hw.realize(&plan, &fx, &mut spnn_core::iteration_rng(7, k));
        k += 1;
        batch.accuracy_with(&hw, &m)
    });

    // The opt-in fma profile: FMA/SIMD kernels + reused iteration
    // scratch, against the reference per-iteration path above.
    let fma_eval = {
        let mut scratch = BatchScratch::default();
        let m = hw.realize(&plan, &fx, &mut spnn_core::iteration_rng(3, 0));
        time_ns(5, || {
            batch.accuracy_with_profile(&hw, &m, KernelProfile::Fma, &mut scratch)
        })
    };
    let fma_iter = {
        let mut realize = RealizeScratch::default();
        let mut scratch = BatchScratch::default();
        let mut m = Vec::new();
        time_ns(5, || {
            hw.realize_into(
                &plan,
                &fx,
                &mut spnn_core::iteration_rng(7, k),
                &mut realize,
                &mut m,
            );
            k += 1;
            batch.accuracy_with_profile(&hw, &m, KernelProfile::Fma, &mut scratch)
        })
    };

    // The batched-by-default flip: today's mc_accuracy (TestBatch inside)
    // vs a faithful reproduction of the legacy per-sample implementation.
    const MC_ITERS: usize = 20;
    let legacy_mc = time_ns(1, || {
        legacy_mc_accuracy(&hw, &plan, &fx, &xs, &ys, MC_ITERS, 5)
    });
    let flipped_mc = time_ns(1, || {
        mc_accuracy(&hw, &plan, &fx, &xs, &ys, MC_ITERS, 5).mean
    });
    let flip_speedup = legacy_mc / flipped_mc;

    // Trained-context cache: cold train vs warm load, at a reduced
    // training scale so the bench stays quick (the win grows with scale —
    // the warm path is O(weights), the cold path O(epochs × n_train)).
    let cache_scale = RunScale {
        mc: 1,
        n_train: 600,
        n_test: 100,
        epochs: 8,
        seed: 7,
        target_moe: 0.0,
    };
    let cache_spec = presets::fig4(&cache_scale);
    let shuffle_seed = Some(cache_spec.seed ^ 0x33);
    let dir = std::env::temp_dir().join(format!("spnn-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let t0 = Instant::now();
    let cold_cache = ContextCache::on_disk(&dir);
    let ctx = cold_cache.get_or_train(&cache_spec, false);
    ctx.mapping(MeshTopology::Clements, shuffle_seed)
        .expect("mapping");
    cold_cache.persist(&ctx).expect("persist");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut warm_ms = f64::INFINITY;
    for _ in 0..5 {
        let t1 = Instant::now();
        let warm_cache = ContextCache::on_disk(&dir);
        let warm_ctx = warm_cache.get_or_train(&cache_spec, false);
        warm_ctx
            .mapping(MeshTopology::Clements, shuffle_seed)
            .expect("mapping");
        warm_ms = warm_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        assert_eq!(warm_cache.stats().trains, 0, "warm path must not train");
    }
    let _ = std::fs::remove_dir_all(&dir);
    let cache_speedup = cold_ms / warm_ms;

    let vs_naive = naive_eval / batched_eval;
    let vs_per_sample = per_sample_eval / batched_eval;
    let iter_speedup = per_sample_iter / batched_iter;
    let fma_eval_speedup = batched_eval / fma_eval;
    let fma_iter_speedup = batched_iter / fma_iter;
    let tier = spnn_core::detected_tier();
    let json = format!(
        "{{\n  \"bench\": \"engine_batched_vs_per_sample\",\n  \"network\": \"16-16-16-10\",\n  \"n_test\": {n},\n  \"accuracy_eval\": {{\n    \"naive_seed_ns\": {naive_eval:.0},\n    \"per_sample_ns\": {per_sample_eval:.0},\n    \"batched_ns\": {batched_eval:.0},\n    \"speedup_vs_naive_seed\": {vs_naive:.2},\n    \"speedup_vs_per_sample\": {vs_per_sample:.2}\n  }},\n  \"mc_iteration\": {{\"per_sample_ns\": {per_sample_iter:.0}, \"batched_ns\": {batched_iter:.0}, \"speedup\": {iter_speedup:.2}}},\n  \"fma_profile\": {{\n    \"tier\": \"{tier}\",\n    \"accuracy_eval\": {{\"reference_ns\": {batched_eval:.0}, \"fma_ns\": {fma_eval:.0}, \"speedup\": {fma_eval_speedup:.2}}},\n    \"mc_iteration\": {{\"reference_ns\": {batched_iter:.0}, \"fma_ns\": {fma_iter:.0}, \"speedup\": {fma_iter_speedup:.2}}}\n  }},\n  \"mc_accuracy_flip\": {{\n    \"iterations\": {MC_ITERS},\n    \"legacy_per_sample_ns\": {legacy_mc:.0},\n    \"batched_default_ns\": {flipped_mc:.0},\n    \"speedup\": {flip_speedup:.2}\n  }},\n  \"trained_context_cache\": {{\n    \"scale\": \"n_train=600 epochs=8\",\n    \"cold_train_ms\": {cold_ms:.1},\n    \"warm_load_ms\": {warm_ms:.2},\n    \"speedup\": {cache_speedup:.0}\n  }}\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    std::fs::write(&path, &json).expect("write BENCH_engine.json");
    println!(
        "engine datapoint: batched {vs_naive:.2}x vs the seed's naive loop, fma profile {fma_iter_speedup:.2}x per iteration ({tier}), mc_accuracy flip {flip_speedup:.2}x, warm cache {cache_speedup:.0}x vs cold train → {}",
        path.display()
    );
}

criterion_group!(
    benches,
    bench_accuracy_paths,
    bench_full_iteration,
    bench_fma_profile,
    emit_datapoint
);
criterion_main!(benches);
