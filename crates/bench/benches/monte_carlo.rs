//! Criterion bench: Monte-Carlo engine cost.
//!
//! One full hardware realization of the paper's 16-16-16-10 network
//! (687 MZI draws + six mesh-matrix evaluations) and one accuracy
//! evaluation over a small test batch — the two dominant per-iteration
//! costs of EXP 1 / EXP 2.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_core::{HardwareEffects, MeshTopology, PerturbationPlan, PhotonicNetwork};
use spnn_linalg::C64;
use spnn_neural::ComplexNetwork;
use spnn_photonics::UncertaintySpec;

fn setup() -> (PhotonicNetwork, Vec<Vec<C64>>, Vec<usize>) {
    let sw = ComplexNetwork::new(&[16, 16, 16, 10], 9);
    let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
    let features: Vec<Vec<C64>> = (0..100)
        .map(|i| {
            (0..16)
                .map(|j| {
                    C64::new(
                        ((i * 3 + j) % 7) as f64 * 0.1,
                        ((i + j * 5) % 4) as f64 * 0.1,
                    )
                })
                .collect()
        })
        .collect();
    let ideal = hw.ideal_matrices();
    let labels: Vec<usize> = features
        .iter()
        .map(|f| hw.classify_with(&ideal, f))
        .collect();
    (hw, features, labels)
}

fn bench_realize(c: &mut Criterion) {
    let (hw, _, _) = setup();
    let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
    let fx = HardwareEffects::default();
    c.bench_function("realize_paper_network", |b| {
        let mut rng = StdRng::seed_from_u64(10);
        b.iter(|| hw.realize(std::hint::black_box(&plan), &fx, &mut rng))
    });
}

fn bench_accuracy_eval(c: &mut Criterion) {
    let (hw, xs, ys) = setup();
    let ideal = hw.ideal_matrices();
    c.bench_function("accuracy_100_images", |b| {
        b.iter(|| hw.accuracy_with(std::hint::black_box(&ideal), &xs, &ys))
    });
}

criterion_group!(benches, bench_realize, bench_accuracy_eval);
criterion_main!(benches);
