//! Criterion bench: mesh-synthesis throughput.
//!
//! Clements and Reck decompositions across the mesh sizes used by the
//! paper's network (10×10 and 16×16) plus a larger 32×32 point to expose
//! the O(N³) scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_linalg::random::haar_unitary;
use spnn_linalg::CMatrix;
use spnn_mesh::{clements, reck};

fn unitaries() -> Vec<(usize, CMatrix)> {
    let mut rng = StdRng::seed_from_u64(1);
    [5usize, 10, 16, 32]
        .into_iter()
        .map(|n| (n, haar_unitary(n, &mut rng)))
        .collect()
}

fn bench_decompositions(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_synthesis");
    group.sample_size(20);
    for (n, u) in unitaries() {
        group.bench_with_input(BenchmarkId::new("clements", n), &u, |b, u| {
            b.iter(|| clements::decompose(std::hint::black_box(u)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("reck", n), &u, |b, u| {
            b.iter(|| reck::decompose(std::hint::black_box(u)).unwrap())
        });
    }
    group.finish();
}

fn bench_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_matrix_eval");
    group.sample_size(20);
    for (n, u) in unitaries() {
        let mesh = clements::decompose(&u).unwrap();
        group.bench_with_input(BenchmarkId::new("ideal_matrix", n), &mesh, |b, m| {
            b.iter(|| std::hint::black_box(m).matrix())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decompositions, bench_reconstruction);
criterion_main!(benches);
