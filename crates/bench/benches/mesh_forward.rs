//! Criterion bench: optical forward propagation.
//!
//! Field-vector propagation through a mesh (O(#MZI) two-mode updates) vs
//! full perturbed-matrix evaluation — the inner loops of the Monte-Carlo
//! engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_linalg::random::{gaussian_vector, haar_unitary};
use spnn_mesh::clements;
use spnn_photonics::UncertaintySpec;

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_forward");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(2);
    for n in [10usize, 16, 32] {
        let u = haar_unitary(n, &mut rng);
        let mesh = clements::decompose(&u).unwrap();
        let input = gaussian_vector(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("field_vector", n), &n, |b, _| {
            b.iter(|| mesh.forward(std::hint::black_box(&input)))
        });
    }
    group.finish();
}

fn bench_perturbed_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_perturbed_matrix");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(3);
    let spec = UncertaintySpec::both(0.05);
    for n in [10usize, 16] {
        let u = haar_unitary(n, &mut rng);
        let mesh = clements::decompose(&u).unwrap();
        group.bench_with_input(BenchmarkId::new("matrix_with_noise", n), &n, |b, _| {
            let mut draw_rng = StdRng::seed_from_u64(4);
            b.iter(|| mesh.matrix_with(|_, site| spec.perturb_mzi(&site.device(), &mut draw_rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_perturbed_matrix);
criterion_main!(benches);
