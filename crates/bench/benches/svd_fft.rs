//! Criterion bench: numerical kernels — complex SVD (weight-matrix
//! factorization) and the 2-D FFT feature pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_dataset::{fft_features, ImageGenerator};
use spnn_linalg::random::gaussian_complex;
use spnn_linalg::svd::svd;
use spnn_linalg::CMatrix;

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(5);
    for (rows, cols) in [(10usize, 16usize), (16, 16), (32, 32)] {
        let a = CMatrix::from_fn(rows, cols, |_, _| gaussian_complex(&mut rng));
        group.bench_with_input(
            BenchmarkId::new("jacobi", format!("{rows}x{cols}")),
            &a,
            |b, a| b.iter(|| svd(std::hint::black_box(a)).unwrap()),
        );
    }
    group.finish();
}

fn bench_fft_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_features");
    group.sample_size(30);
    let gen = ImageGenerator::default();
    let mut rng = StdRng::seed_from_u64(6);
    let img = gen.render(5, &mut rng);
    for crop in [4usize, 8, 28] {
        group.bench_with_input(
            BenchmarkId::new("shifted_fft_crop", crop),
            &crop,
            |b, &k| b.iter(|| fft_features(std::hint::black_box(&img), k)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_svd, bench_fft_features);
criterion_main!(benches);
