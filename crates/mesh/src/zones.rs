//! Zone partitioning for EXP 2 (paper §III-D, Fig. 5).
//!
//! The paper divides each unitary multiplier into zones of "four MZIs
//! arranged in a 2×2 grid": two adjacent mesh *grid rows* × two adjacent
//! *columns*. The heat maps of Fig. 5 have the layer height growing
//! vertically (zone row) and width horizontally (zone column).
//!
//! Mesh grid coordinates: an MZI with upper mode `top` in physical column
//! `c` sits at grid position `(top / 2, c)` — in a Clements rectangle,
//! even columns host MZIs with even `top` (0, 2, 4, …) and odd columns odd
//! `top` (1, 3, 5, …), so `top / 2` enumerates rows 0, 1, 2, … in both.

use crate::mesh::UnitaryMesh;

/// The 2×2-MZI zone partition of a mesh.
///
/// # Example
///
/// ```
/// use spnn_mesh::{clements, ZoneGrid};
/// use spnn_linalg::random::haar_unitary;
/// use rand::SeedableRng;
///
/// let u = haar_unitary(16, &mut rand::rngs::StdRng::seed_from_u64(4));
/// let mesh = clements::decompose(&u)?;
/// let zones = ZoneGrid::for_mesh(&mesh);
/// assert_eq!((zones.rows(), zones.cols()), (4, 8)); // 16×16 Clements
/// # Ok::<(), spnn_mesh::MeshError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneGrid {
    rows: usize,
    cols: usize,
    /// members[zr][zc] = indices into `mesh.mzis()`.
    members: Vec<Vec<Vec<usize>>>,
}

impl ZoneGrid {
    /// Builds the zone partition of a mesh.
    pub fn for_mesh(mesh: &UnitaryMesh) -> Self {
        let max_grid_row = mesh.mzis().iter().map(|m| m.grid_row()).max().unwrap_or(0);
        let n_cols = mesh.n_columns().max(1);
        let rows = (max_grid_row + 2) / 2; // ceil((max+1)/2)
        let cols = n_cols.div_ceil(2); // ceil(cols/2)
        let mut members = vec![vec![Vec::new(); cols]; rows];
        for (idx, site) in mesh.mzis().iter().enumerate() {
            let zr = site.grid_row() / 2;
            let zc = site.column / 2;
            members[zr][zc].push(idx);
        }
        Self {
            rows: rows.max(1),
            cols: cols.max(1),
            members,
        }
    }

    /// Number of zone rows (vertical axis of the Fig. 5 heat maps).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of zone columns (horizontal axis of the Fig. 5 heat maps).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// MZI indices (into `mesh.mzis()`) belonging to zone `(zr, zc)`.
    ///
    /// # Panics
    ///
    /// Panics if the zone coordinates are out of range.
    pub fn members(&self, zr: usize, zc: usize) -> &[usize] {
        &self.members[zr][zc]
    }

    /// Iterates over all zones as `((zr, zc), members)`.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), &[usize])> {
        self.members.iter().enumerate().flat_map(|(zr, row)| {
            row.iter()
                .enumerate()
                .map(move |(zc, m)| ((zr, zc), m.as_slice()))
        })
    }

    /// Total number of zones.
    pub fn n_zones(&self) -> usize {
        self.rows * self.cols
    }

    /// Builds a membership lookup: `mzi index → (zr, zc)`.
    pub fn zone_of_each(&self, n_mzis: usize) -> Vec<(usize, usize)> {
        let mut out = vec![(usize::MAX, usize::MAX); n_mzis];
        for ((zr, zc), members) in self.iter() {
            for &m in members {
                out[m] = (zr, zc);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clements;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnn_linalg::random::haar_unitary;

    fn mesh(n: usize, seed: u64) -> UnitaryMesh {
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed));
        clements::decompose(&u).unwrap()
    }

    #[test]
    fn partition_covers_every_mzi_once() {
        for n in [5usize, 10, 16] {
            let m = mesh(n, n as u64);
            let zones = ZoneGrid::for_mesh(&m);
            let mut seen = vec![false; m.n_mzis()];
            for (_, members) in zones.iter() {
                for &idx in members {
                    assert!(!seen[idx], "MZI {idx} in two zones (n={n})");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "some MZI unassigned (n={n})");
        }
    }

    #[test]
    fn paper_16x16_grid_is_4x8() {
        let zones = ZoneGrid::for_mesh(&mesh(16, 1));
        assert_eq!(zones.rows(), 4);
        assert_eq!(zones.cols(), 8);
        assert_eq!(zones.n_zones(), 32);
    }

    #[test]
    fn paper_10x10_grid_is_3x5() {
        // 10×10 Clements: 10 columns, grid rows 0..4 ⇒ ceil(5/2)=3 zone rows,
        // ceil(10/2)=5 zone cols.
        let zones = ZoneGrid::for_mesh(&mesh(10, 2));
        assert_eq!(zones.rows(), 3);
        assert_eq!(zones.cols(), 5);
    }

    #[test]
    fn interior_zones_hold_four_mzis() {
        // In a 16×16 Clements rectangle every zone holds exactly
        // 2 columns × 2 rows of devices; edge zones may hold fewer where the
        // odd-column rows run out.
        let m = mesh(16, 3);
        let zones = ZoneGrid::for_mesh(&m);
        let mut counts = Vec::new();
        for (_, members) in zones.iter() {
            counts.push(members.len());
        }
        assert!(counts.iter().all(|&c| (2..=4).contains(&c)));
        let fours = counts.iter().filter(|&&c| c == 4).count();
        assert!(
            fours >= zones.n_zones() / 2,
            "most zones should be full 2×2"
        );
    }

    #[test]
    fn zone_of_each_matches_members() {
        let m = mesh(8, 4);
        let zones = ZoneGrid::for_mesh(&m);
        let lookup = zones.zone_of_each(m.n_mzis());
        for ((zr, zc), members) in zones.iter() {
            for &idx in members {
                assert_eq!(lookup[idx], (zr, zc));
            }
        }
    }
}
