//! Reck triangular mesh decomposition (PRL 1994) — the historical
//! alternative to the Clements rectangle, cited as ref. \[3\] of the paper.
//!
//! The Reck scheme nulls the strictly lower triangle of `U` row by row from
//! the bottom using only right-multiplications `U ← U·T⁻¹`, so no
//! diagonal-absorption step is needed: `U = D · T_q ⋯ T_1` directly, with
//! the first-applied rotation the first device the light meets.
//!
//! The resulting mesh has the same `N(N−1)/2` MZI count as Clements but
//! roughly double the depth (`2N − 3` columns), which makes it a useful
//! baseline for topology-sensitivity ablations: longer paths accumulate
//! more loss and the asymmetric depth distributes uncertainty differently.

use crate::clements::{apply_right_tinv, solve_right_null, wrap_phase};
use crate::mesh::UnitaryMesh;
use crate::MeshError;
use spnn_linalg::CMatrix;

/// Decomposes a unitary matrix into a Reck triangular MZI mesh.
///
/// # Errors
///
/// - [`MeshError::NotSquare`] if `u` is rectangular.
/// - [`MeshError::NotUnitary`] if `‖uᴴu − I‖_max > 1e-8`.
///
/// # Example
///
/// ```
/// use spnn_mesh::reck;
/// use spnn_linalg::random::haar_unitary;
/// use rand::SeedableRng;
///
/// let u = haar_unitary(5, &mut rand::rngs::StdRng::seed_from_u64(8));
/// let mesh = reck::decompose(&u)?;
/// assert_eq!(mesh.n_mzis(), 10);
/// assert!(mesh.matrix().approx_eq(&u, 1e-10));
/// # Ok::<(), spnn_mesh::MeshError>(())
/// ```
pub fn decompose(u: &CMatrix) -> Result<UnitaryMesh, MeshError> {
    let (rows, cols) = u.shape();
    if rows != cols {
        return Err(MeshError::NotSquare { rows, cols });
    }
    let n = rows;
    let gram = u.adjoint().mul(u);
    let dev = (&gram - &CMatrix::identity(n)).max_abs();
    if dev > 1e-8 {
        return Err(MeshError::NotUnitary { deviation: dev });
    }
    if n == 1 {
        return Ok(UnitaryMesh::from_physical_order(
            1,
            &[],
            vec![u[(0, 0)].arg()],
        ));
    }

    let mut w = u.clone();
    let mut ops: Vec<(usize, f64, f64)> = Vec::new();
    // Null the lower triangle from the bottom row up, left to right inside
    // each row. Each nulling mixes columns (j, j+1).
    for row in (1..n).rev() {
        for j in 0..row {
            let (theta, phi) = solve_right_null(&w, row, j);
            apply_right_tinv(&mut w, j, theta, phi);
            ops.push((j, theta, phi));
        }
    }

    let output_phases: Vec<f64> = w.diag().iter().map(|z| z.arg()).collect();
    let physical: Vec<(usize, f64, f64)> = ops
        .into_iter()
        .map(|(m, t, p)| (m, t, wrap_phase(p)))
        .collect();
    Ok(UnitaryMesh::from_physical_order(
        n,
        &physical,
        output_phases,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnn_linalg::random::haar_unitary;

    #[test]
    fn decompose_reconstruct_small_sizes() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in 2..=8 {
            let u = haar_unitary(n, &mut rng);
            let mesh = decompose(&u).expect("decompose");
            assert_eq!(mesh.n_mzis(), n * (n - 1) / 2, "MZI count n={n}");
            assert!(mesh.matrix().approx_eq(&u, 1e-9), "reconstruction n={n}");
        }
    }

    #[test]
    fn decompose_reconstruct_16() {
        let mut rng = StdRng::seed_from_u64(22);
        let u = haar_unitary(16, &mut rng);
        let mesh = decompose(&u).unwrap();
        assert!(mesh.matrix().approx_eq(&u, 1e-8));
    }

    #[test]
    fn reck_is_deeper_than_clements() {
        let mut rng = StdRng::seed_from_u64(23);
        for n in [5usize, 8, 12] {
            let u = haar_unitary(n, &mut rng);
            let reck_mesh = decompose(&u).unwrap();
            let clem_mesh = crate::clements::decompose(&u).unwrap();
            assert_eq!(reck_mesh.n_mzis(), clem_mesh.n_mzis());
            assert!(
                reck_mesh.n_columns() > clem_mesh.n_columns(),
                "Reck depth {} vs Clements {} for n={n}",
                reck_mesh.n_columns(),
                clem_mesh.n_columns()
            );
            assert_eq!(reck_mesh.n_columns(), 2 * n - 3, "triangular depth n={n}");
        }
    }

    #[test]
    fn decompose_identity() {
        let u = CMatrix::identity(6);
        let mesh = decompose(&u).unwrap();
        assert!(mesh.matrix().approx_eq(&u, 1e-10));
    }

    #[test]
    fn rejects_non_unitary() {
        let a = CMatrix::from_real_rows(&[&[2.0, 0.0], &[0.0, 1.0]]);
        assert!(matches!(decompose(&a), Err(MeshError::NotUnitary { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = CMatrix::zeros(2, 3);
        assert!(matches!(decompose(&a), Err(MeshError::NotSquare { .. })));
    }
}
