//! MZI-mesh synthesis and physical simulation (layer level, paper §III-C).
//!
//! A unitary multiplier in an SPNN is a rectangular array of Mach–Zehnder
//! interferometers. This crate provides:
//!
//! - [`clements`]: the Clements *et al.* (Optica 2016) rectangular
//!   decomposition used by the paper for every unitary multiplier, plus the
//!   diagonal-absorption step that commutes residual phases to the outputs.
//! - [`reck`]: the Reck *et al.* (PRL 1994) triangular decomposition, kept
//!   as a topology baseline for robustness ablations.
//! - [`mesh`]: [`mesh::UnitaryMesh`] — the physical array: per-MZI tuned
//!   phases `(θ, φ)` with grid placement, ideal and *perturbed* matrix
//!   evaluation (each MZI can be replaced by a faulty device model from
//!   `spnn-photonics`).
//! - [`diagonal`]: the Σ line of terminated MZIs with the global
//!   amplification `β` (paper §II-B).
//! - [`rvd`]: the relative-variation-distance figure of merit (Fig. 3).
//! - [`zones`]: 2×2-MZI zone partitioning used by EXP 2 (Fig. 5).
//!
//! # Example
//!
//! ```
//! use spnn_mesh::clements;
//! use spnn_linalg::random::haar_unitary;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let u = haar_unitary(5, &mut rng);
//! let mesh = clements::decompose(&u)?;
//! assert_eq!(mesh.n_mzis(), 10); // N(N−1)/2 for N = 5
//! assert!(mesh.matrix().approx_eq(&u, 1e-10));
//! # Ok::<(), spnn_mesh::MeshError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clements;
pub mod diagonal;
pub mod mesh;
pub mod reck;
pub mod rvd;
pub mod zones;

pub use diagonal::DiagonalLine;
pub use mesh::{MeshMzi, UnitaryMesh};
pub use zones::ZoneGrid;

use std::error::Error;
use std::fmt;

/// Errors produced during mesh synthesis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MeshError {
    /// The input matrix is not square.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// The input matrix is not unitary within the synthesis tolerance.
    NotUnitary {
        /// Deviation `‖AᴴA − I‖_max` that was measured.
        deviation: f64,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::NotSquare { rows, cols } => {
                write!(
                    f,
                    "mesh synthesis requires a square matrix, got {rows}x{cols}"
                )
            }
            MeshError::NotUnitary { deviation } => {
                write!(f, "matrix is not unitary (deviation {deviation:.3e})")
            }
        }
    }
}

impl Error for MeshError {}
