//! Relative-variation distance (RVD) — the paper's layer-level figure of
//! merit (§III-C, Fig. 3):
//!
//! ```text
//! RVD(U, Ũ) = Σₘ Σₙ |Uₘₙ − Ũₘₙ| / |Ũₘₙ|
//! ```
//!
//! where `Ũ` is the intended unitary and `U` the one realized by the
//! (possibly faulty) mesh.

use spnn_linalg::CMatrix;

/// Elements of the intended matrix with modulus below this threshold are
/// skipped — the ratio diverges there and Haar-random unitaries have no
/// structural zeros, so this only guards numerical dust.
pub const RVD_EPS: f64 = 1e-12;

/// Computes `RVD(realized, intended)`.
///
/// # Panics
///
/// Panics if the shapes differ.
///
/// # Example
///
/// ```
/// use spnn_mesh::rvd::rvd;
/// use spnn_linalg::CMatrix;
///
/// let a = CMatrix::identity(3);
/// assert_eq!(rvd(&a, &a), 0.0);
/// ```
pub fn rvd(realized: &CMatrix, intended: &CMatrix) -> f64 {
    realized.relative_variation_distance(intended, RVD_EPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnn_linalg::random::haar_unitary;
    use spnn_linalg::C64;

    #[test]
    fn rvd_zero_iff_identical() {
        let mut rng = StdRng::seed_from_u64(31);
        let u = haar_unitary(5, &mut rng);
        assert_eq!(rvd(&u, &u), 0.0);
    }

    #[test]
    fn rvd_positive_for_different_matrices() {
        let mut rng = StdRng::seed_from_u64(32);
        let u = haar_unitary(5, &mut rng);
        let v = haar_unitary(5, &mut rng);
        assert!(rvd(&v, &u) > 0.1);
    }

    #[test]
    fn rvd_scales_with_perturbation_size() {
        let mut rng = StdRng::seed_from_u64(33);
        let u = haar_unitary(4, &mut rng);
        let bump = |eps: f64| {
            let mut w = u.clone();
            w[(0, 0)] += C64::new(eps, 0.0);
            rvd(&w, &u)
        };
        let small = bump(1e-4);
        let large = bump(1e-2);
        assert!(
            large > small * 50.0,
            "RVD should grow ~linearly: {small} {large}"
        );
    }

    #[test]
    fn rvd_symmetric_in_magnitude_not_definition() {
        // RVD is *not* symmetric (denominator uses the intended matrix);
        // document that behaviour.
        let a = CMatrix::from_real_rows(&[&[2.0]]);
        let b = CMatrix::from_real_rows(&[&[1.0]]);
        assert!((rvd(&a, &b) - 1.0).abs() < 1e-15); // |2−1|/1
        assert!((rvd(&b, &a) - 0.5).abs() < 1e-15); // |1−2|/2
    }
}
