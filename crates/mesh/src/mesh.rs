//! The physical MZI array: tuned parameters, grid placement, and ideal /
//! perturbed matrix evaluation.
//!
//! A [`UnitaryMesh`] is an ordered list of [`MeshMzi`]s plus a screen of
//! output phases (the diagonal `D` left over by the Clements factorization
//! `U = D·ΠT`). Light traverses columns in increasing order; MZIs in the
//! same column act on disjoint mode pairs and therefore commute.
//!
//! The mesh knows nothing about *how* it was synthesized — Clements and Reck
//! decompositions both produce this type — and everything about how to
//! evaluate itself, including with per-MZI faulty device models, which is
//! what the uncertainty experiments need.

use spnn_linalg::{CMatrix, C64};
use spnn_photonics::Mzi;

/// One MZI inside a mesh: grid placement plus tuned phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshMzi {
    /// Physical column (0 = first encountered by the light).
    pub column: usize,
    /// Upper mode index: the device couples modes `top` and `top + 1`.
    pub top: usize,
    /// Internal phase θ (radians), tuned at design/training time.
    pub theta: f64,
    /// Input phase φ (radians), tuned at design/training time.
    pub phi: f64,
}

impl MeshMzi {
    /// The ideal device model for this mesh site.
    pub fn device(&self) -> Mzi {
        Mzi::ideal(self.theta, self.phi)
    }

    /// Grid row of the MZI (each row holds devices two modes apart):
    /// `top / 2` — used by the EXP 2 zone partition.
    pub fn grid_row(&self) -> usize {
        self.top / 2
    }
}

/// A rectangular (or triangular) array of MZIs realizing an `n × n` unitary.
///
/// # Example
///
/// ```
/// use spnn_mesh::clements;
/// use spnn_linalg::random::haar_unitary;
/// use rand::SeedableRng;
///
/// let u = haar_unitary(4, &mut rand::rngs::StdRng::seed_from_u64(1));
/// let mesh = clements::decompose(&u)?;
/// // Perturb one device and measure the deviation:
/// let noisy = mesh.matrix_with(|idx, site| {
///     let dev = site.device();
///     if idx == 0 { dev.with_phase_errors(0.1, 0.0) } else { dev }
/// });
/// assert!(!noisy.approx_eq(&u, 1e-3));
/// # Ok::<(), spnn_mesh::MeshError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UnitaryMesh {
    n: usize,
    mzis: Vec<MeshMzi>,
    output_phases: Vec<f64>,
}

impl UnitaryMesh {
    /// Assembles a mesh from raw parts, assigning physical columns greedily
    /// (each device is placed in the earliest column where both of its modes
    /// are free). `ts` is the device list in *physical order* — the order in
    /// which light meets them; `output_phases` is the output phase screen.
    ///
    /// # Panics
    ///
    /// Panics if `output_phases.len() != n`, if any device's `top + 1 >= n`,
    /// or if `n == 0`.
    pub fn from_physical_order(
        n: usize,
        ts: &[(usize, f64, f64)],
        output_phases: Vec<f64>,
    ) -> Self {
        assert!(n > 0, "mesh size must be positive");
        assert_eq!(
            output_phases.len(),
            n,
            "output phase screen must have n entries"
        );
        let mut next_free = vec![0usize; n];
        let mut mzis = Vec::with_capacity(ts.len());
        for &(top, theta, phi) in ts {
            assert!(top + 1 < n, "MZI top mode {top} out of range for n = {n}");
            let column = next_free[top].max(next_free[top + 1]);
            next_free[top] = column + 1;
            next_free[top + 1] = column + 1;
            mzis.push(MeshMzi {
                column,
                top,
                theta,
                phi,
            });
        }
        Self {
            n,
            mzis,
            output_phases,
        }
    }

    /// Number of optical modes (the unitary is `n × n`).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The MZIs in physical order.
    #[inline]
    pub fn mzis(&self) -> &[MeshMzi] {
        &self.mzis
    }

    /// Number of MZIs (`N(N−1)/2` for a full Clements or Reck mesh).
    #[inline]
    pub fn n_mzis(&self) -> usize {
        self.mzis.len()
    }

    /// Number of tunable phase shifters: two per MZI (`θ` and `φ`).
    ///
    /// The output phase screen is *not* counted — this matches the paper's
    /// census of 1374 shifters for the 16-16-16-10 network.
    #[inline]
    pub fn n_phase_shifters(&self) -> usize {
        2 * self.mzis.len()
    }

    /// Number of physical columns (mesh depth).
    pub fn n_columns(&self) -> usize {
        self.mzis.iter().map(|m| m.column + 1).max().unwrap_or(0)
    }

    /// The output phase screen (the `D` of `U = D·ΠT`), applied after the
    /// last column. Treated as ideal in all of the paper's experiments.
    #[inline]
    pub fn output_phases(&self) -> &[f64] {
        &self.output_phases
    }

    /// The ideal transfer matrix of the whole mesh.
    pub fn matrix(&self) -> CMatrix {
        self.matrix_with(|_, site| site.device())
    }

    /// The transfer matrix with every mesh site replaced by the device the
    /// callback returns — the hook through which all uncertainty injection
    /// flows. The callback receives the site index (position in
    /// [`UnitaryMesh::mzis`]) and the site itself.
    pub fn matrix_with<F>(&self, device_at: F) -> CMatrix
    where
        F: FnMut(usize, &MeshMzi) -> Mzi,
    {
        let mut acc = CMatrix::identity(self.n);
        self.matrix_with_into(device_at, &mut acc);
        acc
    }

    /// [`UnitaryMesh::matrix_with`] written into an existing `n × n`
    /// matrix, avoiding the per-call allocation. `acc` is reset to the
    /// identity first, so its prior contents never influence the result —
    /// bit-identical to `matrix_with`. Monte-Carlo hot loops reuse one
    /// accumulator per mesh across iterations.
    ///
    /// # Panics
    ///
    /// Panics if `acc` is not `n × n`.
    pub fn matrix_with_into<F>(&self, mut device_at: F, acc: &mut CMatrix)
    where
        F: FnMut(usize, &MeshMzi) -> Mzi,
    {
        assert_eq!(acc.shape(), (self.n, self.n), "accumulator shape mismatch");
        acc.set_identity();
        for (idx, site) in self.mzis.iter().enumerate() {
            let t = device_at(idx, site).transfer_matrix();
            apply_two_mode(acc, site.top, &t);
        }
        // Output phase screen.
        for (mode, &phase) in self.output_phases.iter().enumerate() {
            if phase != 0.0 {
                let ph = C64::cis(phase);
                for c in 0..self.n {
                    acc[(mode, c)] *= ph;
                }
            }
        }
    }

    /// Propagates a field vector through the ideal mesh.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n`.
    pub fn forward(&self, input: &[C64]) -> Vec<C64> {
        self.forward_with(input, |_, site| site.device())
    }

    /// Propagates a field vector through the mesh with per-site device
    /// substitution (same contract as [`UnitaryMesh::matrix_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n`.
    pub fn forward_with<F>(&self, input: &[C64], mut device_at: F) -> Vec<C64>
    where
        F: FnMut(usize, &MeshMzi) -> Mzi,
    {
        assert_eq!(input.len(), self.n, "input length must equal mesh size");
        let mut field = input.to_vec();
        for (idx, site) in self.mzis.iter().enumerate() {
            let t = device_at(idx, site).transfer_matrix();
            let a = field[site.top];
            let b = field[site.top + 1];
            field[site.top] = t[(0, 0)] * a + t[(0, 1)] * b;
            field[site.top + 1] = t[(1, 0)] * a + t[(1, 1)] * b;
        }
        for (mode, &phase) in self.output_phases.iter().enumerate() {
            if phase != 0.0 {
                field[mode] *= C64::cis(phase);
            }
        }
        field
    }

    /// Sum of tuned phase magnitudes per site — a cheap proxy for the
    /// device-level susceptibility result of Fig. 2 (larger tuned phases ⇒
    /// larger relative deviation under the same relative error).
    pub fn phase_load(&self) -> Vec<f64> {
        self.mzis
            .iter()
            .map(|m| {
                m.theta.rem_euclid(std::f64::consts::TAU) + m.phi.rem_euclid(std::f64::consts::TAU)
            })
            .collect()
    }
}

/// Left-multiplies `acc` by the 2×2 block `t` embedded at modes
/// `(top, top+1)` — O(n) instead of a full matrix product.
fn apply_two_mode(acc: &mut CMatrix, top: usize, t: &CMatrix) {
    let n = acc.cols();
    for c in 0..n {
        let a = acc[(top, c)];
        let b = acc[(top + 1, c)];
        acc[(top, c)] = t[(0, 0)] * a + t[(0, 1)] * b;
        acc[(top + 1, c)] = t[(1, 0)] * a + t[(1, 1)] * b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnn_linalg::vector::norm_sq;

    fn two_mzi_mesh() -> UnitaryMesh {
        // Three modes, two MZIs: (0,1) then (1,2), no output phases.
        UnitaryMesh::from_physical_order(3, &[(0, 1.0, 0.5), (1, 2.0, 0.25)], vec![0.0; 3])
    }

    #[test]
    fn greedy_column_assignment() {
        let mesh = two_mzi_mesh();
        assert_eq!(mesh.mzis()[0].column, 0);
        assert_eq!(mesh.mzis()[1].column, 1); // shares mode 1 ⇒ next column
        assert_eq!(mesh.n_columns(), 2);

        // Disjoint modes share a column.
        let mesh =
            UnitaryMesh::from_physical_order(4, &[(0, 1.0, 0.0), (2, 1.0, 0.0)], vec![0.0; 4]);
        assert_eq!(mesh.mzis()[0].column, 0);
        assert_eq!(mesh.mzis()[1].column, 0);
        assert_eq!(mesh.n_columns(), 1);
    }

    #[test]
    fn matrix_matches_explicit_product() {
        let mesh = two_mzi_mesh();
        let t0 = Mzi::ideal(1.0, 0.5).transfer_matrix();
        let t1 = Mzi::ideal(2.0, 0.25).transfer_matrix();
        // Embed manually.
        let mut e0 = CMatrix::identity(3);
        e0.set_block(0, 0, &t0);
        let mut e1 = CMatrix::identity(3);
        e1.set_block(1, 1, &t1);
        let expect = e1.mul(&e0); // light passes e0 first ⇒ e1·e0
        assert!(mesh.matrix().approx_eq(&expect, 1e-13));
    }

    #[test]
    fn mesh_matrix_is_unitary() {
        let mesh = two_mzi_mesh();
        assert!(mesh.matrix().is_unitary(1e-12));
    }

    #[test]
    fn output_phases_apply_last() {
        let mesh = UnitaryMesh::from_physical_order(
            2,
            &[(0, 1.0, 0.5)],
            vec![std::f64::consts::FRAC_PI_2, 0.0],
        );
        let bare = UnitaryMesh::from_physical_order(2, &[(0, 1.0, 0.5)], vec![0.0; 2]);
        let with_d = mesh.matrix();
        let without = bare.matrix();
        for c in 0..2 {
            assert!(with_d[(0, c)].approx_eq(C64::i() * without[(0, c)], 1e-13));
            assert!(with_d[(1, c)].approx_eq(without[(1, c)], 1e-13));
        }
    }

    #[test]
    fn forward_matches_matrix_vector() {
        let mesh = two_mzi_mesh();
        let input = vec![C64::new(0.3, 0.1), C64::new(-0.5, 0.2), C64::new(0.0, 0.9)];
        let via_forward = mesh.forward(&input);
        let via_matrix = mesh.matrix().mul_vec(&input);
        for (a, b) in via_forward.iter().zip(via_matrix.iter()) {
            assert!(a.approx_eq(*b, 1e-13));
        }
    }

    #[test]
    fn forward_conserves_power() {
        let mesh = two_mzi_mesh();
        let input = vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0), C64::new(0.5, 0.5)];
        let out = mesh.forward(&input);
        assert!((norm_sq(&input) - norm_sq(&out)).abs() < 1e-12);
    }

    #[test]
    fn matrix_with_perturbation_differs() {
        let mesh = two_mzi_mesh();
        let ideal = mesh.matrix();
        let noisy = mesh.matrix_with(|idx, site| {
            let dev = site.device();
            if idx == 1 {
                dev.with_phase_errors(0.2, 0.0)
            } else {
                dev
            }
        });
        assert!(!ideal.approx_eq(&noisy, 1e-4));
        assert!(noisy.is_unitary(1e-12), "perturbed mesh still lossless");
    }

    #[test]
    fn phase_shifter_census() {
        let mesh = two_mzi_mesh();
        assert_eq!(mesh.n_mzis(), 2);
        assert_eq!(mesh.n_phase_shifters(), 4);
    }

    #[test]
    fn phase_load_reflects_tuned_phases() {
        let mesh = two_mzi_mesh();
        let load = mesh.phase_load();
        assert!((load[0] - 1.5).abs() < 1e-12);
        assert!((load[1] - 2.25).abs() < 1e-12);
    }

    #[test]
    fn grid_row_halves_top() {
        let m = MeshMzi {
            column: 0,
            top: 3,
            theta: 0.0,
            phi: 0.0,
        };
        assert_eq!(m.grid_row(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn top_out_of_range_panics() {
        let _ = UnitaryMesh::from_physical_order(2, &[(1, 0.0, 0.0)], vec![0.0; 2]);
    }

    #[test]
    #[should_panic(expected = "n entries")]
    fn wrong_phase_screen_panics() {
        let _ = UnitaryMesh::from_physical_order(2, &[(0, 0.0, 0.0)], vec![0.0; 3]);
    }
}
