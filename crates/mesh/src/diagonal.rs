//! The Σ line: singular values realized as terminated MZIs plus a global
//! amplification β (paper §II-B).
//!
//! An MZI with one input and one output terminated acts as a tunable
//! attenuator: its bar-path amplitude is `|T₁₁| = sin(θ/2) ≤ 1`. Arbitrary
//! (≥ 1) singular values therefore need a global optical gain, the paper's
//! `β` layer: `Σ = β · diag(sin(θᵢ/2))` with `θᵢ = 2·asin(sᵢ/β)` and `φᵢ`
//! chosen to cancel the residual phase `i·e^{iθᵢ/2}` of the bar path.
//!
//! Under uncertainty the attenuator MZIs deviate exactly like mesh MZIs
//! (their θ/φ shifters and both splitters are physical devices); EXP 1
//! perturbs them, EXP 2 holds them error-free (paper §III-D).

use spnn_linalg::{CMatrix, C64};
use spnn_photonics::Mzi;
use std::f64::consts::{FRAC_PI_2, TAU};

/// A line of terminated MZIs realizing `Σ/β`, plus the global gain `β`.
///
/// # Example
///
/// ```
/// use spnn_mesh::DiagonalLine;
///
/// let line = DiagonalLine::from_singular_values(&[3.0, 1.5, 0.0], 3, 3);
/// assert!((line.beta() - 3.0).abs() < 1e-12);
/// let m = line.matrix();
/// assert!((m[(0, 0)].re - 3.0).abs() < 1e-10);
/// assert!((m[(1, 1)].re - 1.5).abs() < 1e-10);
/// assert!(m[(2, 2)].abs() < 1e-10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalLine {
    out_dim: usize,
    in_dim: usize,
    beta: f64,
    thetas: Vec<f64>,
    phis: Vec<f64>,
}

impl DiagonalLine {
    /// Builds the line from non-negative singular values.
    ///
    /// `values.len()` must equal `min(out_dim, in_dim)`; `β` is set to the
    /// largest value (or 1 if all are zero) so every attenuation is
    /// realizable.
    ///
    /// # Panics
    ///
    /// Panics if a value is negative, if the length does not match, or if
    /// either dimension is zero.
    pub fn from_singular_values(values: &[f64], out_dim: usize, in_dim: usize) -> Self {
        assert!(out_dim > 0 && in_dim > 0, "dimensions must be positive");
        assert_eq!(
            values.len(),
            out_dim.min(in_dim),
            "need min(out, in) singular values"
        );
        assert!(
            values.iter().all(|&s| s >= 0.0),
            "singular values must be non-negative"
        );
        let max = values.iter().cloned().fold(0.0, f64::max);
        let beta = if max > 0.0 { max } else { 1.0 };
        let mut thetas = Vec::with_capacity(values.len());
        let mut phis = Vec::with_capacity(values.len());
        for &s in values {
            let ratio = (s / beta).clamp(0.0, 1.0);
            let theta = 2.0 * ratio.asin();
            // Bar amplitude is i·e^{iθ/2}·e^{iφ}·sin(θ/2); cancel the phase:
            let phi = (-(FRAC_PI_2 + theta / 2.0)).rem_euclid(TAU);
            thetas.push(theta);
            phis.push(phi);
        }
        Self {
            out_dim,
            in_dim,
            beta,
            thetas,
            phis,
        }
    }

    /// Rebuilds a line from previously tuned parameters — the persistence
    /// twin of [`DiagonalLine::from_singular_values`], used by the trained-
    /// context cache to reconstruct a stored photonic mapping bit for bit
    /// (`thetas`/`phis`/`beta` round-trip exactly through
    /// [`DiagonalLine::phases`] and [`DiagonalLine::beta`]).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero, the phase lists differ in length
    /// or do not hold `min(out_dim, in_dim)` entries, or any parameter is
    /// non-finite (a corrupted cache file must fail loudly here rather than
    /// poison every later Monte-Carlo sample).
    pub fn from_raw_parts(
        out_dim: usize,
        in_dim: usize,
        beta: f64,
        thetas: Vec<f64>,
        phis: Vec<f64>,
    ) -> Self {
        assert!(out_dim > 0 && in_dim > 0, "dimensions must be positive");
        assert_eq!(
            thetas.len(),
            out_dim.min(in_dim),
            "need min(out, in) attenuator phases"
        );
        assert_eq!(thetas.len(), phis.len(), "theta/phi length mismatch");
        assert!(
            beta.is_finite() && beta > 0.0,
            "beta must be finite and positive"
        );
        assert!(
            thetas.iter().chain(phis.iter()).all(|x| x.is_finite()),
            "phases must be finite"
        );
        Self {
            out_dim,
            in_dim,
            beta,
            thetas,
            phis,
        }
    }

    /// Output dimension of `Σ` (rows).
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Input dimension of `Σ` (columns).
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// The global amplification `β` (largest singular value).
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of attenuator MZIs on the line.
    #[inline]
    pub fn n_mzis(&self) -> usize {
        self.thetas.len()
    }

    /// Number of tunable phase shifters (two per attenuator MZI).
    #[inline]
    pub fn n_phase_shifters(&self) -> usize {
        2 * self.thetas.len()
    }

    /// Tuned `(θ, φ)` of attenuator `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_mzis()`.
    pub fn phases(&self, i: usize) -> (f64, f64) {
        (self.thetas[i], self.phis[i])
    }

    /// The ideal device model for attenuator `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_mzis()`.
    pub fn device(&self, i: usize) -> Mzi {
        Mzi::ideal(self.thetas[i], self.phis[i])
    }

    /// The ideal `out_dim × in_dim` matrix `β · diag(bar amplitudes)` —
    /// equal to `diag(s)` by construction.
    pub fn matrix(&self) -> CMatrix {
        self.matrix_with(|i, dev| {
            let _ = i;
            dev
        })
    }

    /// The matrix with each attenuator replaced by the device the callback
    /// returns — the uncertainty-injection hook (same pattern as
    /// [`crate::mesh::UnitaryMesh::matrix_with`]).
    pub fn matrix_with<F>(&self, device_at: F) -> CMatrix
    where
        F: FnMut(usize, Mzi) -> Mzi,
    {
        let mut m = CMatrix::zeros(self.out_dim, self.in_dim);
        self.matrix_with_into(device_at, &mut m);
        m
    }

    /// [`DiagonalLine::matrix_with`] written into an existing
    /// `out_dim × in_dim` matrix, avoiding the per-call allocation. `m` is
    /// zeroed first, so its prior contents never influence the result —
    /// bit-identical to `matrix_with`.
    ///
    /// # Panics
    ///
    /// Panics if `m` has the wrong shape.
    pub fn matrix_with_into<F>(&self, mut device_at: F, m: &mut CMatrix)
    where
        F: FnMut(usize, Mzi) -> Mzi,
    {
        assert_eq!(
            m.shape(),
            (self.out_dim, self.in_dim),
            "matrix shape mismatch"
        );
        m.fill(C64::zero());
        for i in 0..self.thetas.len() {
            let dev = device_at(i, self.device(i));
            m[(i, i)] = dev.bar_amplitude().scale(self.beta);
        }
    }

    /// Applies the line to a field vector (length `in_dim`), producing
    /// `out_dim` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim`.
    pub fn forward(&self, input: &[C64]) -> Vec<C64> {
        assert_eq!(input.len(), self.in_dim, "input length must equal in_dim");
        let mut out = vec![C64::zero(); self.out_dim];
        for i in 0..self.thetas.len() {
            out[i] = self.device(i).bar_amplitude().scale(self.beta) * input[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_parts_round_trip_is_exact() {
        let line = DiagonalLine::from_singular_values(&[2.5, 1.0, 0.25], 3, 4);
        let (thetas, phis): (Vec<f64>, Vec<f64>) =
            (0..line.n_mzis()).map(|i| line.phases(i)).unzip();
        let rebuilt =
            DiagonalLine::from_raw_parts(line.out_dim(), line.in_dim(), line.beta(), thetas, phis);
        assert_eq!(rebuilt, line);
        // Bit-identical matrices, not just approximately equal.
        let a = line.matrix();
        let b = rebuilt.matrix();
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(a[(r, c)].re.to_bits(), b[(r, c)].re.to_bits());
                assert_eq!(a[(r, c)].im.to_bits(), b[(r, c)].im.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn raw_parts_reject_non_finite_phases() {
        let _ = DiagonalLine::from_raw_parts(1, 1, 1.0, vec![f64::NAN], vec![0.0]);
    }

    #[test]
    fn square_reconstruction() {
        let s = [2.5, 1.0, 0.25];
        let line = DiagonalLine::from_singular_values(&s, 3, 3);
        let m = line.matrix();
        for (i, &v) in s.iter().enumerate() {
            assert!(m[(i, i)].approx_eq(C64::from(v), 1e-10), "s[{i}]");
        }
        // Off-diagonals are zero.
        assert!(m[(0, 1)].abs() < 1e-15);
    }

    #[test]
    fn rectangular_shapes() {
        // Paper layer 3: 10 outputs, 16 inputs, 10 singular values.
        let s: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
        let line = DiagonalLine::from_singular_values(&s, 10, 16);
        let m = line.matrix();
        assert_eq!(m.shape(), (10, 16));
        for (i, &v) in s.iter().enumerate() {
            assert!(m[(i, i)].approx_eq(C64::from(v), 1e-10));
        }
        assert_eq!(line.n_mzis(), 10);
        assert_eq!(line.n_phase_shifters(), 20);
    }

    #[test]
    fn beta_is_max_singular_value() {
        let line = DiagonalLine::from_singular_values(&[0.5, 4.0, 2.0], 3, 3);
        assert!((line.beta() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn all_zero_values() {
        let line = DiagonalLine::from_singular_values(&[0.0, 0.0], 2, 2);
        assert_eq!(line.beta(), 1.0);
        let m = line.matrix();
        assert!(m.max_abs() < 1e-12);
    }

    #[test]
    fn attenuations_within_unit_interval() {
        let line = DiagonalLine::from_singular_values(&[3.0, 2.0, 0.1], 3, 3);
        for i in 0..3 {
            let (theta, _) = line.phases(i);
            assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&theta));
        }
    }

    #[test]
    fn perturbation_changes_matrix() {
        let line = DiagonalLine::from_singular_values(&[1.0, 0.5], 2, 2);
        let noisy = line.matrix_with(|i, dev| {
            if i == 0 {
                dev.with_phase_errors(0.3, 0.0)
            } else {
                dev
            }
        });
        assert!(!noisy[(0, 0)].approx_eq(C64::from(1.0), 1e-3));
        assert!(noisy[(1, 1)].approx_eq(C64::from(0.5), 1e-10));
    }

    #[test]
    fn forward_matches_matrix() {
        let line = DiagonalLine::from_singular_values(&[2.0, 1.0], 2, 3);
        let input = vec![C64::new(1.0, 1.0), C64::new(0.5, -0.5), C64::new(0.2, 0.0)];
        let via_fwd = line.forward(&input);
        let via_mat = line.matrix().mul_vec(&input);
        for (a, b) in via_fwd.iter().zip(via_mat.iter()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn phase_errors_leak_complex_amplitude() {
        // A θ error on an attenuator changes the magnitude; a φ error
        // rotates the phase — both corrupt the realized singular value.
        let line = DiagonalLine::from_singular_values(&[1.0], 1, 1);
        let with_phi_err = line.matrix_with(|_, dev| dev.with_phase_errors(0.0, 0.4));
        assert!((with_phi_err[(0, 0)].arg().abs() - 0.4).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_singular_value_panics() {
        let _ = DiagonalLine::from_singular_values(&[-1.0], 1, 1);
    }

    #[test]
    #[should_panic(expected = "min(out, in)")]
    fn wrong_count_panics() {
        let _ = DiagonalLine::from_singular_values(&[1.0], 2, 2);
    }
}
