//! Clements rectangular mesh decomposition (Optica 2016), the design used
//! by the paper for every unitary multiplier.
//!
//! Any `N × N` unitary `U` factors as `U = D · Π T_m(θ, φ)` where each
//! `T_m` is the transfer matrix (paper Eq. 1) of an MZI coupling modes
//! `(m, m+1)` and `D` is a diagonal phase screen. The algorithm
//! alternately annihilates anti-diagonals of `U` from the right (via
//! `U ← U·T⁻¹`) and from the left (via `U ← T·U`), then commutes the
//! leftover left-rotations through the diagonal so the physical mesh is a
//! pure feed-forward rectangle of `N(N−1)/2` MZIs followed by output phases.
//!
//! The MZI convention is exactly Eq. (1):
//! `T = i·e^{iθ/2}·[[e^{iφ}s, c], [e^{iφ}c, −s]]` with `s = sin(θ/2)`,
//! `c = cos(θ/2)` — verified against `spnn-photonics` in the tests.

use crate::mesh::UnitaryMesh;
use crate::MeshError;
use spnn_linalg::{CMatrix, C64};

/// Numerical tolerance below which matrix elements are treated as zero
/// during nulling.
const NULL_EPS: f64 = 1e-13;

/// Decomposes a unitary matrix into a Clements rectangular MZI mesh.
///
/// # Errors
///
/// - [`MeshError::NotSquare`] if `u` is rectangular.
/// - [`MeshError::NotUnitary`] if `‖uᴴu − I‖_max > 1e-8`.
///
/// # Example
///
/// ```
/// use spnn_mesh::clements;
/// use spnn_linalg::random::haar_unitary;
/// use rand::SeedableRng;
///
/// let u = haar_unitary(6, &mut rand::rngs::StdRng::seed_from_u64(3));
/// let mesh = clements::decompose(&u)?;
/// assert_eq!(mesh.n_mzis(), 15);
/// assert_eq!(mesh.n_columns(), 6);
/// assert!(mesh.matrix().approx_eq(&u, 1e-10));
/// # Ok::<(), spnn_mesh::MeshError>(())
/// ```
pub fn decompose(u: &CMatrix) -> Result<UnitaryMesh, MeshError> {
    let n = check_unitary(u)?;
    if n == 1 {
        return Ok(UnitaryMesh::from_physical_order(
            1,
            &[],
            vec![u[(0, 0)].arg()],
        ));
    }

    let mut w = u.clone();
    // (mode, θ, φ) lists in application order.
    let mut right_ops: Vec<(usize, f64, f64)> = Vec::new();
    let mut left_ops: Vec<(usize, f64, f64)> = Vec::new();

    for i in 1..n {
        if i % 2 == 1 {
            // Annihilate the anti-diagonal from the right: U ← U·T⁻¹.
            for j in 0..i {
                let row = n - 1 - j;
                let m = i - 1 - j; // columns (m, m+1)
                let (theta, phi) = solve_right_null(&w, row, m);
                apply_right_tinv(&mut w, m, theta, phi);
                right_ops.push((m, theta, phi));
            }
        } else {
            // Annihilate from the left: U ← T·U.
            for j in 1..=i {
                let row = n + j - i - 1;
                let col = j - 1;
                let m = row - 1; // rows (m, m+1)
                let (theta, phi) = solve_left_null(&w, m, col);
                apply_left_t(&mut w, m, theta, phi);
                left_ops.push((m, theta, phi));
            }
        }
    }

    // W is now diagonal: T_L… · U · T_R…ᴴ = D.
    let mut diag: Vec<C64> = w.diag().iter().map(|z| z.unit_or_zero()).collect();
    for (i, d) in diag.iter_mut().enumerate() {
        if d.abs() < 0.5 {
            // An exactly-zero diagonal cannot occur for a unitary input, but
            // guard against pathological rounding.
            *d = C64::one();
            debug_assert!(false, "degenerate diagonal at {i}");
        }
    }

    // U = T_l1ᴴ … T_lkᴴ · D · T_rq … T_r1.
    // Commute each left rotation through D: Tᴴ(θ,φ)·D = D′·T(θ′,φ′).
    // Processing from the innermost (last applied) left op emits devices in
    // physical order after the right ops.
    let mut physical: Vec<(usize, f64, f64)> = right_ops;
    for &(m, theta, phi) in left_ops.iter().rev() {
        let (theta2, phi2, d1, d2) = absorb_into_diagonal(theta, phi, diag[m], diag[m + 1]);
        diag[m] = d1;
        diag[m + 1] = d2;
        physical.push((m, theta2, wrap_phase(phi2)));
    }

    let output_phases: Vec<f64> = diag.iter().map(|d| d.arg()).collect();
    let physical: Vec<(usize, f64, f64)> = physical
        .into_iter()
        .map(|(m, t, p)| (m, t, wrap_phase(p)))
        .collect();
    Ok(UnitaryMesh::from_physical_order(
        n,
        &physical,
        output_phases,
    ))
}

/// Validates shape and unitarity; returns the dimension.
fn check_unitary(u: &CMatrix) -> Result<usize, MeshError> {
    let (rows, cols) = u.shape();
    if rows != cols {
        return Err(MeshError::NotSquare { rows, cols });
    }
    let gram = u.adjoint().mul(u);
    let dev = (&gram - &CMatrix::identity(rows)).max_abs();
    if dev > 1e-8 {
        return Err(MeshError::NotUnitary { deviation: dev });
    }
    Ok(rows)
}

/// Wraps a phase into `[0, 2π)` — the physical phase-shifter setting range.
pub(crate) fn wrap_phase(phi: f64) -> f64 {
    phi.rem_euclid(std::f64::consts::TAU)
}

/// Solves `(U·Tᴴ)[row, m] = 0`, i.e. `e^{−iφ}·sin(θ/2)·U[row,m] +
/// cos(θ/2)·U[row,m+1] = 0`, for `θ ∈ [0, π]` and `φ`.
pub(crate) fn solve_right_null(w: &CMatrix, row: usize, m: usize) -> (f64, f64) {
    let a = w[(row, m)];
    let b = w[(row, m + 1)];
    if a.abs() < NULL_EPS {
        if b.abs() < NULL_EPS {
            (0.0, 0.0)
        } else {
            (std::f64::consts::PI, 0.0)
        }
    } else {
        let ratio = -b / a; // e^{−iφ}·tan(θ/2) = ratio
        (2.0 * ratio.abs().atan(), -ratio.arg())
    }
}

/// Solves `(T·U)[m+1, col] = 0`, i.e. `e^{iφ}·cos(θ/2)·U[m,col] −
/// sin(θ/2)·U[m+1,col] = 0`, for `θ ∈ [0, π]` and `φ`.
pub(crate) fn solve_left_null(w: &CMatrix, m: usize, col: usize) -> (f64, f64) {
    let a = w[(m, col)];
    let b = w[(m + 1, col)];
    if b.abs() < NULL_EPS {
        if a.abs() < NULL_EPS {
            (0.0, 0.0)
        } else {
            (std::f64::consts::PI, 0.0)
        }
    } else {
        let ratio = a / b; // tan(θ/2)·e^{−iφ} = ratio
        (2.0 * ratio.abs().atan(), -ratio.arg())
    }
}

/// The Eq. (1) MZI entries for `(θ, φ)` as four scalars (row-major).
fn t_entries(theta: f64, phi: f64) -> (C64, C64, C64, C64) {
    let half = theta / 2.0;
    let (s, c) = (half.sin(), half.cos());
    let pre = C64::i() * C64::cis(half);
    let e_p = C64::cis(phi);
    (
        pre * e_p.scale(s),
        pre.scale(c),
        pre * e_p.scale(c),
        pre.scale(-s),
    )
}

/// `U ← U · Tᴴ(m; θ, φ)` (mixes columns `m`, `m+1`).
pub(crate) fn apply_right_tinv(w: &mut CMatrix, m: usize, theta: f64, phi: f64) {
    let (t11, t12, t21, t22) = t_entries(theta, phi);
    let n = w.rows();
    for r in 0..n {
        let a = w[(r, m)];
        let b = w[(r, m + 1)];
        // (U·Tᴴ)[r,m] = a·conj(t11) + b·conj(t12); [r,m+1] = a·conj(t21) + b·conj(t22)
        w[(r, m)] = a * t11.conj() + b * t12.conj();
        w[(r, m + 1)] = a * t21.conj() + b * t22.conj();
    }
}

/// `U ← T(m; θ, φ) · U` (mixes rows `m`, `m+1`).
pub(crate) fn apply_left_t(w: &mut CMatrix, m: usize, theta: f64, phi: f64) {
    let (t11, t12, t21, t22) = t_entries(theta, phi);
    let n = w.cols();
    for c in 0..n {
        let a = w[(m, c)];
        let b = w[(m + 1, c)];
        w[(m, c)] = t11 * a + t12 * b;
        w[(m + 1, c)] = t21 * a + t22 * b;
    }
}

/// Commutes an inverse rotation through a diagonal:
/// `Tᴴ(θ, φ)·diag(d₁, d₂) = diag(d₁′, d₂′)·T(θ′, φ′)`.
///
/// Returns `(θ′, φ′, d₁′, d₂′)`. Both `d` inputs must be unit-modulus; the
/// outputs are renormalized to unit modulus.
fn absorb_into_diagonal(theta: f64, phi: f64, d1: C64, d2: C64) -> (f64, f64, C64, C64) {
    let (t11, t12, t21, t22) = t_entries(theta, phi);
    // M = Tᴴ · diag(d1, d2)
    let m11 = t11.conj() * d1;
    let m12 = t21.conj() * d2;
    let m21 = t12.conj() * d1;
    let m22 = t22.conj() * d2;

    let s = m11.abs();
    let c = m12.abs();
    let theta2 = 2.0 * s.atan2(c);
    let eps = 1e-12;
    let phi2 = if s > eps && c > eps {
        (m11 * m12.conj()).arg()
    } else {
        0.0
    };
    let pre = C64::i() * C64::cis(theta2 / 2.0);
    let (d1p, d2p) = if c > eps {
        (m12 / (pre.scale(c)), m21 / (pre * C64::cis(phi2).scale(c)))
    } else {
        (m11 / (pre * C64::cis(phi2).scale(s)), -m22 / (pre.scale(s)))
    };
    (theta2, phi2, d1p.unit_or_zero(), d2p.unit_or_zero())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnn_linalg::random::haar_unitary;

    #[test]
    fn absorption_identity() {
        // Tᴴ·D must equal D′·T′ exactly.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            use rand::Rng;
            let theta: f64 = rng.gen::<f64>() * std::f64::consts::PI;
            let phi: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
            let d1 = C64::cis(rng.gen::<f64>() * std::f64::consts::TAU);
            let d2 = C64::cis(rng.gen::<f64>() * std::f64::consts::TAU);
            let (theta2, phi2, d1p, d2p) = absorb_into_diagonal(theta, phi, d1, d2);

            let (t11, t12, t21, t22) = t_entries(theta, phi);
            let lhs = [
                t11.conj() * d1,
                t21.conj() * d2,
                t12.conj() * d1,
                t22.conj() * d2,
            ];
            let (u11, u12, u21, u22) = t_entries(theta2, phi2);
            let rhs = [d1p * u11, d1p * u12, d2p * u21, d2p * u22];
            for (l, r) in lhs.iter().zip(rhs.iter()) {
                assert!(l.approx_eq(*r, 1e-10), "absorption mismatch: {l} vs {r}");
            }
        }
    }

    #[test]
    fn decompose_reconstruct_small_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 2..=8 {
            let u = haar_unitary(n, &mut rng);
            let mesh = decompose(&u).expect("decompose");
            assert_eq!(mesh.n_mzis(), n * (n - 1) / 2, "MZI count for n={n}");
            assert!(
                mesh.matrix().approx_eq(&u, 1e-9),
                "reconstruction failed for n={n}"
            );
        }
    }

    #[test]
    fn decompose_reconstruct_paper_sizes() {
        // The paper's meshes are 16×16 and 10×10.
        let mut rng = StdRng::seed_from_u64(2);
        for n in [10, 16] {
            let u = haar_unitary(n, &mut rng);
            let mesh = decompose(&u).expect("decompose");
            assert_eq!(mesh.n_mzis(), n * (n - 1) / 2);
            assert!(mesh.matrix().approx_eq(&u, 1e-8), "n={n}");
        }
    }

    #[test]
    fn rectangular_depth_is_n_columns() {
        // The Clements layout is maximally compact: depth N.
        let mut rng = StdRng::seed_from_u64(3);
        for n in [4, 5, 8, 16] {
            let u = haar_unitary(n, &mut rng);
            let mesh = decompose(&u).unwrap();
            assert_eq!(mesh.n_columns(), n, "depth for n={n}");
        }
    }

    #[test]
    fn decompose_identity_gives_cross_free_mesh() {
        // Identity: all MZIs land on θ = π (bar state)… or θ = 0 patterns;
        // what matters is exact reconstruction.
        let u = CMatrix::identity(5);
        let mesh = decompose(&u).unwrap();
        assert!(mesh.matrix().approx_eq(&u, 1e-10));
    }

    #[test]
    fn decompose_permutation_matrix() {
        // A hard case: lots of exact zeros during nulling.
        let n = 5;
        let mut u = CMatrix::zeros(n, n);
        for i in 0..n {
            u[(i, (i + 2) % n)] = C64::one();
        }
        let mesh = decompose(&u).unwrap();
        assert!(mesh.matrix().approx_eq(&u, 1e-10));
    }

    #[test]
    fn decompose_diagonal_phase_matrix() {
        let n = 4;
        let u = CMatrix::from_diag(&[C64::cis(0.3), C64::cis(-1.2), C64::cis(2.9), C64::cis(0.0)]);
        let mesh = decompose(&u).unwrap();
        assert!(mesh.matrix().approx_eq(&u, 1e-10));
        let _ = n;
    }

    #[test]
    fn decompose_1x1() {
        let u = CMatrix::from_diag(&[C64::cis(1.0)]);
        let mesh = decompose(&u).unwrap();
        assert_eq!(mesh.n_mzis(), 0);
        assert!(mesh.matrix().approx_eq(&u, 1e-12));
    }

    #[test]
    fn rejects_non_square() {
        let a = CMatrix::zeros(3, 4);
        assert!(matches!(decompose(&a), Err(MeshError::NotSquare { .. })));
    }

    #[test]
    fn rejects_non_unitary() {
        let a = CMatrix::from_real_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        assert!(matches!(decompose(&a), Err(MeshError::NotUnitary { .. })));
    }

    #[test]
    fn phases_are_wrapped() {
        let mut rng = StdRng::seed_from_u64(9);
        let u = haar_unitary(6, &mut rng);
        let mesh = decompose(&u).unwrap();
        for site in mesh.mzis() {
            assert!((0.0..std::f64::consts::TAU).contains(&site.theta) || site.theta == 0.0);
            assert!((0.0..std::f64::consts::TAU).contains(&site.phi));
            assert!(site.theta <= std::f64::consts::PI + 1e-12, "θ beyond π");
        }
    }

    #[test]
    fn mesh_16_has_120_mzis_and_240_shifters() {
        // Building block of the paper's 1374-shifter census.
        let mut rng = StdRng::seed_from_u64(10);
        let u = haar_unitary(16, &mut rng);
        let mesh = decompose(&u).unwrap();
        assert_eq!(mesh.n_mzis(), 120);
        assert_eq!(mesh.n_phase_shifters(), 240);
    }
}
