//! Property-based tests for mesh synthesis and simulation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spnn_linalg::random::{gaussian_vector, haar_unitary};
use spnn_linalg::vector::norm_sq;
use spnn_mesh::rvd::rvd;
use spnn_mesh::{clements, reck, DiagonalLine, ZoneGrid};
use spnn_photonics::UncertaintySpec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn clements_and_reck_agree_on_the_matrix(n in 2usize..7, seed in 0u64..400) {
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed));
        let c = clements::decompose(&u).unwrap();
        let r = reck::decompose(&u).unwrap();
        prop_assert!(c.matrix().approx_eq(&r.matrix(), 1e-8));
        prop_assert_eq!(c.n_mzis(), r.n_mzis());
    }

    #[test]
    fn forward_equals_matrix_application(n in 2usize..7, seed in 0u64..400) {
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed));
        let mesh = clements::decompose(&u).unwrap();
        let x = gaussian_vector(n, &mut StdRng::seed_from_u64(seed ^ 1));
        let via_forward = mesh.forward(&x);
        let via_matrix = mesh.matrix().mul_vec(&x);
        for (a, b) in via_forward.iter().zip(via_matrix.iter()) {
            prop_assert!(a.approx_eq(*b, 1e-9));
        }
    }

    #[test]
    fn mesh_conserves_power_for_any_input(n in 2usize..7, seed in 0u64..400) {
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed));
        let mesh = clements::decompose(&u).unwrap();
        let x = gaussian_vector(n, &mut StdRng::seed_from_u64(seed ^ 2));
        let y = mesh.forward(&x);
        prop_assert!((norm_sq(&x) - norm_sq(&y)).abs() < 1e-8 * norm_sq(&x).max(1.0));
    }

    #[test]
    fn rvd_grows_with_sigma_in_expectation(seed in 0u64..100) {
        // Average over a few draws so the property is stable.
        let u = haar_unitary(5, &mut StdRng::seed_from_u64(seed));
        let mesh = clements::decompose(&u).unwrap();
        let intended = mesh.matrix();
        let avg_rvd = |sigma: f64| -> f64 {
            let spec = UncertaintySpec::both(sigma);
            (0..8)
                .map(|k| {
                    let mut rng = StdRng::seed_from_u64(seed * 31 + k);
                    let m = mesh.matrix_with(|_, s| spec.perturb_mzi(&s.device(), &mut rng));
                    rvd(&m, &intended)
                })
                .sum::<f64>()
                / 8.0
        };
        let small = avg_rvd(0.01);
        let large = avg_rvd(0.1);
        prop_assert!(large > small, "RVD should grow with σ: {small} vs {large}");
    }

    #[test]
    fn zone_partition_is_exact_cover(n in 2usize..10, seed in 0u64..200) {
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed));
        let mesh = clements::decompose(&u).unwrap();
        let zones = ZoneGrid::for_mesh(&mesh);
        let mut count = 0;
        for (_, members) in zones.iter() {
            count += members.len();
        }
        prop_assert_eq!(count, mesh.n_mzis());
        let lookup = zones.zone_of_each(mesh.n_mzis());
        for (zr, zc) in lookup {
            prop_assert!(zr < zones.rows() && zc < zones.cols());
        }
    }

    #[test]
    fn diagonal_line_attenuations_never_exceed_beta(
        s in prop::collection::vec(0.0f64..5.0, 1..8),
    ) {
        let n = s.len();
        let line = DiagonalLine::from_singular_values(&s, n, n);
        let m = line.matrix();
        for i in 0..n {
            prop_assert!(m[(i, i)].abs() <= line.beta() + 1e-9);
        }
    }

    #[test]
    fn output_phase_screen_does_not_change_intensities(n in 2usize..6, seed in 0u64..200) {
        // The output D only rotates phases; photodetectors cannot see it.
        let u = haar_unitary(n, &mut StdRng::seed_from_u64(seed));
        let mesh = clements::decompose(&u).unwrap();
        let x = gaussian_vector(n, &mut StdRng::seed_from_u64(seed ^ 3));
        let y = mesh.forward(&x);
        // Strip the phase screen by dividing it out; intensities must match.
        let phases = mesh.output_phases();
        for (i, v) in y.iter().enumerate() {
            let stripped = *v * spnn_linalg::C64::cis(-phases[i]);
            prop_assert!((stripped.abs_sq() - v.abs_sq()).abs() < 1e-10);
        }
    }
}
