//! Synthetic MNIST-style digit dataset and the paper's shifted-FFT complex
//! feature pipeline.
//!
//! **Substitution notice** (see DESIGN.md §4): the original paper evaluates
//! on MNIST, whose files are not available in this offline environment. This
//! crate generates a *deterministic, seedable* 10-class handwritten-digit
//! substitute: each sample rasterizes a 5×7 stroke-template glyph into a
//! 28×28 grayscale image through a random affine transform (translation,
//! rotation, scale, shear), optional stroke thickening, intensity jitter and
//! Gaussian pixel noise. The classification problem has the same shape,
//! size and preprocessing as the paper's:
//!
//! 1. 28×28 real image → complex matrix,
//! 2. 2-D FFT → `fftshift` (paper: "shifted fast Fourier transform"),
//! 3. crop the central `k×k` of the spectrum (paper: k = 4),
//! 4. flatten to a `k²`-dimensional complex feature vector, normalized to
//!    unit optical power.
//!
//! # Example
//!
//! ```
//! use spnn_dataset::{DatasetConfig, SpnnDataset};
//!
//! let data = SpnnDataset::generate(&DatasetConfig {
//!     n_train: 100,
//!     n_test: 20,
//!     crop: 4,
//!     seed: 1,
//! });
//! assert_eq!(data.train_features.len(), 100);
//! assert_eq!(data.train_features[0].len(), 16);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod features;
pub mod generator;
pub mod glyphs;

pub use features::fft_features;
pub use generator::{GrayImage, ImageGenerator};

use spnn_linalg::C64;

/// Configuration for [`SpnnDataset::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetConfig {
    /// Number of training samples (class-balanced).
    pub n_train: usize,
    /// Number of test samples (class-balanced).
    pub n_test: usize,
    /// Side of the central spectrum crop (the paper uses 4 → 16 features).
    pub crop: usize,
    /// Master seed; the dataset is a pure function of this config.
    pub seed: u64,
}

impl Default for DatasetConfig {
    /// The paper's configuration: central 4×4 crop. Sample counts are
    /// scaled-down defaults suitable for tests; experiments override them.
    fn default() -> Self {
        Self {
            n_train: 2000,
            n_test: 500,
            crop: 4,
            seed: 0x5EED,
        }
    }
}

/// A ready-to-train dataset: complex FFT features plus labels.
#[derive(Debug, Clone)]
pub struct SpnnDataset {
    /// Training feature vectors (length `crop²` each).
    pub train_features: Vec<Vec<C64>>,
    /// Training labels in `0..10`.
    pub train_labels: Vec<usize>,
    /// Test feature vectors.
    pub test_features: Vec<Vec<C64>>,
    /// Test labels.
    pub test_labels: Vec<usize>,
}

impl SpnnDataset {
    /// Generates the dataset deterministically from the config.
    ///
    /// Train and test sets use disjoint RNG streams, so they never share
    /// samples; labels cycle `0..10` before shuffling, so classes are
    /// balanced to within one sample.
    pub fn generate(config: &DatasetConfig) -> Self {
        let generator = ImageGenerator::default();
        let (train_features, train_labels) = generate_split(
            &generator,
            config.n_train,
            config.crop,
            config.seed ^ 0xA11CE,
        );
        let (test_features, test_labels) =
            generate_split(&generator, config.n_test, config.crop, config.seed ^ 0xB0B);
        Self {
            train_features,
            train_labels,
            test_features,
            test_labels,
        }
    }

    /// Number of classes (always 10 digits).
    pub fn n_classes(&self) -> usize {
        10
    }

    /// Feature dimensionality (`crop²`).
    pub fn feature_dim(&self) -> usize {
        self.train_features.first().map_or(0, |f| f.len())
    }
}

fn generate_split(
    generator: &ImageGenerator,
    n: usize,
    crop: usize,
    seed: u64,
) -> (Vec<Vec<C64>>, Vec<usize>) {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut labels: Vec<usize> = (0..n).map(|i| i % 10).collect();
    labels.shuffle(&mut rng);
    let features = labels
        .iter()
        .map(|&digit| {
            let img = generator.render(digit, &mut rng);
            fft_features(&img, crop)
        })
        .collect();
    (features, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnn_linalg::vector::norm_sq;

    fn small() -> DatasetConfig {
        DatasetConfig {
            n_train: 60,
            n_test: 30,
            crop: 4,
            seed: 42,
        }
    }

    #[test]
    fn shapes_and_counts() {
        let d = SpnnDataset::generate(&small());
        assert_eq!(d.train_features.len(), 60);
        assert_eq!(d.train_labels.len(), 60);
        assert_eq!(d.test_features.len(), 30);
        assert_eq!(d.feature_dim(), 16);
        assert_eq!(d.n_classes(), 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SpnnDataset::generate(&small());
        let b = SpnnDataset::generate(&small());
        assert_eq!(a.train_labels, b.train_labels);
        for (x, y) in a.train_features[0].iter().zip(b.train_features[0].iter()) {
            assert_eq!(x, y);
        }
        let c = SpnnDataset::generate(&DatasetConfig {
            seed: 43,
            ..small()
        });
        assert_ne!(a.train_labels, c.train_labels);
    }

    #[test]
    fn classes_are_balanced() {
        let d = SpnnDataset::generate(&small());
        let mut counts = [0usize; 10];
        for &l in &d.train_labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 6), "{counts:?}");
    }

    #[test]
    fn features_are_unit_power() {
        let d = SpnnDataset::generate(&small());
        for f in d.train_features.iter().take(10) {
            assert!((norm_sq(f) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn train_test_streams_differ() {
        let d = SpnnDataset::generate(&small());
        // The first train and test samples of the same digit should not be
        // bit-identical.
        let digit = d.train_labels[0];
        let test_idx = d.test_labels.iter().position(|&l| l == digit).unwrap();
        let same = d.train_features[0]
            .iter()
            .zip(d.test_features[test_idx].iter())
            .all(|(a, b)| a == b);
        assert!(!same);
    }

    #[test]
    fn nearest_centroid_separates_classes() {
        // The synthetic problem must be learnable: a trivial nearest-centroid
        // classifier on the 16-dim complex features should beat chance by a
        // wide margin.
        let d = SpnnDataset::generate(&DatasetConfig {
            n_train: 400,
            n_test: 100,
            crop: 4,
            seed: 7,
        });
        let dim = d.feature_dim();
        let mut centroids = vec![vec![C64::zero(); dim]; 10];
        let mut counts = [0usize; 10];
        for (f, &l) in d.train_features.iter().zip(d.train_labels.iter()) {
            for (c, x) in centroids[l].iter_mut().zip(f.iter()) {
                *c += *x;
            }
            counts[l] += 1;
        }
        for (c, &n) in centroids.iter_mut().zip(counts.iter()) {
            for x in c.iter_mut() {
                *x = x.scale(1.0 / n as f64);
            }
        }
        let mut correct = 0;
        for (f, &l) in d.test_features.iter().zip(d.test_labels.iter()) {
            let mut best = (f64::INFINITY, 0);
            for (k, c) in centroids.iter().enumerate() {
                let dist: f64 = f
                    .iter()
                    .zip(c.iter())
                    .map(|(a, b)| (*a - *b).abs_sq())
                    .sum();
                if dist < best.0 {
                    best = (dist, k);
                }
            }
            if best.1 == l {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.test_labels.len() as f64;
        assert!(acc > 0.5, "nearest-centroid accuracy only {acc}");
    }
}
