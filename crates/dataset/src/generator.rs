//! Procedural 28×28 digit-image renderer.
//!
//! Each call to [`ImageGenerator::render`] draws one digit through a random
//! affine transform (rotation, anisotropic scale, shear, translation) with
//! optional stroke dilation, intensity jitter and additive Gaussian pixel
//! noise — a deterministic, seedable stand-in for handwriting variability.

use crate::glyphs::{dilate, glyph, GLYPH_H, GLYPH_W};
use rand::Rng;
use spnn_linalg::random::gaussian;

/// Image side in pixels (matches MNIST).
pub const IMAGE_SIDE: usize = 28;

/// A grayscale image with values in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    side: usize,
    pixels: Vec<f64>,
}

impl GrayImage {
    /// Creates an all-black square image.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn black(side: usize) -> Self {
        assert!(side > 0, "image side must be positive");
        Self {
            side,
            pixels: vec![0.0; side * side],
        }
    }

    /// Image side length in pixels.
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Pixel at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.side && col < self.side, "pixel out of bounds");
        self.pixels[row * self.side + col]
    }

    /// Sets pixel `(row, col)`, clamping the value into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.side && col < self.side, "pixel out of bounds");
        self.pixels[row * self.side + col] = value.clamp(0.0, 1.0);
    }

    /// The raw pixel slice, row-major.
    #[inline]
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// Total ink (sum of pixel values).
    pub fn total_intensity(&self) -> f64 {
        self.pixels.iter().sum()
    }

    /// Renders the image as ASCII art (for debugging and examples).
    pub fn to_ascii(&self) -> String {
        let ramp: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity(self.side * (self.side + 1));
        for r in 0..self.side {
            for c in 0..self.side {
                let v = self.get(r, c);
                let idx = ((v * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1);
                out.push(ramp[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// Ranges of the random rendering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageGenerator {
    /// Maximum |rotation| in radians.
    pub max_rotation: f64,
    /// Scale range as (min, max) multiplier of the base glyph size.
    pub scale_range: (f64, f64),
    /// Maximum |shear| factor.
    pub max_shear: f64,
    /// Maximum |translation| in pixels along each axis.
    pub max_shift: f64,
    /// Probability of stroke dilation (thicker pen).
    pub dilate_prob: f64,
    /// Ink intensity range as (min, max).
    pub intensity_range: (f64, f64),
    /// Additive Gaussian pixel-noise standard deviation.
    pub noise_sigma: f64,
}

impl Default for ImageGenerator {
    fn default() -> Self {
        Self {
            max_rotation: 0.22,
            scale_range: (0.85, 1.15),
            max_shear: 0.18,
            max_shift: 2.5,
            dilate_prob: 0.35,
            intensity_range: (0.75, 1.0),
            noise_sigma: 0.04,
        }
    }
}

impl ImageGenerator {
    /// Renders one randomized 28×28 image of `digit`.
    ///
    /// # Panics
    ///
    /// Panics if `digit > 9`.
    pub fn render<R: Rng + ?Sized>(&self, digit: usize, rng: &mut R) -> GrayImage {
        let mut bitmap = glyph(digit);
        if rng.gen::<f64>() < self.dilate_prob {
            bitmap = dilate(&bitmap);
        }

        // Random affine parameters.
        let angle = (rng.gen::<f64>() * 2.0 - 1.0) * self.max_rotation;
        let (smin, smax) = self.scale_range;
        let scale_x = smin + rng.gen::<f64>() * (smax - smin);
        let scale_y = smin + rng.gen::<f64>() * (smax - smin);
        let shear = (rng.gen::<f64>() * 2.0 - 1.0) * self.max_shear;
        let dx = (rng.gen::<f64>() * 2.0 - 1.0) * self.max_shift;
        let dy = (rng.gen::<f64>() * 2.0 - 1.0) * self.max_shift;
        let (imin, imax) = self.intensity_range;
        let ink = imin + rng.gen::<f64>() * (imax - imin);

        // Base glyph cell size: the digit occupies ~18×18 px of the 28×28
        // canvas before random scaling.
        let cell = 18.0 / GLYPH_H as f64;
        let (sin, cos) = angle.sin_cos();
        let center = IMAGE_SIDE as f64 / 2.0;
        let gx_c = GLYPH_W as f64 / 2.0;
        let gy_c = GLYPH_H as f64 / 2.0;

        let mut img = GrayImage::black(IMAGE_SIDE);
        // Inverse mapping with 2×2 supersampling for soft edges.
        const SUB: usize = 2;
        for row in 0..IMAGE_SIDE {
            for col in 0..IMAGE_SIDE {
                let mut acc = 0.0;
                for sr in 0..SUB {
                    for sc in 0..SUB {
                        let py = row as f64 + (sr as f64 + 0.5) / SUB as f64 - 0.5;
                        let px = col as f64 + (sc as f64 + 0.5) / SUB as f64 - 0.5;
                        // Pixel → centered canvas coordinates.
                        let cx = px - center - dx;
                        let cy = py - center - dy;
                        // Undo rotation.
                        let rx = cos * cx + sin * cy;
                        let ry = -sin * cx + cos * cy;
                        // Undo shear (x' = x + shear·y).
                        let ux = rx - shear * ry;
                        let uy = ry;
                        // Undo scale and cell size → glyph coordinates.
                        let gx = ux / (cell * scale_x) + gx_c;
                        let gy = uy / (cell * scale_y) + gy_c;
                        if gx >= 0.0 && gy >= 0.0 {
                            let (gxi, gyi) = (gx as usize, gy as usize);
                            if gxi < GLYPH_W && gyi < GLYPH_H && bitmap[gyi][gxi] {
                                acc += 1.0;
                            }
                        }
                    }
                }
                let coverage = acc / (SUB * SUB) as f64;
                if coverage > 0.0 {
                    img.set(row, col, coverage * ink);
                }
            }
        }

        // Additive Gaussian noise.
        if self.noise_sigma > 0.0 {
            for row in 0..IMAGE_SIDE {
                for col in 0..IMAGE_SIDE {
                    let v = img.get(row, col) + gaussian(rng) * self.noise_sigma;
                    img.set(row, col, v);
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rendered_image_has_ink_in_the_middle() {
        let gen = ImageGenerator::default();
        let mut rng = StdRng::seed_from_u64(1);
        for d in 0..10 {
            let img = gen.render(d, &mut rng);
            assert_eq!(img.side(), IMAGE_SIDE);
            let total = img.total_intensity();
            assert!(total > 10.0, "digit {d} almost empty: {total}");
            // Center 14×14 carries most of the ink.
            let mut center_ink = 0.0;
            for r in 7..21 {
                for c in 7..21 {
                    center_ink += img.get(r, c);
                }
            }
            assert!(center_ink / total > 0.4, "digit {d} not centered");
        }
    }

    #[test]
    fn deterministic_given_rng_state() {
        let gen = ImageGenerator::default();
        let a = gen.render(3, &mut StdRng::seed_from_u64(9));
        let b = gen.render(3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn samples_of_same_digit_vary() {
        let gen = ImageGenerator::default();
        let mut rng = StdRng::seed_from_u64(10);
        let a = gen.render(5, &mut rng);
        let b = gen.render(5, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn pixels_stay_in_unit_interval() {
        let gen = ImageGenerator {
            noise_sigma: 0.5, // extreme noise still clamps
            ..ImageGenerator::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let img = gen.render(7, &mut rng);
        assert!(img.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn noiseless_render_is_clean() {
        let gen = ImageGenerator {
            noise_sigma: 0.0,
            ..ImageGenerator::default()
        };
        let mut rng = StdRng::seed_from_u64(12);
        let img = gen.render(1, &mut rng);
        // Background is exactly zero without noise.
        let corner = img.get(0, 0) + img.get(0, 27) + img.get(27, 0) + img.get(27, 27);
        assert_eq!(corner, 0.0);
    }

    #[test]
    fn ascii_rendering_shape() {
        let gen = ImageGenerator::default();
        let mut rng = StdRng::seed_from_u64(13);
        let art = gen.render(0, &mut rng).to_ascii();
        assert_eq!(art.lines().count(), IMAGE_SIDE);
        assert!(art.lines().all(|l| l.len() == IMAGE_SIDE));
    }

    #[test]
    fn image_accessors() {
        let mut img = GrayImage::black(4);
        img.set(1, 2, 0.5);
        assert_eq!(img.get(1, 2), 0.5);
        img.set(1, 2, 7.0);
        assert_eq!(img.get(1, 2), 1.0, "clamps high");
        img.set(1, 2, -1.0);
        assert_eq!(img.get(1, 2), 0.0, "clamps low");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_pixel_panics() {
        let img = GrayImage::black(4);
        let _ = img.get(4, 0);
    }
}
