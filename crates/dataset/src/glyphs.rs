//! 5×7 stroke templates for the ten digits.
//!
//! These are classic dot-matrix glyphs; the [`crate::generator`] warps them
//! with random affine transforms so every rendered sample is unique, giving
//! the intra-class variability a handwriting dataset needs.

/// Glyph width in cells.
pub const GLYPH_W: usize = 5;
/// Glyph height in cells.
pub const GLYPH_H: usize = 7;

/// Returns the 5×7 bitmap of a digit, row-major, `true` = ink.
///
/// # Panics
///
/// Panics if `digit > 9`.
pub fn glyph(digit: usize) -> [[bool; GLYPH_W]; GLYPH_H] {
    assert!(digit <= 9, "digit must be 0..=9");
    let rows: [&str; GLYPH_H] = match digit {
        0 => [
            ".###.", "#...#", "#..##", "#.#.#", "##..#", "#...#", ".###.",
        ],
        1 => [
            "..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###.",
        ],
        2 => [
            ".###.", "#...#", "....#", "...#.", "..#..", ".#...", "#####",
        ],
        3 => [
            ".###.", "#...#", "....#", "..##.", "....#", "#...#", ".###.",
        ],
        4 => [
            "...#.", "..##.", ".#.#.", "#..#.", "#####", "...#.", "...#.",
        ],
        5 => [
            "#####", "#....", "####.", "....#", "....#", "#...#", ".###.",
        ],
        6 => [
            ".###.", "#....", "#....", "####.", "#...#", "#...#", ".###.",
        ],
        7 => [
            "#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#...",
        ],
        8 => [
            ".###.", "#...#", "#...#", ".###.", "#...#", "#...#", ".###.",
        ],
        _ => [
            ".###.", "#...#", "#...#", ".####", "....#", "....#", ".###.",
        ],
    };
    let mut out = [[false; GLYPH_W]; GLYPH_H];
    for (r, row) in rows.iter().enumerate() {
        for (c, ch) in row.bytes().enumerate() {
            out[r][c] = ch == b'#';
        }
    }
    out
}

/// Morphological dilation: a cell is ink if it or any 4-neighbour is ink.
/// Models stroke-thickness variation across "writers".
pub fn dilate(glyph: &[[bool; GLYPH_W]; GLYPH_H]) -> [[bool; GLYPH_W]; GLYPH_H] {
    let mut out = *glyph;
    for r in 0..GLYPH_H {
        for c in 0..GLYPH_W {
            if glyph[r][c] {
                continue;
            }
            let up = r > 0 && glyph[r - 1][c];
            let down = r + 1 < GLYPH_H && glyph[r + 1][c];
            let left = c > 0 && glyph[r][c - 1];
            let right = c + 1 < GLYPH_W && glyph[r][c + 1];
            out[r][c] = up || down || left || right;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_digits_have_ink() {
        for d in 0..10 {
            let g = glyph(d);
            let ink = g.iter().flatten().filter(|&&b| b).count();
            assert!(ink >= 7, "digit {d} too sparse ({ink} cells)");
            assert!(ink <= 25, "digit {d} too dense ({ink} cells)");
        }
    }

    #[test]
    fn digits_are_pairwise_distinct() {
        for a in 0..10 {
            for b in (a + 1)..10 {
                let ga = glyph(a);
                let gb = glyph(b);
                let diff = ga
                    .iter()
                    .flatten()
                    .zip(gb.iter().flatten())
                    .filter(|(x, y)| x != y)
                    .count();
                assert!(diff >= 3, "digits {a} and {b} differ in only {diff} cells");
            }
        }
    }

    #[test]
    fn dilation_is_monotone_and_grows() {
        for d in 0..10 {
            let g = glyph(d);
            let fat = dilate(&g);
            for r in 0..GLYPH_H {
                for c in 0..GLYPH_W {
                    assert!(!g[r][c] || fat[r][c], "dilation lost ink");
                }
            }
            let before = g.iter().flatten().filter(|&&b| b).count();
            let after = fat.iter().flatten().filter(|&&b| b).count();
            assert!(after > before, "digit {d} did not thicken");
        }
    }

    #[test]
    #[should_panic(expected = "0..=9")]
    fn out_of_range_digit_panics() {
        let _ = glyph(10);
    }
}
