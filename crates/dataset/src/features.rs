//! The paper's feature pipeline (§III-D): shifted 2-D FFT → central crop →
//! complex feature vector.
//!
//! "To convert the 28×28 = 784 dimensional real-valued images … to
//! complex-valued vectors, we consider the shifted fast Fourier transform of
//! each image … To compress the feature vector, we consider the values
//! within \[a\] 4×4 region at the center of the frequency spectrum."
//!
//! The low-frequency center of the shifted spectrum carries most of the
//! image energy, which is why a 4×4 crop (16 complex values) retains enough
//! information — the paper reports only a 6.77-point accuracy drop versus
//! the full 784-dimensional spectrum.

use crate::generator::GrayImage;
use spnn_linalg::fft::{fft2, fftshift, Direction};
use spnn_linalg::{CMatrix, C64};

/// Computes the complex feature vector of an image: 2-D FFT, `fftshift`,
/// central `crop × crop` block, flattened row-major and normalized to unit
/// L2 norm (constant optical input power).
///
/// # Panics
///
/// Panics if `crop` is zero or exceeds the image side.
///
/// # Example
///
/// ```
/// use spnn_dataset::{fft_features, GrayImage};
///
/// let mut img = GrayImage::black(28);
/// img.set(14, 14, 1.0);
/// let f = fft_features(&img, 4);
/// assert_eq!(f.len(), 16);
/// ```
pub fn fft_features(image: &GrayImage, crop: usize) -> Vec<C64> {
    let side = image.side();
    assert!(crop > 0 && crop <= side, "crop must be in 1..=side");

    let complex_img = CMatrix::from_fn(side, side, |r, c| C64::from(image.get(r, c)));
    let spectrum = fftshift(&fft2(&complex_img, Direction::Forward));
    let start = side / 2 - crop / 2;
    let block = spectrum.block(start, start, crop, crop);

    let mut features = block.into_vec();
    let norm = spnn_linalg::vector::norm(&features);
    if norm > f64::MIN_POSITIVE {
        for f in &mut features {
            *f = *f / norm;
        }
    }
    features
}

/// The full flattened shifted spectrum (784 complex features for a 28×28
/// image) — the paper's uncompressed baseline encoding.
pub fn full_spectrum_features(image: &GrayImage) -> Vec<C64> {
    fft_features(image, image.side())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ImageGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnn_linalg::fft::dft_naive;
    use spnn_linalg::vector::norm_sq;

    #[test]
    fn feature_count_is_crop_squared() {
        let img = GrayImage::black(28);
        for crop in [1usize, 2, 4, 8, 28] {
            // All-black image gives zero vector (norm guard path).
            assert_eq!(fft_features(&img, crop).len(), crop * crop);
        }
    }

    #[test]
    fn unit_norm_for_nonzero_images() {
        let gen = ImageGenerator::default();
        let mut rng = StdRng::seed_from_u64(20);
        let img = gen.render(4, &mut rng);
        let f = fft_features(&img, 4);
        assert!((norm_sq(&f) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zero_image_gives_zero_features() {
        let img = GrayImage::black(28);
        let f = fft_features(&img, 4);
        assert!(f.iter().all(|z| z.abs() == 0.0));
    }

    #[test]
    fn dc_component_lands_in_crop_center() {
        // A constant image has all spectral energy at DC, which fftshift
        // moves to (14, 14); the 4×4 crop starting at 12 covers it at (2,2).
        let mut img = GrayImage::black(28);
        for r in 0..28 {
            for c in 0..28 {
                img.set(r, c, 0.5);
            }
        }
        let f = fft_features(&img, 4);
        // Feature index (2,2) → 2*4+2 = 10 holds everything.
        for (i, z) in f.iter().enumerate() {
            if i == 10 {
                assert!((z.abs() - 1.0).abs() < 1e-10, "DC magnitude {}", z.abs());
            } else {
                assert!(z.abs() < 1e-10, "leak at {i}: {}", z.abs());
            }
        }
    }

    #[test]
    fn matches_naive_dft_pipeline() {
        // Cross-check the whole pipeline against an O(n⁴) direct DFT.
        let gen = ImageGenerator::default();
        let mut rng = StdRng::seed_from_u64(21);
        let img = gen.render(2, &mut rng);
        let n = img.side();

        // Naive 2-D DFT.
        let mut rows_t = Vec::with_capacity(n);
        for r in 0..n {
            let row: Vec<C64> = (0..n).map(|c| C64::from(img.get(r, c))).collect();
            rows_t.push(dft_naive(&row, Direction::Forward));
        }
        let mut full = CMatrix::zeros(n, n);
        for c in 0..n {
            let col: Vec<C64> = (0..n).map(|r| rows_t[r][c]).collect();
            let t = dft_naive(&col, Direction::Forward);
            for (r, z) in t.into_iter().enumerate() {
                full[(r, c)] = z;
            }
        }
        let shifted = fftshift(&full);
        let start = n / 2 - 2;
        let mut expect = shifted.block(start, start, 4, 4).into_vec();
        let norm = spnn_linalg::vector::norm(&expect);
        for e in &mut expect {
            *e = *e / norm;
        }

        let got = fft_features(&img, 4);
        for (a, b) in got.iter().zip(expect.iter()) {
            assert!(a.approx_eq(*b, 1e-8), "{a} vs {b}");
        }
    }

    #[test]
    fn full_spectrum_has_784_features() {
        let gen = ImageGenerator::default();
        let mut rng = StdRng::seed_from_u64(22);
        let img = gen.render(9, &mut rng);
        assert_eq!(full_spectrum_features(&img).len(), 784);
    }

    #[test]
    fn translation_changes_phase_not_center_magnitude_much() {
        // Fourier shift theorem: translating the digit mostly rotates the
        // phases of low-frequency coefficients; magnitudes move less. This
        // is why complex features (not just magnitudes) matter.
        let gen = ImageGenerator {
            noise_sigma: 0.0,
            max_shift: 0.0,
            max_rotation: 0.0,
            max_shear: 0.0,
            scale_range: (1.0, 1.0),
            dilate_prob: 0.0,
            ..ImageGenerator::default()
        };
        let mut rng = StdRng::seed_from_u64(23);
        let img = gen.render(3, &mut rng);
        // Manual 2-px translation.
        let mut shifted_img = GrayImage::black(28);
        for r in 0..26 {
            for c in 0..26 {
                shifted_img.set(r + 2, c + 2, img.get(r, c));
            }
        }
        let a = fft_features(&img, 4);
        let b = fft_features(&shifted_img, 4);
        // Magnitude spectra are close…
        let mag_dist: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x.abs() - y.abs()).abs())
            .sum();
        // …while the complex vectors differ appreciably (phases rotated).
        let vec_dist: f64 = a.iter().zip(b.iter()).map(|(x, y)| (*x - *y).abs()).sum();
        assert!(
            mag_dist < 0.5 * vec_dist,
            "mag {mag_dist} vs vec {vec_dist}"
        );
    }

    #[test]
    #[should_panic(expected = "crop")]
    fn oversized_crop_panics() {
        let img = GrayImage::black(8);
        let _ = fft_features(&img, 9);
    }
}
