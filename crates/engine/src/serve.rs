//! `spnn serve` — a long-lived scenario service that streams Monte-Carlo
//! results as they are computed.
//!
//! The service wraps the engine's streaming driver
//! ([`crate::runner::run_scenario_streaming_with`]) in a small,
//! dependency-free HTTP front-end ([`crate::http`]): clients `POST` a
//! scenario spec (the same `.scn` text `spnn run` takes) and receive
//! **NDJSON** — one JSON object per line — with every sweep point's row
//! pushed the moment it completes. One process-lifetime
//! [`ContextCache`] is shared by all requests, so repeat scenarios skip
//! training entirely, and concurrent identical requests train **once**
//! (the cache serializes in-flight training per fingerprint).
//!
//! With a row cache configured ([`EngineConfig::row_cache`]; the CLI
//! enables one by default — see `docs/row-cache.md`), finished sweep
//! points are also memoized **across requests**, and identical in-flight
//! `/run` bodies share one *execution*: the first request runs the
//! scenario, every concurrent duplicate subscribes to the same stream
//! and receives byte-identical output (counted by
//! `spnn_rowcache_dedup_total`, with current fan-out in the
//! `spnn_rowcache_dedup_subscribers` gauge).
//!
//! # Endpoints
//!
//! | method, path | behavior |
//! |---|---|
//! | `POST /run` | body = scenario spec text; streams NDJSON events |
//! | `POST /run?format=csv` | same, streaming CSV rows (curl-friendly) |
//! | `POST /shard?shards=K&index=I` | worker endpoint: run one shard, return its [`crate::shard::PartialReport`] JSON |
//! | `GET /healthz` | liveness, uptime, version, role, run/shard counters |
//! | `GET /cache/stats` | trained-context cache counters and location |
//! | `GET /metrics` | this server's registry in Prometheus text format |
//!
//! # Observability
//!
//! Every server owns a **private** [`crate::metrics::MetricsRegistry`]
//! (created at bind time, exposed via [`Server::metrics`]), so embedded
//! and test servers never share counters. `GET /metrics` renders it:
//! request counts/latency/in-flight, run and shard outcomes, the cache's
//! counters (the same atomics `/cache/stats` reads — see
//! [`ContextCache::register_metrics`]), engine phase timers, and — in
//! coordinator mode — per-worker dispatch latency and merge progress.
//! Each request additionally emits one structured access-log line on
//! stderr (see [`crate::trace`]; `--log-json` switches it to JSON).
//! The full catalog lives in `docs/observability.md`.
//!
//! Invalid specs are rejected *before* any work starts with `400` and a
//! JSON body carrying the parser's line-numbered message.
//!
//! # Coordinator mode
//!
//! With [`ServeConfig::remote_workers`] non-empty (CLI:
//! `spnn serve --workers-from FILE`), `POST /run` no longer sweeps
//! in-process: the service dispatches one shard per worker over
//! [`crate::exec::RemoteExecutor`] (`POST /shard` on each worker),
//! merges partials **as they arrive** through
//! [`crate::shard::MergeState`], and streams each row the moment its
//! prefix coverage is decidable — the stream is byte-identical to the
//! in-process one, because both paths emit the same [`StreamEvent`]s
//! with the same values. A worker failing mid-run is retried on another
//! worker transparently. `POST /shard` works in either mode, so
//! coordinators can be layered.
//!
//! # Graceful shutdown
//!
//! After [`crate::exec::install_signal_handlers`] (the CLI installs them
//! for `spnn serve`), SIGTERM/SIGINT stops the accept loop, lets
//! in-flight streams finish, cancels outstanding remote shard dispatches
//! (their streams end with an `error` event), joins the worker pool, and
//! returns from [`Server::run`] — a second signal exits immediately.
//! [`Server::cancel_token`] gives embedders the same lever
//! programmatically.
//!
//! # The NDJSON event stream
//!
//! A successful `POST /run` answers `200` with
//! `Content-Type: application/x-ndjson` and a close-delimited body (no
//! chunked framing — the stream ends when the server closes the
//! connection). Events, in order:
//!
//! ```text
//! {"event":"started","scenario":"fig4","total_points":54}
//! {"event":"topology","topology":"clements","software_accuracy":0.94,"nominal_accuracy":0.93}
//! {"event":"row","index":0,"topology":"clements","labels":[["mode","both"],["sigma","0"]],
//!  "mean_accuracy":0.93,"std_dev":0,"moe95":0,"iterations":60,"stopped_early":false}
//! ...
//! {"event":"done","scenario":"fig4","rows":54}
//! ```
//!
//! Floats are emitted in Rust's shortest-round-trip decimal form, so
//! [`assemble_report`] recovers every value **bit-exactly**: a report
//! assembled from the stream renders byte-for-byte identically
//! (`to_json` / `to_csv`) to the `spnn run` report for the same spec —
//! the batch driver *is* the streaming driver with a no-op observer.
//! A run that fails after the head was sent (e.g. a mapping error) ends
//! the stream with `{"event":"error","message":…}` instead of `done`.
//!
//! `docs/serving.md` is the operator's manual: curl examples, error
//! codes, concurrency and determinism semantics.

use crate::cache::ContextCache;
use crate::exec::{run_distributed, CancelToken, ExecContext, RemoteExecutor};
use crate::http::{read_request, HttpError, Request, Response};
use crate::json::{self, Json};
use crate::metrics::{self, Counter, Gauge, MetricsRegistry};
use crate::report::{csv_header, csv_row, label_keys};
use crate::runner::{
    run_scenario_shard_with, run_scenario_streaming_with, EngineConfig, EngineReport, StreamEvent,
    SweepRow, TopologySummary,
};
use crate::spec::ScenarioSpec;
use crate::tevent;
use crate::trace::Level;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How the service runs. Like [`EngineConfig`], nothing here may change
/// results — only capacity, placement, and logging.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Connection-handling worker threads (each runs at most one
    /// scenario at a time; the Monte-Carlo sweep inside a request is
    /// additionally parallelized per [`EngineConfig::threads`]).
    pub workers: usize,
    /// Engine execution knobs applied to every request.
    /// `engine.cache_dir` seeds the service's process-lifetime
    /// [`ContextCache`].
    pub engine: EngineConfig,
    /// Remote worker base URLs (`http://host:port`). Empty (the
    /// default) serves every `POST /run` in-process; non-empty turns the
    /// service into a **coordinator** that dispatches one shard per
    /// worker and merges partials as they arrive (see the module docs).
    pub remote_workers: Vec<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            engine: EngineConfig::default(),
            remote_workers: Vec::new(),
        }
    }
}

/// Run counters, served by `GET /healthz`.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    started: u64,
    completed: u64,
    failed: u64,
    shards_completed: u64,
    shards_failed: u64,
}

/// Identity of an in-flight `/run` execution: the exact request body plus
/// the stream format. Requests with equal keys produce byte-identical
/// streams, so they can share one execution.
type RunKey = (Vec<u8>, u8);

/// The shared stream buffer of one in-flight `/run` execution: the
/// leader appends each emitted line, subscribers replay and then follow.
struct RunBuffer {
    /// Every line emitted so far, in stream order.
    lines: Vec<String>,
    /// `true` once the execution ended (successfully or not).
    done: bool,
    /// The execution outcome, meaningful once `done`.
    ok: bool,
}

/// One in-flight `/run` execution being fanned out to every request with
/// the same [`RunKey`]. The leader only ever appends and subscribers only
/// ever read, so a slow or disconnected subscriber cannot affect the
/// leader or its peers.
struct InflightRun {
    buffer: Mutex<RunBuffer>,
    cv: Condvar,
}

impl InflightRun {
    fn new() -> Self {
        InflightRun {
            buffer: Mutex::new(RunBuffer {
                lines: Vec::new(),
                done: false,
                ok: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// The buffer, poison-proof: a panicking leader must not wedge its
    /// subscribers (the buffer is always structurally valid — appends
    /// and flag flips cannot tear).
    fn lock_buffer(&self) -> MutexGuard<'_, RunBuffer> {
        self.buffer.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn push_line(&self, line: &str) {
        self.lock_buffer().lines.push(line.to_string());
        self.cv.notify_all();
    }

    /// Marks the execution finished and releases every subscriber. The
    /// first call wins; later calls (the leader's cleanup guard) are
    /// no-ops.
    fn finish(&self, ok: bool) {
        let mut buf = self.lock_buffer();
        if !buf.done {
            buf.done = true;
            buf.ok = ok;
        }
        drop(buf);
        self.cv.notify_all();
    }
}

/// Removes the leader's in-flight map entry when its request ends — and,
/// should the leader die between registering and finishing, releases
/// waiting subscribers with a failed outcome so none of them blocks
/// forever.
struct LeaderGuard<'a> {
    state: &'a ServerState,
    key: RunKey,
    run: Arc<InflightRun>,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        self.state
            .inflight_runs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&self.key);
        self.run.finish(false); // no-op after a clean finish
    }
}

struct ServerState {
    engine: EngineConfig,
    cache: ContextCache,
    workers: usize,
    remote_workers: Vec<String>,
    cancel: CancelToken,
    /// This server's private registry — `GET /metrics` renders it and
    /// every handle below is registered in it.
    metrics: MetricsRegistry,
    started_at: Instant,
    started: Counter,
    completed: Counter,
    failed: Counter,
    shards_completed: Counter,
    shards_failed: Counter,
    in_flight: Gauge,
    /// In-flight `/run` executions, for cross-request dedup: the first
    /// request with a given key leads, identical concurrent requests
    /// subscribe to its stream.
    inflight_runs: Mutex<HashMap<RunKey, Arc<InflightRun>>>,
    /// Requests served by subscribing to another request's execution.
    dedup_fanouts: Counter,
    /// Requests currently subscribed to another request's stream.
    dedup_subscribers: Gauge,
}

impl ServerState {
    fn counters(&self) -> Counters {
        Counters {
            started: self.started.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            shards_completed: self.shards_completed.get(),
            shards_failed: self.shards_failed.get(),
        }
    }

    /// `worker` when serving sweeps in-process, `coordinator` when
    /// dispatching to remote workers.
    fn role(&self) -> &'static str {
        if self.remote_workers.is_empty() {
            "worker"
        } else {
            "coordinator"
        }
    }
}

/// The scenario service: a bound listener plus its shared state.
///
/// [`Server::bind`] reserves the address (use port `0` to let the OS
/// pick — [`Server::local_addr`] reports the result); [`Server::run`]
/// then serves connections forever on a pool of
/// [`ServeConfig::workers`] threads.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("workers", &self.state.workers)
            .finish()
    }
}

impl Server {
    /// Binds the service to `addr` (e.g. `"127.0.0.1:7878"`, or port `0`
    /// for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let workers = config.workers.max(1);
        let mut engine = config.engine;
        let cache = ContextCache::new(engine.cache_dir.take());
        // A private registry per server: embedded and test servers must
        // not share counters. Routing the engine config's handle at it
        // makes every layer below (runner, executor, merge) record here.
        let registry = MetricsRegistry::new();
        engine.metrics = registry.clone();
        cache.register_metrics(&registry);
        if let Some(rc) = &engine.row_cache {
            rc.register_metrics(&registry);
        }
        let counter = |name: &str, help: &str| registry.counter(name, help, &[]);
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                engine,
                cache,
                workers,
                remote_workers: config
                    .remote_workers
                    .iter()
                    .map(|w| w.trim_end_matches('/').to_string())
                    .collect(),
                cancel: CancelToken::new(),
                started_at: Instant::now(),
                started: counter("spnn_runs_started_total", "Scenario runs accepted."),
                completed: counter("spnn_runs_completed_total", "Scenario runs completed."),
                failed: counter("spnn_runs_failed_total", "Scenario runs failed."),
                shards_completed: counter(
                    "spnn_shards_completed_total",
                    "Shard requests completed (worker role).",
                ),
                shards_failed: counter(
                    "spnn_shards_failed_total",
                    "Shard requests failed (worker role).",
                ),
                in_flight: registry.gauge(
                    "spnn_requests_in_flight",
                    "Requests currently being handled.",
                    &[],
                ),
                inflight_runs: Mutex::new(HashMap::new()),
                dedup_fanouts: counter(
                    "spnn_rowcache_dedup_total",
                    "Identical in-flight /run requests served by subscribing to \
                     another request's execution.",
                ),
                dedup_subscribers: registry.gauge(
                    "spnn_rowcache_dedup_subscribers",
                    "Requests currently subscribed to another request's /run stream.",
                    &[],
                ),
                metrics: registry,
            }),
        })
    }

    /// This server's private metrics registry — the one `GET /metrics`
    /// renders. Useful for embedders that want to scrape without HTTP.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.state.metrics
    }

    /// The server's cancellation token: cancelling it makes
    /// [`Server::run`] stop accepting, finish in-flight work, and
    /// return. The token also observes the process-wide shutdown flag
    /// set by [`crate::exec::install_signal_handlers`], so SIGTERM works
    /// the same way.
    pub fn cancel_token(&self) -> CancelToken {
        self.state.cancel.clone()
    }

    /// The address the service actually listens on.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until the listener fails persistently or the
    /// server is asked to shut down (see [`Server::cancel_token`]). Each
    /// accepted connection is handed to one of the worker threads; a
    /// worker handles one request per connection (`Connection: close`).
    ///
    /// Backpressure: the hand-off queue holds at most a few connections
    /// per worker; when every worker is busy the accept loop blocks, so
    /// excess clients wait in the kernel's accept backlog instead of
    /// accumulating open sockets (their read timeout starts only once a
    /// worker picks them up).
    ///
    /// Shutdown: once the cancel token fires (programmatically, or via
    /// SIGTERM/SIGINT after [`crate::exec::install_signal_handlers`])
    /// the loop stops accepting, in-flight request streams run to
    /// completion (remote shard dispatches are cancelled — their streams
    /// end with an `error` event), the worker pool drains, and `run`
    /// returns `Ok(())`.
    ///
    /// # Errors
    ///
    /// Transient accept failures (aborted handshakes, fd exhaustion) are
    /// logged and retried; only a persistently failing listener — many
    /// consecutive accept errors with no success in between — returns an
    /// error.
    pub fn run(self) -> io::Result<()> {
        let verbose = self.state.engine.verbose;
        // Bounded hand-off: `send` blocks when workers are saturated.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(self.state.workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(self.state.workers);
        for _ in 0..self.state.workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            pool.push(std::thread::spawn(move || loop {
                let conn = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => break,
                };
                match conn {
                    Ok(stream) => handle_connection(stream, &state),
                    Err(_) => break, // listener gone
                }
            }));
        }
        // Non-blocking accept so the loop can observe a shutdown request
        // between connections; accepted sockets are switched back to
        // blocking before hand-off.
        self.listener.set_nonblocking(true)?;
        let mut consecutive_failures = 0usize;
        loop {
            if self.state.cancel.is_cancelled() {
                if verbose {
                    eprintln!("[serve] shutdown requested; draining in-flight requests");
                }
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    consecutive_failures = 0;
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    if tx.send(stream).is_err() {
                        break; // all workers died — surface below
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => {
                    // Aborted handshakes, EMFILE under load, and the like
                    // must not take the whole service down; back off
                    // briefly and keep accepting. A listener that *only*
                    // fails is genuinely broken — surface that.
                    consecutive_failures += 1;
                    if consecutive_failures >= 100 {
                        return Err(e);
                    }
                    if verbose {
                        eprintln!("[serve] accept failed (retrying): {e}");
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// How often the accept loop re-checks for connections and shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-connection read budget: covers slow clients without letting a
/// dead one pin a worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A write-through wrapper counting bytes actually written — feeds the
/// access log's `bytes` field without touching response rendering.
struct CountingWriter<W> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Collapses arbitrary request paths/methods into a bounded label set so
/// a scanner cannot inflate `/metrics` cardinality.
fn route_label(route: &str) -> &'static str {
    match route {
        "/run" => "/run",
        "/shard" => "/shard",
        "/healthz" => "/healthz",
        "/cache/stats" => "/cache/stats",
        "/metrics" => "/metrics",
        _ => "other",
    }
}

fn method_label(method: &str) -> &'static str {
    match method {
        "GET" => "GET",
        "POST" => "POST",
        "HEAD" => "HEAD",
        _ => "other",
    }
}

/// Records one finished request: counters, latency histogram, and the
/// structured access-log line.
fn record_request(
    state: &ServerState,
    method: &str,
    route: &str,
    status: u16,
    elapsed: Duration,
    bytes: u64,
) {
    let (method_l, route_l) = (method_label(method), route_label(route));
    state
        .metrics
        .counter(
            "spnn_requests_total",
            "HTTP requests served, by method, route, and status.",
            &[
                ("method", method_l),
                ("route", route_l),
                ("status", &status.to_string()),
            ],
        )
        .inc();
    state
        .metrics
        .histogram(
            "spnn_request_duration_seconds",
            "Request handling latency, per route.",
            &[("route", route_l)],
            metrics::DURATION_BUCKETS,
        )
        .observe_duration(elapsed);
    tevent!(
        Level::Info,
        "serve",
        "request",
        method = method,
        route = route,
        status = status,
        seconds = elapsed.as_secs_f64(),
        bytes = bytes,
    );
}

fn handle_connection(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = stream;
    let mut reader = match writer.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(_) => return,
    };
    let started = Instant::now();
    let request = match read_request(&mut reader) {
        Ok(r) => r,
        Err(HttpError::Io(_)) => return, // client went away mid-request
        Err(e) => {
            let body = format!("{{\"error\": \"{}\"}}\n", json::escape(&e.to_string()));
            let _ = Response::json(e.status(), body).write_to(&mut writer);
            record_request(state, "", "", e.status(), started.elapsed(), 0);
            // The client may still be sending the body this request was
            // rejected over (413/411); closing with unread data pending
            // makes the kernel send RST and the client sees "connection
            // reset" instead of the error JSON. Signal end-of-response,
            // then drain a bounded amount so the response gets through.
            let _ = writer.shutdown(std::net::Shutdown::Write);
            let mut sink = [0u8; 8192];
            let mut drained = 0usize;
            while let Ok(n) = io::Read::read(&mut reader, &mut sink) {
                if n == 0 {
                    break;
                }
                drained += n;
                if drained > crate::http::MAX_BODY_BYTES {
                    break;
                }
            }
            return;
        }
    };
    state.in_flight.inc();
    let mut writer = CountingWriter {
        inner: writer,
        bytes: 0,
    };
    let status = match (request.method.as_str(), request.route()) {
        ("POST", "/run") => handle_run(&request, &mut writer, state),
        ("POST", "/shard") => handle_shard(&request, &mut writer, state),
        ("GET", "/healthz") => {
            let c = state.counters();
            let body = format!(
                "{{\"status\": \"ok\", \"version\": \"{}\", \"role\": \"{}\", \
                 \"uptime_seconds\": {}, \"workers\": {}, \"remote_workers\": {}, \
                 \"runs_started\": {}, \"runs_completed\": {}, \"runs_failed\": {}, \
                 \"shards_completed\": {}, \"shards_failed\": {}}}\n",
                env!("CARGO_PKG_VERSION"),
                state.role(),
                state.started_at.elapsed().as_secs(),
                state.workers,
                state.remote_workers.len(),
                c.started,
                c.completed,
                c.failed,
                c.shards_completed,
                c.shards_failed
            );
            let _ = Response::json(200, body).write_to(&mut writer);
            200
        }
        ("GET", "/cache/stats") => {
            let stats = state.cache.stats();
            let dir = match state.cache.dir() {
                Some(d) => format!("\"{}\"", json::escape(&d.display().to_string())),
                None => "null".to_string(),
            };
            let body = format!(
                "{{\"dir\": {dir}, \"mem_hits\": {}, \"disk_hits\": {}, \"trains\": {}, \
                 \"corrupt_healed\": {}, \"flock_waits\": {}}}\n",
                stats.mem_hits,
                stats.disk_hits,
                stats.trains,
                stats.corrupt_healed,
                stats.flock_waits
            );
            let _ = Response::json(200, body).write_to(&mut writer);
            200
        }
        ("GET", "/metrics") => {
            let body = state.metrics.render();
            let _ = Response::text(200, "text/plain; version=0.0.4; charset=utf-8", body)
                .write_to(&mut writer);
            200
        }
        (_, "/run" | "/shard" | "/healthz" | "/cache/stats" | "/metrics") => {
            let _ =
                Response::json(405, "{\"error\": \"method not allowed\"}\n").write_to(&mut writer);
            405
        }
        (_, route) => {
            let body = format!(
                "{{\"error\": \"no such endpoint {}\"}}\n",
                json::escape(route)
            );
            let _ = Response::json(404, body).write_to(&mut writer);
            404
        }
    };
    state.in_flight.dec();
    record_request(
        state,
        &request.method,
        request.route(),
        status,
        started.elapsed(),
        writer.bytes,
    );
}

/// Parses and validates the request body as a scenario spec, answering
/// `400` (with the parser's line number when available) on failure.
fn parse_spec_or_reject(request: &Request, writer: &mut impl Write) -> Option<ScenarioSpec> {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => {
            let _ = Response::json(400, "{\"error\": \"spec body must be UTF-8 text\"}\n")
                .write_to(writer);
            return None;
        }
    };
    // Reject before any work starts: parse failures carry the .scn
    // parser's line number, validation failures its message.
    let spec = match ScenarioSpec::parse(text) {
        Ok(s) => s,
        Err(e) => {
            let body = format!(
                "{{\"error\": \"{}\", \"line\": {}}}\n",
                json::escape(&e.to_string()),
                e.line
            );
            let _ = Response::json(400, body).write_to(writer);
            return None;
        }
    };
    if let Err(m) = spec.validate() {
        let body = format!(
            "{{\"error\": \"invalid scenario: {}\"}}\n",
            json::escape(&m)
        );
        let _ = Response::json(400, body).write_to(writer);
        return None;
    }
    Some(spec)
}

/// The streaming output dialect of a `POST /run` response.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StreamFormat {
    /// One JSON event object per line (the default; see the module docs).
    Ndjson,
    /// CSV rows as they complete — the concatenated stream is
    /// byte-identical to `spnn run --format csv` ([`crate::report::to_csv`]).
    Csv,
}

fn handle_run(request: &Request, writer: &mut impl Write, state: &ServerState) -> u16 {
    let format = match request.query_param("format") {
        None | Some("ndjson") => StreamFormat::Ndjson,
        Some("csv") => StreamFormat::Csv,
        Some(other) => {
            let body = format!(
                "{{\"error\": \"unknown format {} (ndjson|csv)\"}}\n",
                json::escape(other)
            );
            let _ = Response::json(400, body).write_to(writer);
            return 400;
        }
    };
    let Some(spec) = parse_spec_or_reject(request, writer) else {
        return 400;
    };

    let content_type = match format {
        StreamFormat::Ndjson => "application/x-ndjson",
        StreamFormat::Csv => "text/csv",
    };

    // Cross-request dedup: identical in-flight bodies share one
    // execution. The first request with a given (body, format) key runs
    // the scenario; every concurrent duplicate subscribes to its stream
    // and receives byte-identical output.
    let key: RunKey = (request.body.clone(), format as u8);
    let run = {
        let mut map = state
            .inflight_runs
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        match map.get(&key) {
            Some(run) => {
                let run = Arc::clone(run);
                drop(map);
                return follow_run(&run, writer, state, content_type);
            }
            None => {
                let run = Arc::new(InflightRun::new());
                map.insert(key.clone(), Arc::clone(&run));
                run
            }
        }
    };
    let _guard = LeaderGuard {
        state,
        key,
        run: Arc::clone(&run),
    };

    state.started.inc();
    // A client that disconnects mid-stream (or before the head is even
    // out) must not kill the run: subscribers may be sharing this
    // stream, and the sweep completes either way — warming the shared
    // caches for the retry. Further writes to this socket are skipped.
    let mut broken = Response::write_streaming_head(writer, 200, content_type).is_err();
    let mut emit = |line: String| {
        // Subscribers first: the shared buffer is never gated by this
        // socket's state.
        run.push_line(&line);
        if broken {
            return;
        }
        if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
            broken = true;
        }
    };
    // Both execution paths feed the same observer: the CSV writer shares
    // the report's row formatter, the NDJSON writer the event formatter —
    // streamed output cannot diverge from the batch renderings.
    let mut header_written = false;
    let mut observe = |event: StreamEvent<'_>| match format {
        StreamFormat::Ndjson => emit(event_line(&event)),
        StreamFormat::Csv => {
            if let StreamEvent::Row { row, .. } = event {
                let keys = label_keys(row);
                if !header_written {
                    header_written = true;
                    emit(csv_header(&keys));
                }
                emit(csv_row(row, &keys));
            }
        }
    };
    let result = if state.remote_workers.is_empty() {
        run_scenario_streaming_with(&spec, &state.engine, &state.cache, &mut observe)
            .map_err(|e| e.to_string())
    } else {
        // Coordinator: one shard per worker, merged as they arrive. The
        // executor retries a failed worker's shard on the next worker.
        let executor = RemoteExecutor::new(state.remote_workers.iter().cloned());
        let ctx = ExecContext {
            config: &state.engine,
            cache: &state.cache,
            cancel: &state.cancel,
        };
        run_distributed(
            &spec,
            &executor,
            state.remote_workers.len(),
            &ctx,
            &mut observe,
        )
        .map_err(|e| e.to_string())
    };
    match result {
        Ok(report) => {
            match format {
                StreamFormat::Ndjson => emit(format!(
                    "{{\"event\": \"done\", \"scenario\": \"{}\", \"rows\": {}}}\n",
                    json::escape(&report.scenario),
                    report.rows.len()
                )),
                StreamFormat::Csv => {
                    if report.rows.is_empty() {
                        // No rows ever streamed: emit the bare header so
                        // the stream still equals `to_csv(report)`.
                        emit(crate::report::to_csv(&report));
                    }
                }
            }
            state.completed.inc();
            run.finish(true);
        }
        Err(message) => {
            match format {
                StreamFormat::Ndjson => emit(format!(
                    "{{\"event\": \"error\", \"message\": \"{}\"}}\n",
                    json::escape(&message)
                )),
                // CSV has no event framing; a comment line is the best a
                // mid-stream failure can do.
                StreamFormat::Csv => emit(format!("# error: {message}\n")),
            }
            state.failed.inc();
            run.finish(false);
        }
    }
    200
}

/// Streams a deduplicated `/run` response: replays the leader's buffered
/// lines, then follows the live stream until the shared execution
/// finishes. Subscribers only ever read the shared buffer, so a slow or
/// mid-stream-disconnected subscriber cannot affect the leader or any
/// other subscriber.
fn follow_run(
    run: &InflightRun,
    writer: &mut impl Write,
    state: &ServerState,
    content_type: &str,
) -> u16 {
    state.started.inc();
    state.dedup_fanouts.inc();
    state.dedup_subscribers.inc();
    let mut broken = Response::write_streaming_head(writer, 200, content_type).is_err();
    let mut pos = 0usize;
    let ok = loop {
        let (chunk, finished, ok) = {
            let mut buf = run.lock_buffer();
            while buf.lines.len() == pos && !buf.done {
                buf = run.cv.wait(buf).unwrap_or_else(|p| p.into_inner());
            }
            (buf.lines[pos..].to_vec(), buf.done, buf.ok)
        };
        pos += chunk.len();
        for line in &chunk {
            if broken {
                break;
            }
            if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
                broken = true;
            }
        }
        if finished {
            break ok;
        }
    };
    state.dedup_subscribers.dec();
    // Mirror the leader's accounting: the shared run's outcome decides,
    // not this socket's health.
    if ok {
        state.completed.inc();
    } else {
        state.failed.inc();
    }
    200
}

/// `POST /shard?shards=K&index=I` — the worker half of distributed
/// serving: runs exactly one deterministic slice of the spec's queue and
/// returns the [`PartialReport`] JSON (`spnn merge`-compatible, the same
/// bytes `spnn run --shards K --shard-index I` writes).
fn handle_shard(request: &Request, writer: &mut impl Write, state: &ServerState) -> u16 {
    let param = |key: &str| -> Result<usize, String> {
        request
            .query_param(key)
            .ok_or_else(|| format!("missing query parameter {key:?}"))?
            .parse::<usize>()
            .map_err(|_| format!("query parameter {key:?} must be an integer"))
    };
    let (shards, index) = match (param("shards"), param("index")) {
        (Ok(s), Ok(i)) if s > 0 && i < s => (s, i),
        (Ok(s), Ok(i)) => {
            let body =
                format!("{{\"error\": \"shard index {i} out of range for {s} shard(s)\"}}\n");
            let _ = Response::json(400, body).write_to(writer);
            return 400;
        }
        (Err(e), _) | (_, Err(e)) => {
            let body = format!("{{\"error\": \"{}\"}}\n", json::escape(&e));
            let _ = Response::json(400, body).write_to(writer);
            return 400;
        }
    };
    let Some(spec) = parse_spec_or_reject(request, writer) else {
        return 400;
    };
    match run_scenario_shard_with(&spec, &state.engine, &state.cache, shards, index) {
        Ok(partial) => {
            state.shards_completed.inc();
            let _ = Response::json(200, partial.to_json()).write_to(writer);
            200
        }
        Err(e) => {
            state.shards_failed.inc();
            let body = format!("{{\"error\": \"{}\"}}\n", json::escape(&e.to_string()));
            let _ = Response::json(500, body).write_to(writer);
            500
        }
    }
}

/// Serializes one [`StreamEvent`] as its NDJSON line (newline included).
fn event_line(event: &StreamEvent<'_>) -> String {
    match event {
        StreamEvent::Started {
            scenario,
            total_points,
        } => format!(
            "{{\"event\": \"started\", \"scenario\": \"{}\", \"total_points\": {total_points}}}\n",
            json::escape(scenario)
        ),
        StreamEvent::Topology(t) => format!(
            "{{\"event\": \"topology\", \"topology\": \"{}\", \"software_accuracy\": {}, \
             \"nominal_accuracy\": {}}}\n",
            json::escape(&t.topology),
            json::num(t.software_accuracy),
            json::num(t.nominal_accuracy)
        ),
        StreamEvent::Row { index, row } => {
            let mut labels = String::new();
            for (j, (k, v)) in row.labels.iter().enumerate() {
                let _ = write!(
                    labels,
                    "{}[\"{}\", \"{}\"]",
                    if j == 0 { "" } else { ", " },
                    json::escape(k),
                    json::escape(v)
                );
            }
            format!(
                "{{\"event\": \"row\", \"index\": {index}, \"topology\": \"{}\", \
                 \"labels\": [{labels}], \"mean_accuracy\": {}, \"std_dev\": {}, \
                 \"moe95\": {}, \"iterations\": {}, \"stopped_early\": {}}}\n",
                json::escape(&row.topology),
                json::num(row.mean),
                json::num(row.std_dev),
                json::num(row.moe95),
                row.iterations,
                row.stopped_early
            )
        }
    }
}

/// Why an NDJSON stream could not be assembled into a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// A line is not a readable event object.
    Format(String),
    /// The stream ended without a `done` event, or its events are
    /// inconsistent (out-of-order rows, wrong counts).
    Incomplete(String),
    /// The stream carries a server-side `error` event.
    Run(String),
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::Format(m) => write!(f, "unreadable event stream: {m}"),
            AssembleError::Incomplete(m) => write!(f, "incomplete event stream: {m}"),
            AssembleError::Run(m) => write!(f, "run failed server-side: {m}"),
        }
    }
}

impl std::error::Error for AssembleError {}

/// Reassembles the [`EngineReport`] from a completed `POST /run` NDJSON
/// stream.
///
/// The assembled report is **byte-identical** (through
/// [`crate::report::to_json`] / [`crate::report::to_csv`]) to what
/// `spnn run` produces for the same spec: every float crosses the wire
/// in shortest-round-trip decimal form and is recovered from the
/// literal digits. Pinned by tests and by the CI `serve` job.
///
/// # Errors
///
/// - [`AssembleError::Format`] on unparseable lines or missing fields;
/// - [`AssembleError::Incomplete`] when the stream lacks `started`/`done`
///   events, rows arrive out of order, or counts disagree;
/// - [`AssembleError::Run`] when the stream ends with a server-side
///   `error` event.
pub fn assemble_report(ndjson: &str) -> Result<EngineReport, AssembleError> {
    let mut scenario: Option<String> = None;
    let mut total_points: usize = 0;
    let mut topologies: Vec<TopologySummary> = Vec::new();
    let mut rows: Vec<SweepRow> = Vec::new();
    let mut done = false;

    for (i, line) in ndjson.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if done {
            return Err(AssembleError::Incomplete(format!(
                "line {}: content after the done event",
                i + 1
            )));
        }
        let v =
            json::parse(line).map_err(|e| AssembleError::Format(format!("line {}: {e}", i + 1)))?;
        let event = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| AssembleError::Format(format!("line {}: no \"event\" field", i + 1)))?;
        let fmt_err =
            |msg: &str| AssembleError::Format(format!("line {}: {event} event {msg}", i + 1));
        match event {
            "started" => {
                scenario = Some(
                    v.get("scenario")
                        .and_then(Json::as_str)
                        .ok_or_else(|| fmt_err("needs string \"scenario\""))?
                        .to_string(),
                );
                total_points = v
                    .get("total_points")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| fmt_err("needs integer \"total_points\""))?;
            }
            "topology" => topologies.push(TopologySummary {
                topology: v
                    .get("topology")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fmt_err("needs string \"topology\""))?
                    .to_string(),
                software_accuracy: v
                    .get("software_accuracy")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| fmt_err("needs numeric \"software_accuracy\""))?,
                nominal_accuracy: v
                    .get("nominal_accuracy")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| fmt_err("needs numeric \"nominal_accuracy\""))?,
            }),
            "row" => {
                let index = v
                    .get("index")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| fmt_err("needs integer \"index\""))?;
                if index != rows.len() {
                    return Err(AssembleError::Incomplete(format!(
                        "line {}: row index {index} where {} was expected",
                        i + 1,
                        rows.len()
                    )));
                }
                let labels = v
                    .get("labels")
                    .and_then(Json::as_array)
                    .ok_or_else(|| fmt_err("needs a \"labels\" array"))?
                    .iter()
                    .map(|pair| match pair.as_array() {
                        Some([k, val]) => match (k.as_str(), val.as_str()) {
                            (Some(k), Some(val)) => Ok((k.to_string(), val.to_string())),
                            _ => Err(fmt_err("label pair must hold two strings")),
                        },
                        _ => Err(fmt_err("labels must be [key, value] pairs")),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let num = |key: &str| {
                    v.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| fmt_err(&format!("needs numeric {key:?}")))
                };
                rows.push(SweepRow {
                    topology: v
                        .get("topology")
                        .and_then(Json::as_str)
                        .ok_or_else(|| fmt_err("needs string \"topology\""))?
                        .to_string(),
                    labels,
                    mean: num("mean_accuracy")?,
                    std_dev: num("std_dev")?,
                    moe95: num("moe95")?,
                    iterations: v
                        .get("iterations")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| fmt_err("needs integer \"iterations\""))?,
                    stopped_early: v
                        .get("stopped_early")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| fmt_err("needs boolean \"stopped_early\""))?,
                });
            }
            "done" => {
                let n = v
                    .get("rows")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| fmt_err("needs integer \"rows\""))?;
                if n != rows.len() {
                    return Err(AssembleError::Incomplete(format!(
                        "done event says {n} row(s) but {} arrived",
                        rows.len()
                    )));
                }
                done = true;
            }
            "error" => {
                return Err(AssembleError::Run(
                    v.get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("(no message)")
                        .to_string(),
                ));
            }
            other => {
                // Forward compatibility: skip events this build does not
                // know, as long as the known ones are consistent.
                let _ = other;
            }
        }
    }

    let Some(scenario) = scenario else {
        return Err(AssembleError::Incomplete("no started event".into()));
    };
    if !done {
        return Err(AssembleError::Incomplete(format!(
            "stream ended after {} of {total_points} row(s) without a done event",
            rows.len()
        )));
    }
    if rows.len() != total_points {
        return Err(AssembleError::Incomplete(format!(
            "started event announced {total_points} point(s) but {} arrived",
            rows.len()
        )));
    }
    Ok(EngineReport {
        scenario,
        topologies,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: usize) -> SweepRow {
        SweepRow {
            topology: "clements".into(),
            labels: vec![
                ("mode".into(), "both".into()),
                ("sigma".into(), "0.05".into()),
            ],
            mean: 1.0 / 3.0,
            std_dev: 0.49999999999999994,
            moe95: f64::MIN_POSITIVE,
            iterations: 10 + index,
            stopped_early: index == 0,
        }
    }

    fn stream_for(rows: &[SweepRow]) -> String {
        let mut out = event_line(&StreamEvent::Started {
            scenario: "demo",
            total_points: rows.len(),
        });
        let summary = TopologySummary {
            topology: "clements".into(),
            software_accuracy: 0.9375,
            nominal_accuracy: 0.90625,
        };
        out.push_str(&event_line(&StreamEvent::Topology(&summary)));
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&event_line(&StreamEvent::Row { index: i, row: r }));
        }
        let _ = writeln!(
            out,
            "{{\"event\": \"done\", \"scenario\": \"demo\", \"rows\": {}}}",
            rows.len()
        );
        out
    }

    #[test]
    fn events_assemble_into_the_exact_report() {
        let rows = vec![row(0), row(1)];
        let report = assemble_report(&stream_for(&rows)).unwrap();
        assert_eq!(report.scenario, "demo");
        assert_eq!(report.topologies.len(), 1);
        assert_eq!(report.rows.len(), 2);
        for (got, want) in report.rows.iter().zip(&rows) {
            assert_eq!(got.labels, want.labels);
            assert_eq!(got.mean.to_bits(), want.mean.to_bits());
            assert_eq!(got.std_dev.to_bits(), want.std_dev.to_bits());
            assert_eq!(got.moe95.to_bits(), want.moe95.to_bits());
            assert_eq!(got.iterations, want.iterations);
            assert_eq!(got.stopped_early, want.stopped_early);
        }
    }

    #[test]
    fn assembler_rejects_truncated_and_disordered_streams() {
        let rows = vec![row(0), row(1)];
        let full = stream_for(&rows);

        // Truncation: drop the done line.
        let cut = full
            .rsplit_once('\n')
            .unwrap()
            .0
            .rsplit_once('\n')
            .unwrap()
            .0;
        assert!(matches!(
            assemble_report(cut),
            Err(AssembleError::Incomplete(_))
        ));

        // Row indices must be contiguous from zero.
        let swapped = full
            .replace("\"index\": 0", "\"index\": 9")
            .replace("\"index\": 1", "\"index\": 0");
        assert!(matches!(
            assemble_report(&swapped),
            Err(AssembleError::Incomplete(_))
        ));

        // A server-side failure surfaces as Run.
        let failed = "{\"event\": \"started\", \"scenario\": \"x\", \"total_points\": 1}\n\
                      {\"event\": \"error\", \"message\": \"mapping failed\"}\n";
        assert!(matches!(
            assemble_report(failed),
            Err(AssembleError::Run(_))
        ));

        // Garbage is Format.
        assert!(matches!(
            assemble_report("not json\n"),
            Err(AssembleError::Format(_))
        ));
        assert!(matches!(
            assemble_report(""),
            Err(AssembleError::Incomplete(_))
        ));
    }

    #[test]
    fn unknown_events_are_skipped_for_forward_compatibility() {
        let rows = vec![row(0)];
        let mut text = stream_for(&rows);
        let insert_at = text.find("{\"event\": \"row\"").unwrap();
        text.insert_str(insert_at, "{\"event\": \"progress\", \"pct\": 50}\n");
        assert!(assemble_report(&text).is_ok());
    }
}
