//! `spnn serve` — a long-lived scenario service that streams Monte-Carlo
//! results as they are computed.
//!
//! The service wraps the engine's streaming driver
//! ([`crate::runner::run_scenario_streaming_with`]) in a small,
//! dependency-free HTTP front-end ([`crate::http`]): clients `POST` a
//! scenario spec (the same `.scn` text `spnn run` takes) and receive
//! **NDJSON** — one JSON object per line — with every sweep point's row
//! pushed the moment it completes. One process-lifetime
//! [`ContextCache`] is shared by all requests, so repeat scenarios skip
//! training entirely, and concurrent identical requests train **once**
//! (the cache serializes in-flight training per fingerprint).
//!
//! With a row cache configured ([`EngineConfig::row_cache`]; the CLI
//! enables one by default — see `docs/row-cache.md`), finished sweep
//! points are also memoized **across requests**, and identical in-flight
//! `/run` bodies share one *execution*: the first request runs the
//! scenario, every concurrent duplicate subscribes to the same stream
//! and receives byte-identical output (counted by
//! `spnn_rowcache_dedup_total`, with current fan-out in the
//! `spnn_rowcache_dedup_subscribers` gauge).
//!
//! # Endpoints
//!
//! | method, path | behavior |
//! |---|---|
//! | `POST /run` | body = scenario spec text; streams NDJSON events |
//! | `POST /run?format=csv` | same, streaming CSV rows (curl-friendly) |
//! | `POST /shard?shards=K&index=I` | worker endpoint: run one shard, return its [`crate::shard::PartialReport`] JSON |
//! | `GET /healthz` | liveness, uptime, version, role, run/shard counters |
//! | `GET /cache/stats` | trained-context cache counters and location |
//! | `GET /metrics` | this server's registry in Prometheus text format |
//!
//! # Observability
//!
//! Every server owns a **private** [`crate::metrics::MetricsRegistry`]
//! (created at bind time, exposed via [`Server::metrics`]), so embedded
//! and test servers never share counters. `GET /metrics` renders it:
//! request counts/latency/in-flight, run and shard outcomes, the cache's
//! counters (the same atomics `/cache/stats` reads — see
//! [`ContextCache::register_metrics`]), engine phase timers, and — in
//! coordinator mode — per-worker dispatch latency and merge progress.
//! Each request additionally emits one structured access-log line on
//! stderr (see [`crate::trace`]; `--log-json` switches it to JSON).
//! The full catalog lives in `docs/observability.md`.
//!
//! Invalid specs are rejected *before* any work starts with `400` and a
//! JSON body carrying the parser's line-numbered message.
//!
//! # Coordinator mode
//!
//! With [`ServeConfig::remote_workers`] non-empty (CLI:
//! `spnn serve --workers-from FILE`), `POST /run` no longer sweeps
//! in-process: the service dispatches one shard per worker over
//! [`crate::exec::RemoteExecutor`] (`POST /shard` on each worker),
//! merges partials **as they arrive** through
//! [`crate::shard::MergeState`], and streams each row the moment its
//! prefix coverage is decidable — the stream is byte-identical to the
//! in-process one, because both paths emit the same [`StreamEvent`]s
//! with the same values. A worker failing mid-run is retried on another
//! worker transparently. `POST /shard` works in either mode, so
//! coordinators can be layered.
//!
//! # Graceful shutdown
//!
//! After [`crate::exec::install_signal_handlers`] (the CLI installs them
//! for `spnn serve`), SIGTERM/SIGINT stops the accept loop, lets
//! in-flight streams finish, cancels outstanding remote shard dispatches
//! (their streams end with an `error` event), joins the worker pool, and
//! returns from [`Server::run`] — a second signal exits immediately.
//! [`Server::cancel_token`] gives embedders the same lever
//! programmatically.
//!
//! # The NDJSON event stream
//!
//! A successful `POST /run` answers `200` with
//! `Content-Type: application/x-ndjson` and a close-delimited body (no
//! chunked framing — the stream ends when the server closes the
//! connection). Events, in order:
//!
//! ```text
//! {"event":"started","scenario":"fig4","total_points":54}
//! {"event":"topology","topology":"clements","software_accuracy":0.94,"nominal_accuracy":0.93}
//! {"event":"row","index":0,"topology":"clements","labels":[["mode","both"],["sigma","0"]],
//!  "mean_accuracy":0.93,"std_dev":0,"moe95":0,"iterations":60,"stopped_early":false}
//! ...
//! {"event":"done","scenario":"fig4","rows":54}
//! ```
//!
//! Floats are emitted in Rust's shortest-round-trip decimal form, so
//! [`assemble_report`] recovers every value **bit-exactly**: a report
//! assembled from the stream renders byte-for-byte identically
//! (`to_json` / `to_csv`) to the `spnn run` report for the same spec —
//! the batch driver *is* the streaming driver with a no-op observer.
//! A run that fails after the head was sent (e.g. a mapping error) ends
//! the stream with `{"event":"error","message":…}` instead of `done`.
//!
//! `docs/serving.md` is the operator's manual: curl examples, error
//! codes, concurrency and determinism semantics.

use crate::cache::ContextCache;
use crate::exec::{
    run_distributed, BreakerConfig, CancelToken, ExecContext, RemoteExecutor, WeightSource,
    WorkerBreakers,
};
use crate::http::{http_get, read_request, HttpError, Request, Response};
use crate::json::{self, Json};
use crate::metrics::{self, histogram_quantile, Counter, Gauge, MetricsRegistry, Reading};
use crate::queue::static_queue_len;
use crate::report::{csv_header, csv_row, label_keys};
use crate::runner::{
    run_scenario_shard_with, run_scenario_span_with, run_scenario_streaming_cancellable,
    run_scenario_streaming_with, EngineConfig, EngineError, EngineReport, StreamEvent, SweepRow,
    TopologySummary,
};
use crate::spec::ScenarioSpec;
use crate::tevent;
use crate::trace::Level;
use spnn_core::{detected_tier, KernelProfile};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Per-request work ceilings, enforced on `POST /run`. A request whose
/// spec provably exceeds a ceiling is rejected with `400` before any
/// compute; a request that crosses one mid-run (adaptive stop rules,
/// zonal plans whose queue size depends on the mapped mesh) is aborted
/// between sweep points and its stream ends with a structured `error`
/// event. `0` means unlimited. Budgets never change the value of any
/// row that *is* emitted — enforcement is point-granular.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestBudget {
    /// Maximum sweep points a request may produce (0 = unlimited).
    pub max_points: u64,
    /// Maximum Monte-Carlo iterations a request may spend (0 = unlimited).
    pub max_iterations: u64,
    /// Maximum Monte-Carlo rounds a request may spend (0 = unlimited).
    pub max_rounds: u64,
}

impl RequestBudget {
    /// `true` when no ceiling is configured.
    pub fn is_unlimited(&self) -> bool {
        *self == RequestBudget::default()
    }

    /// Checks the floors derivable from the spec alone — the compiled
    /// queue length for global plans, exact totals for fixed stop rules,
    /// `min_iterations` floors for adaptive ones. Returns the rejection
    /// reason when the spec cannot possibly fit the budget.
    fn static_violation(&self, spec: &ScenarioSpec) -> Option<String> {
        let points_per_topology = static_queue_len(spec)?; // zonal: runtime only
        let points = (points_per_topology * spec.topologies.len()) as u64;
        if self.max_points > 0 && points > self.max_points {
            return Some(format!(
                "budget exceeded: spec compiles to {points} point(s), max_points is {}",
                self.max_points
            ));
        }
        let round_size = spec.round_size.max(1) as u64;
        // Fixed stop rule: exact per-point cost. Adaptive: at least
        // min_iterations per point — still a provable floor.
        let (iters_per_point, qualifier) = if spec.target_moe > 0.0 {
            (spec.min_iterations as u64, "at least ")
        } else {
            (spec.iterations as u64, "")
        };
        let iterations = points * iters_per_point;
        if self.max_iterations > 0 && iterations > self.max_iterations {
            return Some(format!(
                "budget exceeded: spec needs {qualifier}{iterations} iteration(s), \
                 max_iterations is {}",
                self.max_iterations
            ));
        }
        let rounds = points * iters_per_point.div_ceil(round_size);
        if self.max_rounds > 0 && rounds > self.max_rounds {
            return Some(format!(
                "budget exceeded: spec needs {qualifier}{rounds} round(s), max_rounds is {}",
                self.max_rounds
            ));
        }
        None
    }
}

/// Tracks a request's spend against its [`RequestBudget`] as stream
/// events arrive; detects the first violation.
struct BudgetMeter {
    budget: RequestBudget,
    round_size: u64,
    points: u64,
    iterations: u64,
    rounds: u64,
}

impl BudgetMeter {
    fn new(budget: RequestBudget, round_size: usize) -> Self {
        BudgetMeter {
            budget,
            round_size: round_size.max(1) as u64,
            points: 0,
            iterations: 0,
            rounds: 0,
        }
    }

    /// Accounts one event; returns the violation message the first time
    /// a ceiling is crossed.
    fn observe(&mut self, event: &StreamEvent<'_>) -> Option<String> {
        match event {
            StreamEvent::Started { total_points, .. } => {
                let total = *total_points as u64;
                if self.budget.max_points > 0 && total > self.budget.max_points {
                    return Some(format!(
                        "budget exceeded: scenario has {total} point(s), max_points is {}",
                        self.budget.max_points
                    ));
                }
            }
            StreamEvent::Row { row, .. } => {
                self.points += 1;
                self.iterations += row.iterations as u64;
                self.rounds += (row.iterations as u64).div_ceil(self.round_size);
                if self.budget.max_iterations > 0 && self.iterations > self.budget.max_iterations {
                    return Some(format!(
                        "budget exceeded: {} iteration(s) spent, max_iterations is {}",
                        self.iterations, self.budget.max_iterations
                    ));
                }
                if self.budget.max_rounds > 0 && self.rounds > self.budget.max_rounds {
                    return Some(format!(
                        "budget exceeded: {} round(s) spent, max_rounds is {}",
                        self.rounds, self.budget.max_rounds
                    ));
                }
            }
            _ => {}
        }
        None
    }
}

/// Per-client concurrency and rate limits for `POST /run` and
/// `POST /shard`, keyed by the `X-Client-Id` header (falling back to the
/// peer IP). Token-bucket: a client holds up to `burst` tokens,
/// replenished at `rate` per second; each admitted request spends one.
/// `0` disables the corresponding limit. Denied requests get `429` with
/// a `Retry-After` estimating when a token will be available.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QuotaConfig {
    /// Maximum concurrent `/run` + `/shard` requests per client
    /// (0 = unlimited).
    pub max_concurrent: u32,
    /// Sustained request rate per client, in requests/second
    /// (0 = unlimited).
    pub rate: f64,
    /// Token-bucket capacity — the burst a client may spend at once.
    /// `0` with a positive `rate` defaults to `max(rate, 1)`.
    pub burst: f64,
}

impl QuotaConfig {
    fn enabled(&self) -> bool {
        self.max_concurrent > 0 || self.rate > 0.0
    }

    fn capacity(&self) -> f64 {
        if self.burst > 0.0 {
            self.burst
        } else {
            self.rate.max(1.0)
        }
    }
}

/// How the service runs. Like [`EngineConfig`], nothing here may change
/// the results of admitted requests — only capacity, placement,
/// admission, and logging. (Admission knobs decide *whether* a request
/// runs, never *what* it computes: an admitted stream is byte-identical
/// under any setting.)
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Connection-handling worker threads (each runs at most one
    /// scenario at a time; the Monte-Carlo sweep inside a request is
    /// additionally parallelized per [`EngineConfig::threads`]). This is
    /// the service's in-flight cap.
    pub workers: usize,
    /// Engine execution knobs applied to every request.
    /// `engine.cache_dir` seeds the service's process-lifetime
    /// [`ContextCache`].
    pub engine: EngineConfig,
    /// Remote worker base URLs (`http://host:port`). Empty (the
    /// default) serves every `POST /run` in-process; non-empty turns the
    /// service into a **coordinator** that dispatches one shard per
    /// worker and merges partials as they arrive (see the module docs).
    pub remote_workers: Vec<String>,
    /// Admission queue depth: connections accepted but not yet picked up
    /// by a worker. Overflow is shed immediately with `429` +
    /// `Retry-After` instead of piling into the kernel accept backlog.
    pub queue_depth: usize,
    /// Longest a connection may wait in the admission queue; a request
    /// dequeued after this deadline is shed with `429` (its spot was a
    /// promise the server could no longer keep in time).
    pub queue_wait: Duration,
    /// Socket read budget per request: a client that sends half a head
    /// and stalls is answered `408` instead of pinning a worker forever.
    pub read_timeout: Duration,
    /// Socket write budget: a client that stops reading its stream stalls
    /// writes at most this long before the connection is abandoned.
    pub write_timeout: Duration,
    /// Per-request work ceilings (see [`RequestBudget`]).
    pub budget: RequestBudget,
    /// Per-client concurrency/rate quotas (see [`QuotaConfig`]).
    pub quota: QuotaConfig,
    /// Circuit-breaker tuning for coordinator-side worker health (see
    /// [`BreakerConfig`]; only used when `remote_workers` is non-empty).
    pub breaker: BreakerConfig,
    /// Coordinator work stealing (`--steal`): a worker that drains its
    /// slice re-dispatches the slowest outstanding slice's span;
    /// overlapping speculative partials are deduplicated by the merge,
    /// so the stream stays byte-identical (only wall-clock changes).
    pub steal: bool,
    /// Coordinator capacity weighting (`--weights-from`): how the shard
    /// plan sizes each worker's slice (see [`WeightSource`]).
    pub weights_from: WeightSource,
    /// In-process peers the coordinator adds to its own plan
    /// (`--local-peers`): mixed dispatch — the coordinator's cores work
    /// alongside the remote fleet.
    pub local_peers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            engine: EngineConfig::default(),
            remote_workers: Vec::new(),
            queue_depth: 64,
            queue_wait: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(60),
            budget: RequestBudget::default(),
            quota: QuotaConfig::default(),
            breaker: BreakerConfig::default(),
            steal: false,
            weights_from: WeightSource::Equal,
            local_peers: 0,
        }
    }
}

/// Run counters, served by `GET /healthz`.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    started: u64,
    completed: u64,
    failed: u64,
    shards_completed: u64,
    shards_failed: u64,
}

/// Identity of an in-flight `/run` execution: the exact request body plus
/// the stream format. Requests with equal keys produce byte-identical
/// streams, so they can share one execution.
type RunKey = (Vec<u8>, u8);

/// The shared stream buffer of one in-flight `/run` execution: the
/// leader appends each emitted line, subscribers replay and then follow.
struct RunBuffer {
    /// Every line emitted so far, in stream order.
    lines: Vec<String>,
    /// `true` once the execution ended (successfully or not).
    done: bool,
    /// The execution outcome, meaningful once `done`.
    ok: bool,
}

/// One in-flight `/run` execution being fanned out to every request with
/// the same [`RunKey`]. The leader only ever appends and subscribers only
/// ever read, so a slow or disconnected subscriber cannot affect the
/// leader or its peers.
struct InflightRun {
    buffer: Mutex<RunBuffer>,
    cv: Condvar,
}

impl InflightRun {
    fn new() -> Self {
        InflightRun {
            buffer: Mutex::new(RunBuffer {
                lines: Vec::new(),
                done: false,
                ok: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// The buffer, poison-proof: a panicking leader must not wedge its
    /// subscribers (the buffer is always structurally valid — appends
    /// and flag flips cannot tear).
    fn lock_buffer(&self) -> MutexGuard<'_, RunBuffer> {
        self.buffer.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn push_line(&self, line: &str) {
        self.lock_buffer().lines.push(line.to_string());
        self.cv.notify_all();
    }

    /// Marks the execution finished and releases every subscriber. The
    /// first call wins; later calls (the leader's cleanup guard) are
    /// no-ops.
    fn finish(&self, ok: bool) {
        let mut buf = self.lock_buffer();
        if !buf.done {
            buf.done = true;
            buf.ok = ok;
        }
        drop(buf);
        self.cv.notify_all();
    }
}

/// Removes the leader's in-flight map entry when its request ends — and,
/// should the leader die between registering and finishing, releases
/// waiting subscribers with a failed outcome so none of them blocks
/// forever.
struct LeaderGuard<'a> {
    state: &'a ServerState,
    key: RunKey,
    run: Arc<InflightRun>,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        self.state
            .inflight_runs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&self.key);
        self.run.finish(false); // no-op after a clean finish
    }
}

/// One client's token-bucket state (see [`QuotaConfig`]).
struct ClientBucket {
    tokens: f64,
    refilled_at: Instant,
    in_flight: u32,
}

/// RAII release of one admitted request's quota spend.
struct QuotaGuard<'a> {
    state: &'a ServerState,
    key: String,
}

impl Drop for QuotaGuard<'_> {
    fn drop(&mut self) {
        let mut clients = self
            .state
            .quota_clients
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if let Some(bucket) = clients.get_mut(&self.key) {
            bucket.in_flight = bucket.in_flight.saturating_sub(1);
        }
    }
}

struct ServerState {
    engine: EngineConfig,
    cache: ContextCache,
    workers: usize,
    remote_workers: Vec<String>,
    cancel: CancelToken,
    /// This server's private registry — `GET /metrics` renders it and
    /// every handle below is registered in it.
    metrics: MetricsRegistry,
    started_at: Instant,
    started: Counter,
    completed: Counter,
    failed: Counter,
    shards_completed: Counter,
    shards_failed: Counter,
    in_flight: Gauge,
    /// In-flight `/run` executions, for cross-request dedup: the first
    /// request with a given key leads, identical concurrent requests
    /// subscribe to its stream.
    inflight_runs: Mutex<HashMap<RunKey, Arc<InflightRun>>>,
    /// Requests served by subscribing to another request's execution.
    dedup_fanouts: Counter,
    /// Requests currently subscribed to another request's stream.
    dedup_subscribers: Gauge,
    /// Admission-queue capacity and deadline (see
    /// [`ServeConfig::queue_depth`] / [`ServeConfig::queue_wait`]).
    queue_depth: usize,
    queue_wait: Duration,
    /// Socket timeouts applied to every admitted connection.
    read_timeout: Duration,
    write_timeout: Duration,
    /// Per-request work ceilings.
    budget: RequestBudget,
    /// Per-client quotas plus their token-bucket state.
    quota: QuotaConfig,
    quota_clients: Mutex<HashMap<String, ClientBucket>>,
    quota_client_count: Gauge,
    /// Requests admitted past the queue (picked up by a worker in time).
    admission_accepted: Counter,
    /// Connections currently waiting in the admission queue.
    admission_queue_depth: Gauge,
    /// Coordinator-side worker circuit breakers (`None` in worker role).
    breakers: Option<Arc<WorkerBreakers>>,
    /// Coordinator work stealing (see [`ServeConfig::steal`]).
    steal: bool,
    /// Coordinator capacity weighting (see [`ServeConfig::weights_from`]).
    weights_from: WeightSource,
    /// Coordinator in-process peers (see [`ServeConfig::local_peers`]).
    local_peers: usize,
}

impl ServerState {
    fn counters(&self) -> Counters {
        Counters {
            started: self.started.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            shards_completed: self.shards_completed.get(),
            shards_failed: self.shards_failed.get(),
        }
    }

    /// `worker` when serving sweeps in-process, `coordinator` when
    /// dispatching to remote workers.
    fn role(&self) -> &'static str {
        if self.remote_workers.is_empty() {
            "worker"
        } else {
            "coordinator"
        }
    }
}

/// The scenario service: a bound listener plus its shared state.
///
/// [`Server::bind`] reserves the address (use port `0` to let the OS
/// pick — [`Server::local_addr`] reports the result); [`Server::run`]
/// then serves connections forever on a pool of
/// [`ServeConfig::workers`] threads.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("workers", &self.state.workers)
            .finish()
    }
}

impl Server {
    /// Binds the service to `addr` (e.g. `"127.0.0.1:7878"`, or port `0`
    /// for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let workers = config.workers.max(1);
        let mut engine = config.engine;
        let cache = ContextCache::new(engine.cache_dir.take());
        // A private registry per server: embedded and test servers must
        // not share counters. Routing the engine config's handle at it
        // makes every layer below (runner, executor, merge) record here.
        let registry = MetricsRegistry::new();
        engine.metrics = registry.clone();
        cache.register_metrics(&registry);
        if let Some(rc) = &engine.row_cache {
            rc.register_metrics(&registry);
        }
        // Info gauge: the configured kernel profile and the CPU dispatch
        // tier it resolves to on this machine, as labels set to 1.
        registry
            .gauge(
                "spnn_kernel_profile",
                "Active kernel profile and the CPU dispatch tier selected for it (info gauge).",
                &[
                    ("profile", engine.kernel.as_str()),
                    ("tier", detected_tier().as_str()),
                ],
            )
            .set(1);
        let counter = |name: &str, help: &str| registry.counter(name, help, &[]);
        let remote_workers: Vec<String> = config
            .remote_workers
            .iter()
            .map(|w| w.trim_end_matches('/').to_string())
            .collect();
        // Coordinator role only: one breaker per worker, registered up
        // front so `/healthz` and `/metrics` show every worker as
        // "closed" from the first scrape, not only after a failure.
        let breakers = (!remote_workers.is_empty()).then(|| {
            let b = Arc::new(WorkerBreakers::new(config.breaker, &registry));
            for worker in &remote_workers {
                b.admits(worker);
            }
            b
        });
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                engine,
                cache,
                workers,
                remote_workers,
                cancel: CancelToken::new(),
                started_at: Instant::now(),
                started: counter("spnn_runs_started_total", "Scenario runs accepted."),
                completed: counter("spnn_runs_completed_total", "Scenario runs completed."),
                failed: counter("spnn_runs_failed_total", "Scenario runs failed."),
                shards_completed: counter(
                    "spnn_shards_completed_total",
                    "Shard requests completed (worker role).",
                ),
                shards_failed: counter(
                    "spnn_shards_failed_total",
                    "Shard requests failed (worker role).",
                ),
                in_flight: registry.gauge(
                    "spnn_requests_in_flight",
                    "Requests currently being handled.",
                    &[],
                ),
                inflight_runs: Mutex::new(HashMap::new()),
                dedup_fanouts: counter(
                    "spnn_rowcache_dedup_total",
                    "Identical in-flight /run requests served by subscribing to \
                     another request's execution.",
                ),
                dedup_subscribers: registry.gauge(
                    "spnn_rowcache_dedup_subscribers",
                    "Requests currently subscribed to another request's /run stream.",
                    &[],
                ),
                queue_depth: config.queue_depth.max(1),
                queue_wait: config.queue_wait,
                read_timeout: config.read_timeout,
                write_timeout: config.write_timeout,
                budget: config.budget,
                quota: config.quota,
                quota_clients: Mutex::new(HashMap::new()),
                quota_client_count: registry.gauge(
                    "spnn_quota_clients",
                    "Distinct clients currently tracked by the quota layer.",
                    &[],
                ),
                admission_accepted: counter(
                    "spnn_admission_accepted_total",
                    "Connections admitted past the queue and handed to a worker.",
                ),
                admission_queue_depth: registry.gauge(
                    "spnn_admission_queue_depth",
                    "Connections currently waiting in the admission queue.",
                    &[],
                ),
                breakers,
                steal: config.steal,
                weights_from: config.weights_from,
                local_peers: config.local_peers,
                metrics: registry,
            }),
        })
    }

    /// This server's private metrics registry — the one `GET /metrics`
    /// renders. Useful for embedders that want to scrape without HTTP.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.state.metrics
    }

    /// The server's cancellation token: cancelling it makes
    /// [`Server::run`] stop accepting, finish in-flight work, and
    /// return. The token also observes the process-wide shutdown flag
    /// set by [`crate::exec::install_signal_handlers`], so SIGTERM works
    /// the same way.
    pub fn cancel_token(&self) -> CancelToken {
        self.state.cancel.clone()
    }

    /// The address the service actually listens on.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until the listener fails persistently or the
    /// server is asked to shut down (see [`Server::cancel_token`]). Each
    /// accepted connection is handed to one of the worker threads; a
    /// worker handles one request per connection (`Connection: close`).
    ///
    /// Admission: accepted connections enter a bounded FIFO queue of
    /// [`ServeConfig::queue_depth`] slots. When the queue is full the
    /// connection is shed immediately with `429 Too Many Requests` and a
    /// `Retry-After` header instead of accumulating open sockets; a
    /// queued connection that no worker picks up within
    /// [`ServeConfig::queue_wait`] is shed the same way at dequeue —
    /// better a prompt 429 than a stream that starts after the client
    /// gave up.
    ///
    /// Shutdown: once the cancel token fires (programmatically, or via
    /// SIGTERM/SIGINT after [`crate::exec::install_signal_handlers`])
    /// the loop stops accepting, in-flight request streams run to
    /// completion (remote shard dispatches are cancelled — their streams
    /// end with an `error` event), the worker pool drains, and `run`
    /// returns `Ok(())`.
    ///
    /// # Errors
    ///
    /// Transient accept failures (aborted handshakes, fd exhaustion) are
    /// logged and retried; only a persistently failing listener — many
    /// consecutive accept errors with no success in between — returns an
    /// error.
    pub fn run(self) -> io::Result<()> {
        let verbose = self.state.engine.verbose;
        // Bounded FIFO admission queue; `try_send` fails fast when it is
        // full so overflow is shed at accept time, not buffered.
        let (tx, rx) = mpsc::sync_channel::<(TcpStream, Instant)>(self.state.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(self.state.workers);
        for _ in 0..self.state.workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            pool.push(std::thread::spawn(move || loop {
                let conn = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => break,
                };
                match conn {
                    Ok((stream, enqueued_at)) => {
                        state.admission_queue_depth.dec();
                        let waited = enqueued_at.elapsed();
                        if waited > state.queue_wait {
                            // The queue deadline passed while this
                            // connection waited for a worker.
                            shed(&state, stream, "deadline", waited);
                            continue;
                        }
                        state
                            .metrics
                            .histogram(
                                "spnn_admission_queue_wait_seconds",
                                "Time admitted connections spent queued for a worker.",
                                &[],
                                metrics::DURATION_BUCKETS,
                            )
                            .observe_duration(waited);
                        state.admission_accepted.inc();
                        handle_connection(stream, &state);
                    }
                    Err(_) => break, // listener gone
                }
            }));
        }
        // Coordinator role: a background prober revives open breakers by
        // polling the worker's /healthz once its cooldown elapses, so
        // recovery does not have to wait for live request traffic.
        let prober = self.state.breakers.clone().map(|breakers| {
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || probe_breakers(&state, &breakers))
        });
        // Non-blocking accept so the loop can observe a shutdown request
        // between connections; accepted sockets are switched back to
        // blocking before hand-off.
        self.listener.set_nonblocking(true)?;
        let mut consecutive_failures = 0usize;
        loop {
            if self.state.cancel.is_cancelled() {
                if verbose {
                    eprintln!("[serve] shutdown requested; draining in-flight requests");
                }
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    consecutive_failures = 0;
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    self.state.admission_queue_depth.inc();
                    match tx.try_send((stream, Instant::now())) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full((stream, _))) => {
                            self.state.admission_queue_depth.dec();
                            shed(&self.state, stream, "queue_full", Duration::ZERO);
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            self.state.admission_queue_depth.dec();
                            break; // all workers died — surface below
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => {
                    // Aborted handshakes, EMFILE under load, and the like
                    // must not take the whole service down; back off
                    // briefly and keep accepting. A listener that *only*
                    // fails is genuinely broken — surface that.
                    consecutive_failures += 1;
                    if consecutive_failures >= 100 {
                        return Err(e);
                    }
                    if verbose {
                        eprintln!("[serve] accept failed (retrying): {e}");
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        if let Some(prober) = prober {
            let _ = prober.join();
        }
        Ok(())
    }
}

/// Sheds one connection with `429 Too Many Requests` plus a
/// `Retry-After` hint derived from the configured queue deadline. Writes
/// under a short timeout — a shed must never block the accept loop.
fn shed(state: &ServerState, stream: TcpStream, reason: &'static str, waited: Duration) {
    state
        .metrics
        .counter(
            "spnn_admission_shed_total",
            "Connections shed by admission control, by reason.",
            &[("reason", reason)],
        )
        .inc();
    tevent!(
        Level::Warn,
        "serve",
        "shed",
        reason = reason,
        waited_seconds = waited.as_secs_f64(),
    );
    let retry_after = state.queue_wait.as_secs().clamp(1, 60);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
    let mut stream = stream;
    let body =
        format!("{{\"error\": \"server overloaded ({reason}), retry after {retry_after}s\"}}\n");
    let _ = Response::json(429, body)
        .with_header("Retry-After", retry_after.to_string())
        .write_to(&mut stream);
    // The client is mid-way through sending the request this 429
    // rejects; closing with unread data pending would RST the socket
    // and eat the response. Signal end-of-response, then drain a
    // bounded amount so the 429 gets through.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 8192];
    let mut drained = 0usize;
    while let Ok(n) = io::Read::read(&mut stream, &mut sink) {
        if n == 0 {
            break;
        }
        drained += n;
        if drained > crate::http::MAX_BODY_BYTES {
            break;
        }
    }
    record_request(state, "", "", 429, waited, 0);
}

/// Background half-open prober (coordinator role): wakes every
/// [`PROBE_POLL`], asks the breaker layer which workers are due, and
/// settles each with a `GET /healthz` — `200` closes the breaker,
/// anything else re-opens it for another cooldown.
fn probe_breakers(state: &ServerState, breakers: &WorkerBreakers) {
    let probes = |outcome: &'static str| {
        state.metrics.counter(
            "spnn_breaker_probes_total",
            "Half-open health probes sent to workers, by outcome.",
            &[("outcome", outcome)],
        )
    };
    while !state.cancel.is_cancelled() {
        for worker in breakers.probe_due() {
            let abort = || state.cancel.is_cancelled();
            let ok = http_get(
                &format!("{worker}/healthz"),
                Some(&abort),
                Some(PROBE_TIMEOUT),
            )
            .is_ok_and(|r| r.status == 200);
            if ok {
                probes("success").inc();
                breakers.record_success(&worker);
            } else {
                probes("failure").inc();
                breakers.record_failure(&worker);
            }
        }
        std::thread::sleep(PROBE_POLL);
    }
}

/// How often the breaker prober checks for workers due a health probe.
const PROBE_POLL: Duration = Duration::from_millis(250);

/// Socket budget for one half-open `/healthz` probe.
const PROBE_TIMEOUT: Duration = Duration::from_secs(2);

/// How often the accept loop re-checks for connections and shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// A write-through wrapper counting bytes actually written — feeds the
/// access log's `bytes` field without touching response rendering.
struct CountingWriter<W> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Collapses arbitrary request paths/methods into a bounded label set so
/// a scanner cannot inflate `/metrics` cardinality.
fn route_label(route: &str) -> &'static str {
    match route {
        "/run" => "/run",
        "/shard" => "/shard",
        "/healthz" => "/healthz",
        "/cache/stats" => "/cache/stats",
        "/metrics" => "/metrics",
        _ => "other",
    }
}

fn method_label(method: &str) -> &'static str {
    match method {
        "GET" => "GET",
        "POST" => "POST",
        "HEAD" => "HEAD",
        _ => "other",
    }
}

/// Records one finished request: counters, latency histogram, and the
/// structured access-log line.
fn record_request(
    state: &ServerState,
    method: &str,
    route: &str,
    status: u16,
    elapsed: Duration,
    bytes: u64,
) {
    let (method_l, route_l) = (method_label(method), route_label(route));
    state
        .metrics
        .counter(
            "spnn_requests_total",
            "HTTP requests served, by method, route, and status.",
            &[
                ("method", method_l),
                ("route", route_l),
                ("status", &status.to_string()),
            ],
        )
        .inc();
    state
        .metrics
        .histogram(
            "spnn_request_duration_seconds",
            "Request handling latency, per route.",
            &[("route", route_l)],
            metrics::DURATION_BUCKETS,
        )
        .observe_duration(elapsed);
    tevent!(
        Level::Info,
        "serve",
        "request",
        method = method,
        route = route,
        status = status,
        seconds = elapsed.as_secs_f64(),
        bytes = bytes,
    );
}

/// Clients tracked before the quota layer prunes idle buckets — a
/// cardinality bound, not a client limit (a pruned idle client just
/// starts over with a full bucket).
const QUOTA_CLIENT_CAP: usize = 4096;

/// Per-client admission for work endpoints: enforces [`QuotaConfig`]
/// against the client's token bucket. Clients are keyed by their
/// `X-Client-Id` header, falling back to the peer IP. Returns a guard
/// that releases the concurrency slot when the request finishes, or the
/// denial reason plus a `Retry-After` hint in whole seconds.
fn admit_client<'a>(
    state: &'a ServerState,
    request: &Request,
    peer_ip: &str,
) -> Result<Option<QuotaGuard<'a>>, (&'static str, u64)> {
    if !state.quota.enabled() {
        return Ok(None);
    }
    let key = match request.header("x-client-id") {
        Some(id) if !id.is_empty() => id.to_string(),
        _ => peer_ip.to_string(),
    };
    let capacity = state.quota.capacity();
    let now = Instant::now();
    let mut clients = state
        .quota_clients
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if clients.len() >= QUOTA_CLIENT_CAP {
        // Idle, fully-refilled buckets carry no state worth keeping.
        clients.retain(|_, b| {
            b.in_flight > 0 || now.duration_since(b.refilled_at) < Duration::from_secs(60)
        });
    }
    let bucket = clients.entry(key.clone()).or_insert(ClientBucket {
        tokens: capacity,
        refilled_at: now,
        in_flight: 0,
    });
    if state.quota.max_concurrent > 0 && bucket.in_flight >= state.quota.max_concurrent {
        return Err(("concurrency", 1));
    }
    if state.quota.rate > 0.0 {
        let dt = now.duration_since(bucket.refilled_at).as_secs_f64();
        bucket.tokens = capacity.min(bucket.tokens + dt * state.quota.rate);
        bucket.refilled_at = now;
        if bucket.tokens < 1.0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let wait = ((1.0 - bucket.tokens) / state.quota.rate).ceil() as u64;
            return Err(("rate", wait.clamp(1, 60)));
        }
        bucket.tokens -= 1.0;
    }
    bucket.in_flight += 1;
    #[allow(clippy::cast_possible_wrap)]
    state.quota_client_count.set(clients.len() as i64);
    Ok(Some(QuotaGuard { state, key }))
}

fn handle_connection(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(state.read_timeout));
    let _ = stream.set_write_timeout(Some(state.write_timeout));
    let _ = stream.set_nodelay(true);
    // Captured before any read: the quota layer falls back to the peer
    // IP when the client does not identify itself.
    let peer_ip = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let mut writer = stream;
    let mut reader = match writer.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(_) => return,
    };
    let started = Instant::now();
    let request = match read_request(&mut reader) {
        Ok(r) => r,
        Err(HttpError::Io(_)) => return, // client went away mid-request
        Err(e) => {
            let body = format!("{{\"error\": \"{}\"}}\n", json::escape(&e.to_string()));
            let _ = Response::json(e.status(), body).write_to(&mut writer);
            record_request(state, "", "", e.status(), started.elapsed(), 0);
            // The client may still be sending the body this request was
            // rejected over (413/411); closing with unread data pending
            // makes the kernel send RST and the client sees "connection
            // reset" instead of the error JSON. Signal end-of-response,
            // then drain a bounded amount so the response gets through.
            let _ = writer.shutdown(std::net::Shutdown::Write);
            let mut sink = [0u8; 8192];
            let mut drained = 0usize;
            while let Ok(n) = io::Read::read(&mut reader, &mut sink) {
                if n == 0 {
                    break;
                }
                drained += n;
                if drained > crate::http::MAX_BODY_BYTES {
                    break;
                }
            }
            return;
        }
    };
    state.in_flight.inc();
    let mut writer = CountingWriter {
        inner: writer,
        bytes: 0,
    };
    let status = match (request.method.as_str(), request.route()) {
        ("POST", route @ ("/run" | "/shard")) => match admit_client(state, &request, &peer_ip) {
            Ok(_quota_guard) => {
                if route == "/run" {
                    handle_run(&request, &mut writer, state)
                } else {
                    handle_shard(&request, &mut writer, state)
                }
            }
            Err((reason, retry_after)) => {
                state
                    .metrics
                    .counter(
                        "spnn_quota_shed_total",
                        "Requests shed by per-client quotas, by reason.",
                        &[("reason", reason)],
                    )
                    .inc();
                let body = format!(
                    "{{\"error\": \"client quota exceeded ({reason}), retry after \
                     {retry_after}s\"}}\n"
                );
                let _ = Response::json(429, body)
                    .with_header("Retry-After", retry_after.to_string())
                    .write_to(&mut writer);
                429
            }
        },
        ("GET", "/healthz") => {
            let c = state.counters();
            // Coordinator role: per-worker breaker state, so an operator
            // (or orchestration probe) sees which workers are being
            // skipped without scraping /metrics.
            let breakers = state.breakers.as_ref().map_or_else(String::new, |b| {
                let entries: Vec<String> = b
                    .snapshot()
                    .into_iter()
                    .map(|(worker, breaker_state)| {
                        format!(
                            "\"{}\": \"{}\"",
                            json::escape(&worker),
                            breaker_state.as_str()
                        )
                    })
                    .collect();
                format!(", \"worker_breakers\": {{{}}}", entries.join(", "))
            });
            let body = format!(
                "{{\"status\": \"ok\", \"version\": \"{}\", \"role\": \"{}\", \
                 \"cores\": {}, \"kernel_profile\": \"{}\", \"kernel_tier\": \"{}\", \
                 \"uptime_seconds\": {}, \"workers\": {}, \
                 \"remote_workers\": {}, \
                 \"runs_started\": {}, \"runs_completed\": {}, \"runs_failed\": {}, \
                 \"shards_completed\": {}, \"shards_failed\": {}{breakers}}}\n",
                env!("CARGO_PKG_VERSION"),
                state.role(),
                std::thread::available_parallelism().map_or(1, |n| n.get()),
                state.engine.kernel.as_str(),
                detected_tier().as_str(),
                state.started_at.elapsed().as_secs(),
                state.workers,
                state.remote_workers.len(),
                c.started,
                c.completed,
                c.failed,
                c.shards_completed,
                c.shards_failed
            );
            let _ = Response::json(200, body).write_to(&mut writer);
            200
        }
        ("GET", "/cache/stats") => {
            let stats = state.cache.stats();
            let dir = match state.cache.dir() {
                Some(d) => format!("\"{}\"", json::escape(&d.display().to_string())),
                None => "null".to_string(),
            };
            let body = format!(
                "{{\"dir\": {dir}, \"mem_hits\": {}, \"disk_hits\": {}, \"trains\": {}, \
                 \"corrupt_healed\": {}, \"flock_waits\": {}}}\n",
                stats.mem_hits,
                stats.disk_hits,
                stats.trains,
                stats.corrupt_healed,
                stats.flock_waits
            );
            let _ = Response::json(200, body).write_to(&mut writer);
            200
        }
        ("GET", "/metrics") => {
            update_latency_quantiles(&state.metrics);
            let body = state.metrics.render();
            let _ = Response::text(200, "text/plain; version=0.0.4; charset=utf-8", body)
                .write_to(&mut writer);
            200
        }
        (_, "/run" | "/shard" | "/healthz" | "/cache/stats" | "/metrics") => {
            let _ =
                Response::json(405, "{\"error\": \"method not allowed\"}\n").write_to(&mut writer);
            405
        }
        (_, route) => {
            let body = format!(
                "{{\"error\": \"no such endpoint {}\"}}\n",
                json::escape(route)
            );
            let _ = Response::json(404, body).write_to(&mut writer);
            404
        }
    };
    state.in_flight.dec();
    record_request(
        state,
        &request.method,
        request.route(),
        status,
        started.elapsed(),
        writer.bytes,
    );
}

/// Refreshes the p50/p95/p99 per-route latency gauges from the request
/// duration histograms — called at scrape time, so the gauges are as
/// fresh as the histograms they summarize. The estimate is the same
/// linear interpolation PromQL's `histogram_quantile` applies.
fn update_latency_quantiles(registry: &MetricsRegistry) {
    for series in registry.snapshot() {
        if series.name != "spnn_request_duration_seconds" {
            continue;
        }
        let Reading::Histogram { buckets, count, .. } = &series.value else {
            continue;
        };
        let Some(route) = series
            .labels
            .iter()
            .find(|(k, _)| k == "route")
            .map(|(_, v)| v.as_str())
        else {
            continue;
        };
        for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            registry
                .float_gauge(
                    "spnn_request_latency_quantile_seconds",
                    "Estimated request latency quantiles per route, derived from \
                     the duration histogram at scrape time.",
                    &[("route", route), ("quantile", label)],
                )
                .set(histogram_quantile(buckets, *count, q));
        }
    }
}

/// Parses and validates the request body as a scenario spec, answering
/// `400` (with the parser's line number when available) on failure.
fn parse_spec_or_reject(request: &Request, writer: &mut impl Write) -> Option<ScenarioSpec> {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => {
            let _ = Response::json(400, "{\"error\": \"spec body must be UTF-8 text\"}\n")
                .write_to(writer);
            return None;
        }
    };
    // Reject before any work starts: parse failures carry the .scn
    // parser's line number, validation failures its message.
    let spec = match ScenarioSpec::parse(text) {
        Ok(s) => s,
        Err(e) => {
            let body = format!(
                "{{\"error\": \"{}\", \"line\": {}}}\n",
                json::escape(&e.to_string()),
                e.line
            );
            let _ = Response::json(400, body).write_to(writer);
            return None;
        }
    };
    if let Err(m) = spec.validate() {
        let body = format!(
            "{{\"error\": \"invalid scenario: {}\"}}\n",
            json::escape(&m)
        );
        let _ = Response::json(400, body).write_to(writer);
        return None;
    }
    Some(spec)
}

/// The streaming output dialect of a `POST /run` response.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StreamFormat {
    /// One JSON event object per line (the default; see the module docs).
    Ndjson,
    /// CSV rows as they complete — the concatenated stream is
    /// byte-identical to `spnn run --format csv` ([`crate::report::to_csv`]).
    Csv,
}

fn handle_run(request: &Request, writer: &mut impl Write, state: &ServerState) -> u16 {
    let format = match request.query_param("format") {
        None | Some("ndjson") => StreamFormat::Ndjson,
        Some("csv") => StreamFormat::Csv,
        Some(other) => {
            let body = format!(
                "{{\"error\": \"unknown format {} (ndjson|csv)\"}}\n",
                json::escape(other)
            );
            let _ = Response::json(400, body).write_to(writer);
            return 400;
        }
    };
    let Some(spec) = parse_spec_or_reject(request, writer) else {
        return 400;
    };
    // Statically derivable budget violations are rejected before any
    // work (or stream head) exists — the client gets a plain 400 it can
    // act on, not a mid-stream error event.
    if let Some(message) = state.budget.static_violation(&spec) {
        let body = format!("{{\"error\": \"{}\"}}\n", json::escape(&message));
        let _ = Response::json(400, body).write_to(writer);
        return 400;
    }

    let content_type = match format {
        StreamFormat::Ndjson => "application/x-ndjson",
        StreamFormat::Csv => "text/csv",
    };

    // Cross-request dedup: identical in-flight bodies share one
    // execution. The first request with a given (body, format) key runs
    // the scenario; every concurrent duplicate subscribes to its stream
    // and receives byte-identical output.
    let key: RunKey = (request.body.clone(), format as u8);
    let run = {
        let mut map = state
            .inflight_runs
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        match map.get(&key) {
            Some(run) => {
                let run = Arc::clone(run);
                drop(map);
                return follow_run(&run, writer, state, content_type);
            }
            None => {
                let run = Arc::new(InflightRun::new());
                map.insert(key.clone(), Arc::clone(&run));
                run
            }
        }
    };
    let _guard = LeaderGuard {
        state,
        key,
        run: Arc::clone(&run),
    };

    state.started.inc();
    // A client that disconnects mid-stream (or before the head is even
    // out) must not kill the run: subscribers may be sharing this
    // stream, and the sweep completes either way — warming the shared
    // caches for the retry. Further writes to this socket are skipped.
    let mut broken = Response::write_streaming_head(writer, 200, content_type).is_err();
    let mut emit = |line: String| {
        // Subscribers first: the shared buffer is never gated by this
        // socket's state.
        run.push_line(&line);
        if broken {
            return;
        }
        if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
            broken = true;
        }
    };
    // Per-request cancellation seam for the runtime budget meter. The
    // worker path uses a standalone token: with no budget configured the
    // non-cancellable runner keeps graceful-shutdown drain semantics
    // (in-flight streams finish after SIGTERM); with one, only the
    // meter can trip it. The coordinator path chains off the server
    // token so shutdown still cancels remote dispatch as before.
    let request_cancel = if state.remote_workers.is_empty() {
        CancelToken::new()
    } else {
        state.cancel.child()
    };
    let mut meter = BudgetMeter::new(state.budget, spec.round_size);
    let mut budget_msg: Option<String> = None;
    // Both execution paths feed the same observer: the CSV writer shares
    // the report's row formatter, the NDJSON writer the event formatter —
    // streamed output cannot diverge from the batch renderings. The
    // budget meter audits the same stream and trips the request token at
    // the first violation; rows already emitted stay bit-identical to an
    // unbudgeted run.
    let mut header_written = false;
    let mut observe = |event: StreamEvent<'_>| {
        if budget_msg.is_none() {
            if let Some(message) = meter.observe(&event) {
                budget_msg = Some(message);
                request_cancel.cancel();
            }
        }
        match format {
            StreamFormat::Ndjson => emit(event_line(&event)),
            StreamFormat::Csv => {
                if let StreamEvent::Row { row, .. } = event {
                    let keys = label_keys(row);
                    if !header_written {
                        header_written = true;
                        emit(csv_header(&keys));
                    }
                    emit(csv_row(row, &keys));
                }
            }
        }
    };
    let result = if state.remote_workers.is_empty() {
        if state.budget.is_unlimited() {
            run_scenario_streaming_with(&spec, &state.engine, &state.cache, &mut observe)
        } else {
            run_scenario_streaming_cancellable(
                &spec,
                &state.engine,
                &state.cache,
                &request_cancel,
                &mut observe,
            )
        }
        .map_err(|e| e.to_string())
    } else {
        // Coordinator: one shard per worker, merged as they arrive. The
        // executor retries a failed worker's shard on the next worker,
        // skipping workers whose circuit breaker is open.
        let mut executor = RemoteExecutor::new(state.remote_workers.iter().cloned())
            .with_local_peers(state.local_peers)
            .with_weights(state.weights_from.clone())
            .with_steal(state.steal);
        if let Some(breakers) = &state.breakers {
            executor = executor.with_breakers(Arc::clone(breakers));
        }
        let ctx = ExecContext {
            config: &state.engine,
            cache: &state.cache,
            cancel: &request_cancel,
        };
        run_distributed(
            &spec,
            &executor,
            state.remote_workers.len() + state.local_peers,
            &ctx,
            &mut observe,
        )
        .map_err(|e| e.to_string())
    };
    match result {
        Ok(report) => {
            match format {
                StreamFormat::Ndjson => emit(format!(
                    "{{\"event\": \"done\", \"scenario\": \"{}\", \"rows\": {}}}\n",
                    json::escape(&report.scenario),
                    report.rows.len()
                )),
                StreamFormat::Csv => {
                    if report.rows.is_empty() {
                        // No rows ever streamed: emit the bare header so
                        // the stream still equals `to_csv(report)`.
                        emit(crate::report::to_csv(&report));
                    }
                }
            }
            state.completed.inc();
            run.finish(true);
        }
        Err(message) => {
            // A budget abort surfaces the meter's structured reason, not
            // the runner's generic cancellation error.
            let message = budget_msg.take().unwrap_or(message);
            match format {
                StreamFormat::Ndjson => emit(format!(
                    "{{\"event\": \"error\", \"message\": \"{}\"}}\n",
                    json::escape(&message)
                )),
                // CSV has no event framing; a comment line is the best a
                // mid-stream failure can do.
                StreamFormat::Csv => emit(format!("# error: {message}\n")),
            }
            state.failed.inc();
            run.finish(false);
        }
    }
    200
}

/// Streams a deduplicated `/run` response: replays the leader's buffered
/// lines, then follows the live stream until the shared execution
/// finishes. Subscribers only ever read the shared buffer, so a slow or
/// mid-stream-disconnected subscriber cannot affect the leader or any
/// other subscriber.
fn follow_run(
    run: &InflightRun,
    writer: &mut impl Write,
    state: &ServerState,
    content_type: &str,
) -> u16 {
    state.started.inc();
    state.dedup_fanouts.inc();
    state.dedup_subscribers.inc();
    let mut broken = Response::write_streaming_head(writer, 200, content_type).is_err();
    let mut pos = 0usize;
    let ok = loop {
        let (chunk, finished, ok) = {
            let mut buf = run.lock_buffer();
            while buf.lines.len() == pos && !buf.done {
                buf = run.cv.wait(buf).unwrap_or_else(|p| p.into_inner());
            }
            (buf.lines[pos..].to_vec(), buf.done, buf.ok)
        };
        pos += chunk.len();
        for line in &chunk {
            if broken {
                break;
            }
            if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
                broken = true;
            }
        }
        if finished {
            break ok;
        }
    };
    state.dedup_subscribers.dec();
    // Mirror the leader's accounting: the shared run's outcome decides,
    // not this socket's health.
    if ok {
        state.completed.inc();
    } else {
        state.failed.inc();
    }
    200
}

/// `POST /shard?shards=K&index=I` — the worker half of distributed
/// serving: runs exactly one deterministic slice of the spec's queue and
/// returns the [`PartialReport`] JSON (`spnn merge`-compatible, the same
/// bytes `spnn run --shards K --shard-index I` writes).
///
/// `POST /shard?span=LO-HI` is the weighted/stealing variant: instead of
/// an equal 1-of-K slice the coordinator names an explicit half-open
/// round-space range. Both forms produce overlapping-merge-safe partials
/// because every iteration's bits depend only on `(seed, k)`.
fn handle_shard(request: &Request, writer: &mut impl Write, state: &ServerState) -> u16 {
    // Test-only chaos hook: an operator-invisible way for the CI chaos
    // job to slow one worker without a proxy. Parsed per-request so the
    // shell can export it before spawning just the straggler.
    if let Ok(ms) = std::env::var("SPNN_TEST_SHARD_DELAY_MS") {
        if let Ok(ms) = ms.parse::<u64>() {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
    fn reject(writer: &mut impl Write, message: &str) -> u16 {
        let body = format!("{{\"error\": \"{}\"}}\n", json::escape(message));
        let _ = Response::json(400, body).write_to(writer);
        400
    }
    // The two query forms are mutually exclusive; `span` wins when both
    // are present because only the coordinator sends it.
    let span = match request.query_param("span") {
        Some(raw) => match raw.split_once('-') {
            Some((lo, hi)) => match (lo.parse::<usize>(), hi.parse::<usize>()) {
                (Ok(lo), Ok(hi)) if lo < hi => Some((lo, hi)),
                (Ok(lo), Ok(hi)) => {
                    return reject(writer, &format!("span {lo}-{hi} is empty or reversed"));
                }
                _ => return reject(writer, "span must be LO-HI with integer bounds"),
            },
            None => return reject(writer, "span must be LO-HI with integer bounds"),
        },
        None => None,
    };
    let shard = if span.is_none() {
        let param = |key: &str| -> Result<usize, String> {
            request
                .query_param(key)
                .ok_or_else(|| format!("missing query parameter {key:?}"))?
                .parse::<usize>()
                .map_err(|_| format!("query parameter {key:?} must be an integer"))
        };
        match (param("shards"), param("index")) {
            (Ok(s), Ok(i)) if s > 0 && i < s => Some((s, i)),
            (Ok(s), Ok(i)) => {
                return reject(
                    writer,
                    &format!("shard index {i} out of range for {s} shard(s)"),
                );
            }
            (Err(e), _) | (_, Err(e)) => return reject(writer, &e),
        }
    } else {
        None
    };
    // Coordinator-selected kernel profile: the coordinator appends
    // `&kernel=fma` so every worker computes the same bits it expects
    // (the partial's fingerprint is profile-scoped, so a worker that
    // ignored this would be rejected as foreign). Absent means the
    // worker's own configured profile.
    let engine = match request.query_param("kernel") {
        None => state.engine.clone(),
        Some(raw) => match raw.parse::<KernelProfile>() {
            Ok(kernel) => {
                let mut engine = state.engine.clone();
                engine.kernel = kernel;
                engine
            }
            Err(e) => return reject(writer, &e),
        },
    };
    let Some(spec) = parse_spec_or_reject(request, writer) else {
        return 400;
    };
    let result = match (span, shard) {
        (Some((lo, hi)), _) => run_scenario_span_with(&spec, &engine, &state.cache, lo, hi - lo),
        (None, Some((shards, index))) => {
            run_scenario_shard_with(&spec, &engine, &state.cache, shards, index)
        }
        (None, None) => unreachable!("one of span/shard is always set"),
    };
    match result {
        Ok(partial) => {
            state.shards_completed.inc();
            let _ = Response::json(200, partial.to_json()).write_to(writer);
            200
        }
        Err(EngineError::Invalid(message)) => {
            state.shards_failed.inc();
            reject(writer, &message)
        }
        Err(e) => {
            state.shards_failed.inc();
            let body = format!("{{\"error\": \"{}\"}}\n", json::escape(&e.to_string()));
            let _ = Response::json(500, body).write_to(writer);
            500
        }
    }
}

/// Serializes one [`StreamEvent`] as its NDJSON line (newline included).
fn event_line(event: &StreamEvent<'_>) -> String {
    match event {
        StreamEvent::Started {
            scenario,
            total_points,
        } => format!(
            "{{\"event\": \"started\", \"scenario\": \"{}\", \"total_points\": {total_points}}}\n",
            json::escape(scenario)
        ),
        StreamEvent::Topology(t) => format!(
            "{{\"event\": \"topology\", \"topology\": \"{}\", \"software_accuracy\": {}, \
             \"nominal_accuracy\": {}}}\n",
            json::escape(&t.topology),
            json::num(t.software_accuracy),
            json::num(t.nominal_accuracy)
        ),
        StreamEvent::Row { index, row } => {
            let mut labels = String::new();
            for (j, (k, v)) in row.labels.iter().enumerate() {
                let _ = write!(
                    labels,
                    "{}[\"{}\", \"{}\"]",
                    if j == 0 { "" } else { ", " },
                    json::escape(k),
                    json::escape(v)
                );
            }
            format!(
                "{{\"event\": \"row\", \"index\": {index}, \"topology\": \"{}\", \
                 \"labels\": [{labels}], \"mean_accuracy\": {}, \"std_dev\": {}, \
                 \"moe95\": {}, \"iterations\": {}, \"stopped_early\": {}}}\n",
                json::escape(&row.topology),
                json::num(row.mean),
                json::num(row.std_dev),
                json::num(row.moe95),
                row.iterations,
                row.stopped_early
            )
        }
    }
}

/// Why an NDJSON stream could not be assembled into a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// A line is not a readable event object.
    Format(String),
    /// The stream ended without a `done` event, or its events are
    /// inconsistent (out-of-order rows, wrong counts).
    Incomplete(String),
    /// The stream carries a server-side `error` event.
    Run(String),
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::Format(m) => write!(f, "unreadable event stream: {m}"),
            AssembleError::Incomplete(m) => write!(f, "incomplete event stream: {m}"),
            AssembleError::Run(m) => write!(f, "run failed server-side: {m}"),
        }
    }
}

impl std::error::Error for AssembleError {}

/// Reassembles the [`EngineReport`] from a completed `POST /run` NDJSON
/// stream.
///
/// The assembled report is **byte-identical** (through
/// [`crate::report::to_json`] / [`crate::report::to_csv`]) to what
/// `spnn run` produces for the same spec: every float crosses the wire
/// in shortest-round-trip decimal form and is recovered from the
/// literal digits. Pinned by tests and by the CI `serve` job.
///
/// # Errors
///
/// - [`AssembleError::Format`] on unparseable lines or missing fields;
/// - [`AssembleError::Incomplete`] when the stream lacks `started`/`done`
///   events, rows arrive out of order, or counts disagree;
/// - [`AssembleError::Run`] when the stream ends with a server-side
///   `error` event.
pub fn assemble_report(ndjson: &str) -> Result<EngineReport, AssembleError> {
    let mut scenario: Option<String> = None;
    let mut total_points: usize = 0;
    let mut topologies: Vec<TopologySummary> = Vec::new();
    let mut rows: Vec<SweepRow> = Vec::new();
    let mut done = false;

    for (i, line) in ndjson.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if done {
            return Err(AssembleError::Incomplete(format!(
                "line {}: content after the done event",
                i + 1
            )));
        }
        let v =
            json::parse(line).map_err(|e| AssembleError::Format(format!("line {}: {e}", i + 1)))?;
        let event = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| AssembleError::Format(format!("line {}: no \"event\" field", i + 1)))?;
        let fmt_err =
            |msg: &str| AssembleError::Format(format!("line {}: {event} event {msg}", i + 1));
        match event {
            "started" => {
                scenario = Some(
                    v.get("scenario")
                        .and_then(Json::as_str)
                        .ok_or_else(|| fmt_err("needs string \"scenario\""))?
                        .to_string(),
                );
                total_points = v
                    .get("total_points")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| fmt_err("needs integer \"total_points\""))?;
            }
            "topology" => topologies.push(TopologySummary {
                topology: v
                    .get("topology")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fmt_err("needs string \"topology\""))?
                    .to_string(),
                software_accuracy: v
                    .get("software_accuracy")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| fmt_err("needs numeric \"software_accuracy\""))?,
                nominal_accuracy: v
                    .get("nominal_accuracy")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| fmt_err("needs numeric \"nominal_accuracy\""))?,
            }),
            "row" => {
                let index = v
                    .get("index")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| fmt_err("needs integer \"index\""))?;
                if index != rows.len() {
                    return Err(AssembleError::Incomplete(format!(
                        "line {}: row index {index} where {} was expected",
                        i + 1,
                        rows.len()
                    )));
                }
                let labels = v
                    .get("labels")
                    .and_then(Json::as_array)
                    .ok_or_else(|| fmt_err("needs a \"labels\" array"))?
                    .iter()
                    .map(|pair| match pair.as_array() {
                        Some([k, val]) => match (k.as_str(), val.as_str()) {
                            (Some(k), Some(val)) => Ok((k.to_string(), val.to_string())),
                            _ => Err(fmt_err("label pair must hold two strings")),
                        },
                        _ => Err(fmt_err("labels must be [key, value] pairs")),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let num = |key: &str| {
                    v.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| fmt_err(&format!("needs numeric {key:?}")))
                };
                rows.push(SweepRow {
                    topology: v
                        .get("topology")
                        .and_then(Json::as_str)
                        .ok_or_else(|| fmt_err("needs string \"topology\""))?
                        .to_string(),
                    labels,
                    mean: num("mean_accuracy")?,
                    std_dev: num("std_dev")?,
                    moe95: num("moe95")?,
                    iterations: v
                        .get("iterations")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| fmt_err("needs integer \"iterations\""))?,
                    stopped_early: v
                        .get("stopped_early")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| fmt_err("needs boolean \"stopped_early\""))?,
                });
            }
            "done" => {
                let n = v
                    .get("rows")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| fmt_err("needs integer \"rows\""))?;
                if n != rows.len() {
                    return Err(AssembleError::Incomplete(format!(
                        "done event says {n} row(s) but {} arrived",
                        rows.len()
                    )));
                }
                done = true;
            }
            "error" => {
                return Err(AssembleError::Run(
                    v.get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("(no message)")
                        .to_string(),
                ));
            }
            other => {
                // Forward compatibility: skip events this build does not
                // know, as long as the known ones are consistent.
                let _ = other;
            }
        }
    }

    let Some(scenario) = scenario else {
        return Err(AssembleError::Incomplete("no started event".into()));
    };
    if !done {
        return Err(AssembleError::Incomplete(format!(
            "stream ended after {} of {total_points} row(s) without a done event",
            rows.len()
        )));
    }
    if rows.len() != total_points {
        return Err(AssembleError::Incomplete(format!(
            "started event announced {total_points} point(s) but {} arrived",
            rows.len()
        )));
    }
    Ok(EngineReport {
        scenario,
        topologies,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: usize) -> SweepRow {
        SweepRow {
            topology: "clements".into(),
            labels: vec![
                ("mode".into(), "both".into()),
                ("sigma".into(), "0.05".into()),
            ],
            mean: 1.0 / 3.0,
            std_dev: 0.49999999999999994,
            moe95: f64::MIN_POSITIVE,
            iterations: 10 + index,
            stopped_early: index == 0,
        }
    }

    fn stream_for(rows: &[SweepRow]) -> String {
        let mut out = event_line(&StreamEvent::Started {
            scenario: "demo",
            total_points: rows.len(),
        });
        let summary = TopologySummary {
            topology: "clements".into(),
            software_accuracy: 0.9375,
            nominal_accuracy: 0.90625,
        };
        out.push_str(&event_line(&StreamEvent::Topology(&summary)));
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&event_line(&StreamEvent::Row { index: i, row: r }));
        }
        let _ = writeln!(
            out,
            "{{\"event\": \"done\", \"scenario\": \"demo\", \"rows\": {}}}",
            rows.len()
        );
        out
    }

    #[test]
    fn events_assemble_into_the_exact_report() {
        let rows = vec![row(0), row(1)];
        let report = assemble_report(&stream_for(&rows)).unwrap();
        assert_eq!(report.scenario, "demo");
        assert_eq!(report.topologies.len(), 1);
        assert_eq!(report.rows.len(), 2);
        for (got, want) in report.rows.iter().zip(&rows) {
            assert_eq!(got.labels, want.labels);
            assert_eq!(got.mean.to_bits(), want.mean.to_bits());
            assert_eq!(got.std_dev.to_bits(), want.std_dev.to_bits());
            assert_eq!(got.moe95.to_bits(), want.moe95.to_bits());
            assert_eq!(got.iterations, want.iterations);
            assert_eq!(got.stopped_early, want.stopped_early);
        }
    }

    #[test]
    fn assembler_rejects_truncated_and_disordered_streams() {
        let rows = vec![row(0), row(1)];
        let full = stream_for(&rows);

        // Truncation: drop the done line.
        let cut = full
            .rsplit_once('\n')
            .unwrap()
            .0
            .rsplit_once('\n')
            .unwrap()
            .0;
        assert!(matches!(
            assemble_report(cut),
            Err(AssembleError::Incomplete(_))
        ));

        // Row indices must be contiguous from zero.
        let swapped = full
            .replace("\"index\": 0", "\"index\": 9")
            .replace("\"index\": 1", "\"index\": 0");
        assert!(matches!(
            assemble_report(&swapped),
            Err(AssembleError::Incomplete(_))
        ));

        // A server-side failure surfaces as Run.
        let failed = "{\"event\": \"started\", \"scenario\": \"x\", \"total_points\": 1}\n\
                      {\"event\": \"error\", \"message\": \"mapping failed\"}\n";
        assert!(matches!(
            assemble_report(failed),
            Err(AssembleError::Run(_))
        ));

        // Garbage is Format.
        assert!(matches!(
            assemble_report("not json\n"),
            Err(AssembleError::Format(_))
        ));
        assert!(matches!(
            assemble_report(""),
            Err(AssembleError::Incomplete(_))
        ));
    }

    #[test]
    fn unknown_events_are_skipped_for_forward_compatibility() {
        let rows = vec![row(0)];
        let mut text = stream_for(&rows);
        let insert_at = text.find("{\"event\": \"row\"").unwrap();
        text.insert_str(insert_at, "{\"event\": \"progress\", \"pct\": 50}\n");
        assert!(assemble_report(&text).is_ok());
    }
}
