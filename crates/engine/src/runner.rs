//! The Monte-Carlo driver: deterministic, multi-threaded, adaptive —
//! and shardable across processes.
//!
//! Execution model per sweep point:
//!
//! 1. Iterations are processed in **rounds** of `spec.round_size`. Within a
//!    round, iterations are split across worker threads; iteration `k`
//!    derives its RNG purely from `(seed, k)` via
//!    [`spnn_core::monte_carlo::iteration_rng`], so the schedule cannot
//!    affect any sample.
//! 2. After each round the samples are folded **in iteration order** into a
//!    [`Welford`] estimator and the [`StopRule`] is consulted. Stopping
//!    decisions therefore happen at thread-count-independent boundaries:
//!    the result is bit-identical for 1, 2 or 64 workers.
//! 3. Each iteration realizes the network's transfer matrices **once** and
//!    pushes the whole test set through as matrix-matrix products
//!    ([`TestBatch::accuracy_with`]), bit-identical to the seed's
//!    per-sample `mc_accuracy` path.
//!
//! Because per-iteration RNGs are position-independent, a run can also be
//! **sharded**: [`run_scenario_shard_with`] executes only a deterministic
//! slice of the compiled queue's rounds (see [`crate::shard`]) and writes a
//! partial report; [`crate::shard::merge_partials`] recombines partials
//! into a report bit-identical to the unsharded run.

use crate::batched::TestBatch;
use crate::cache::ContextCache;
use crate::estimator::{StopRule, Welford};
use crate::metrics::{self, MetricsRegistry};
use crate::queue::{compile, WorkItem};
use crate::rowcache::{CachedPoint, RowCache, RowContext, RowManifest};
use crate::shard::{
    plan_shard, plan_span, queue_fingerprint_with, PartialPoint, PartialReport, ShardBlock,
};
use crate::spec::{topology_name, ScenarioSpec};
use crate::tevent;
use crate::trace::{Level, Span};
use spnn_core::monte_carlo::iteration_rng;
use spnn_core::network::SpnnError;
use spnn_core::{
    BatchScratch, HardwareEffects, KernelProfile, McResult, PerturbationPlan, PhotonicNetwork,
    RealizeScratch,
};
use spnn_dataset::{DatasetConfig, SpnnDataset};
use spnn_linalg::CMatrix;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Execution knobs. Every field except `kernel` must not change results —
/// only speed. `kernel` selects the arithmetic profile: each profile is
/// individually deterministic (thread-count-, executor-, and
/// machine-independent), but the two profiles produce different sample
/// bits, which is why the profile participates in queue fingerprints and
/// row-cache keys (see [`crate::shard::queue_fingerprint_with`]).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads per sweep point (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Kernel profile for the batched Monte-Carlo forward
    /// ([`spnn_core::kernel`]). Defaults to [`KernelProfile::Reference`]
    /// — the seed-faithful kernel whose outputs match the per-sample
    /// path bit for bit. [`KernelProfile::Fma`] opts into the
    /// SIMD/fused-multiply-add fast path under its own pinned goldens.
    pub kernel: KernelProfile,
    /// Print per-point progress to stderr.
    pub verbose: bool,
    /// Trained-context cache directory. `None` (the default) keeps the
    /// cache in memory only; results are bit-identical either way (see
    /// [`crate::cache`]).
    pub cache_dir: Option<PathBuf>,
    /// Where instrumentation records (phase timers, point/iteration
    /// counters). Defaults to the process-global registry
    /// ([`crate::metrics::global`]); [`crate::serve::Server`] swaps in a
    /// per-server registry so `GET /metrics` reflects that server alone.
    /// Purely observational — results never depend on it.
    pub metrics: MetricsRegistry,
    /// Row-level result cache ([`crate::rowcache`]). `None` (the default)
    /// disables it: every point computes cold. When set, finished rows are
    /// consulted before any Monte-Carlo work and published as they
    /// finalize; reports are bit-identical either way (the cache stores
    /// the retained sample stream, so replay reproduces every statistic
    /// exactly — see `docs/row-cache.md`).
    pub row_cache: Option<Arc<RowCache>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: None,
            kernel: KernelProfile::default(),
            verbose: false,
            cache_dir: None,
            metrics: metrics::global().clone(),
            row_cache: None,
        }
    }
}

/// The per-phase wall-clock histogram (`spnn_phase_duration_seconds`)
/// for `phase` in `registry`.
pub(crate) fn phase_histogram(
    registry: &MetricsRegistry,
    phase: &str,
) -> crate::metrics::Histogram {
    registry.histogram(
        "spnn_phase_duration_seconds",
        "Wall-clock spent per engine phase (train, cache_load, mapping, rounds).",
        &[("phase", phase)],
        metrics::DURATION_BUCKETS,
    )
}

/// Counter handles for the Monte-Carlo sweep, shared by the streaming
/// driver and the shard executor.
struct SweepCounters {
    rounds_hist: crate::metrics::Histogram,
    points: crate::metrics::Counter,
    iterations: crate::metrics::Counter,
    rounds: crate::metrics::Counter,
    early_stops: crate::metrics::Counter,
}

impl SweepCounters {
    fn new(registry: &MetricsRegistry) -> Self {
        SweepCounters {
            rounds_hist: phase_histogram(registry, "rounds"),
            points: registry.counter(
                "spnn_points_total",
                "Sweep points (or shard blocks) completed.",
                &[],
            ),
            iterations: registry.counter(
                "spnn_mc_iterations_total",
                "Monte-Carlo iterations executed.",
                &[],
            ),
            rounds: registry.counter("spnn_mc_rounds_total", "Monte-Carlo rounds executed.", &[]),
            early_stops: registry.counter(
                "spnn_early_stops_total",
                "Sweep points stopped early by the adaptive rule.",
                &[],
            ),
        }
    }

    fn record(&self, samples: usize, round_size: usize, stopped_early: bool) {
        self.points.inc();
        self.iterations.add(samples as u64);
        self.rounds.add(samples.div_ceil(round_size.max(1)) as u64);
        if stopped_early {
            self.early_stops.inc();
        }
    }
}

/// The outcome of one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Per-iteration accuracies in iteration order.
    pub samples: Vec<f64>,
    /// Mean accuracy.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// 95 % margin of error of the mean.
    pub moe95: f64,
    /// `true` when the adaptive rule stopped before the iteration cap.
    pub stopped_early: bool,
}

/// One Monte-Carlo worker's reusable buffers: realized-matrix scratch, the
/// realized per-layer matrices, and the batched-forward activation planes.
/// Warm after the first iteration; every later iteration allocates nothing
/// on the hot path.
#[derive(Debug, Default)]
struct IterScratch {
    realize: RealizeScratch,
    matrices: Vec<CMatrix>,
    batch: BatchScratch,
}

/// The outcome of a contiguous round range of one sweep point
/// (see [`run_point_range`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RangeResult {
    /// Per-iteration accuracies of the range, in iteration order.
    pub samples: Vec<f64>,
    /// `true` when the range starts at round 0 and the adaptive rule
    /// stopped inside it before the iteration cap.
    pub stopped_early: bool,
}

/// Runs a contiguous range of rounds of one sweep point: rounds
/// `first_round .. first_round + rounds`, i.e. iterations
/// `first_round·round_size .. min(cap, (first_round + rounds)·round_size)`.
///
/// This is the shard-execution primitive. Iteration `k` depends only on
/// `(seed, k)`, so the samples of any range are bit-identical to the
/// corresponding slice of an unsharded [`run_point`] run.
///
/// Adaptive early termination is applied **only when `first_round == 0`**:
/// stopping decisions at a round boundary require the full sample prefix,
/// which only the range that starts at the beginning has seen. Ranges
/// starting later run all their rounds unconditionally (speculation); the
/// merge replays the stop rule over the recombined stream and discards
/// iterations past the stopping boundary (see [`crate::shard`]).
///
/// # Panics
///
/// Panics if `round_size == 0`, the stop rule's cap is zero, `rounds == 0`,
/// or the range lies entirely past the cap.
#[allow(clippy::too_many_arguments)] // the engine's primitive: each knob is load-bearing
pub fn run_point_range(
    network: &PhotonicNetwork,
    plan: &PerturbationPlan,
    effects: &HardwareEffects,
    batch: &TestBatch,
    stop: &StopRule,
    round_size: usize,
    seed: u64,
    threads: Option<usize>,
    kernel: KernelProfile,
    first_round: usize,
    rounds: usize,
) -> RangeResult {
    assert!(round_size > 0, "round_size must be positive");
    assert!(stop.max_iterations > 0, "need at least one iteration");
    assert!(rounds > 0, "need at least one round");
    let cap = stop.max_iterations;
    let k_start = first_round * round_size;
    assert!(k_start < cap, "round range starts past the iteration cap");
    let k_end = cap.min(k_start + rounds * round_size);
    let n_threads = threads
        .or_else(|| std::thread::available_parallelism().map(|n| n.get()).ok())
        .unwrap_or(1)
        .max(1);

    // Only the range holding the prefix can make stopping decisions.
    let adaptive = first_round == 0;
    let mut est = Welford::new();
    let mut samples: Vec<f64> = Vec::new();
    let mut next_k = k_start;
    let mut stopped_early = false;

    // Per-worker scratch, reused across every iteration and round this
    // worker executes: realized-matrix buffers and batch activation
    // planes. Worker `t` always takes scratch `t`, and an iteration's
    // result is a pure function of `(seed, k)` regardless of buffer
    // reuse, so this cannot perturb any sample.
    let mut scratches: Vec<IterScratch> = (0..n_threads).map(|_| IterScratch::default()).collect();

    while next_k < k_end {
        let n_this = round_size.min(k_end - next_k);
        let mut round = vec![0.0f64; n_this];
        let chunk = n_this.div_ceil(n_threads.min(n_this));
        std::thread::scope(|scope| {
            for ((t, out_chunk), scratch) in round
                .chunks_mut(chunk)
                .enumerate()
                .zip(scratches.iter_mut())
            {
                let start = next_k + t * chunk;
                scope.spawn(move || {
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        let mut rng = iteration_rng(seed, start + off);
                        network.realize_into(
                            plan,
                            effects,
                            &mut rng,
                            &mut scratch.realize,
                            &mut scratch.matrices,
                        );
                        *slot = batch.accuracy_with_profile(
                            network,
                            &scratch.matrices,
                            kernel,
                            &mut scratch.batch,
                        );
                    }
                });
            }
        });
        samples.extend_from_slice(&round);
        next_k += n_this;
        if adaptive {
            for &s in &round {
                est.push(s);
            }
            if stop.should_stop(&est) {
                stopped_early = next_k < cap;
                break;
            }
        }
    }

    RangeResult {
        samples,
        stopped_early,
    }
}

/// Runs one sweep point to completion.
///
/// This is the engine's primitive — the spec-level driver
/// [`run_scenario`] reduces to calls of this function. With
/// [`StopRule::fixed`]`(n)` the returned `samples` are bit-identical to
/// `spnn_core::mc_accuracy(network, plan, effects, …, n, seed).samples`.
///
/// # Panics
///
/// Panics if `round_size == 0` or the stop rule's cap is zero.
#[allow(clippy::too_many_arguments)] // the engine's primitive: each knob is load-bearing
pub fn run_point(
    network: &PhotonicNetwork,
    plan: &PerturbationPlan,
    effects: &HardwareEffects,
    batch: &TestBatch,
    stop: &StopRule,
    round_size: usize,
    seed: u64,
    threads: Option<usize>,
    kernel: KernelProfile,
) -> PointResult {
    assert!(round_size > 0, "round_size must be positive");
    assert!(stop.max_iterations > 0, "need at least one iteration");
    let total_rounds = stop.max_iterations.div_ceil(round_size);
    let r = run_point_range(
        network,
        plan,
        effects,
        batch,
        stop,
        round_size,
        seed,
        threads,
        kernel,
        0,
        total_rounds,
    );

    // Final statistics via the same aggregation as the per-sample
    // reference, so fixed-count engine results equal `mc_accuracy` exactly.
    let mc = McResult::from_samples(r.samples);
    PointResult {
        mean: mc.mean,
        std_dev: mc.std_dev,
        moe95: mc.margin_of_error_95(),
        samples: mc.samples,
        stopped_early: r.stopped_early,
    }
}

/// Per-topology context of a scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySummary {
    /// Topology name (`clements` / `reck`).
    pub topology: String,
    /// Software (pre-mapping) test accuracy.
    pub software_accuracy: f64,
    /// Ideal (σ = 0) hardware accuracy.
    pub nominal_accuracy: f64,
}

/// One row of a scenario report: a sweep point plus its estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Topology the point ran on.
    pub topology: String,
    /// The point's labels (same keys for every row of a report).
    pub labels: Vec<(String, String)>,
    /// Mean accuracy.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// 95 % margin of error.
    pub moe95: f64,
    /// Iterations actually spent.
    pub iterations: usize,
    /// Whether the adaptive rule stopped early.
    pub stopped_early: bool,
}

impl SweepRow {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses label `key` as `f64` (e.g. `sigma`).
    pub fn label_f64(&self, key: &str) -> Option<f64> {
        self.label(key).and_then(|v| v.parse().ok())
    }
}

/// Owned copies of a [`WorkItem`]'s labels (queue labels use static keys;
/// reports and partials carry owned strings so they survive (de)serialization).
pub(crate) fn owned_labels(item: &WorkItem) -> Vec<(String, String)> {
    item.labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), v.clone()))
        .collect()
}

/// A completed scenario: context plus one row per sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Per-topology training/mapping context.
    pub topologies: Vec<TopologySummary>,
    /// Sweep results in queue order.
    pub rows: Vec<SweepRow>,
}

impl EngineReport {
    /// Rows restricted to one topology.
    pub fn rows_for<'a>(&'a self, topology: &'a str) -> impl Iterator<Item = &'a SweepRow> + 'a {
        self.rows.iter().filter(move |r| r.topology == topology)
    }

    /// Total Monte-Carlo iterations spent across all points.
    pub fn total_iterations(&self) -> usize {
        self.rows.iter().map(|r| r.iterations).sum()
    }
}

/// Failures of a scenario run.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The spec is internally inconsistent.
    Invalid(String),
    /// Photonic mapping failed.
    Mapping(SpnnError),
    /// The run was aborted between sweep points by a cancelled
    /// [`crate::exec::CancelToken`] (request abort, budget violation) —
    /// see [`run_scenario_streaming_cancellable`]. The caller that
    /// cancelled the token knows why; this variant only reports that the
    /// run stopped before completing.
    Cancelled,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Invalid(m) => write!(f, "invalid scenario: {m}"),
            EngineError::Mapping(e) => write!(f, "photonic mapping failed: {e}"),
            EngineError::Cancelled => write!(f, "run cancelled"),
        }
    }
}

impl std::error::Error for EngineError {}

/// One fully-resolved sweep point of the **global** queue: the
/// concatenation, in spec topology order, of every topology's compiled
/// queue. The position in this list is the point's global index — the
/// coordinate system of shard plans and partial reports.
pub(crate) struct PreparedPoint {
    pub(crate) topology: &'static str,
    pub(crate) hardware: Arc<PhotonicNetwork>,
    pub(crate) item: WorkItem,
}

/// Everything a scenario run needs after training/mapping and queue
/// compilation — shared by the full and the sharded drivers.
pub(crate) struct PreparedScenario {
    pub(crate) name: String,
    pub(crate) batch: TestBatch,
    pub(crate) stop: StopRule,
    pub(crate) round_size: usize,
    pub(crate) topologies: Vec<TopologySummary>,
    pub(crate) points: Vec<PreparedPoint>,
    pub(crate) ctx: Arc<crate::cache::TrainedContext>,
}

/// Validates the spec, obtains the trained context (cache or fresh),
/// generates the test split, maps every topology and compiles the global
/// work queue. Pure function of the spec — identical whether invoked by
/// the full run, by any shard, or in any process.
pub(crate) fn prepare(
    spec: &ScenarioSpec,
    config: &EngineConfig,
    cache: &ContextCache,
) -> Result<PreparedScenario, EngineError> {
    spec.validate().map_err(EngineError::Invalid)?;

    // Time context acquisition and label the phase by what actually
    // happened: a fresh training run or a cache load. The counters are
    // per-cache, so the delta is exact for this call.
    let trains_before = cache.stats().trains;
    let ctx_timer = std::time::Instant::now();
    let ctx = cache.get_or_train(spec, config.verbose);
    let ctx_elapsed = ctx_timer.elapsed();
    let trained = cache.stats().trains > trains_before;
    let phase = if trained { "train" } else { "cache_load" };
    phase_histogram(&config.metrics, phase).observe_duration(ctx_elapsed);
    tevent!(
        Level::Debug,
        "engine",
        "context ready",
        scenario = &spec.name,
        phase = phase,
        seconds = ctx_elapsed.as_secs_f64(),
    );
    // Only the test split is generated here; the training split lives
    // behind the cache (its RNG stream is independent, so the test set is
    // identical either way).
    let data = SpnnDataset::generate(&DatasetConfig {
        n_train: 0,
        n_test: spec.dataset.n_test,
        crop: spec.dataset.crop,
        seed: spec.seed,
    });
    let software_accuracy = ctx
        .software()
        .accuracy(&data.test_features, &data.test_labels);
    if config.verbose {
        eprintln!(
            "[engine] {}: context {} (train acc {:.2}%, test acc {:.2}%)",
            spec.name,
            ctx.fingerprint().short(),
            ctx.train_accuracy() * 100.0,
            software_accuracy * 100.0
        );
    }
    let batch = TestBatch::new(&data.test_features, &data.test_labels);
    let stop = if spec.target_moe > 0.0 {
        StopRule::adaptive(spec.iterations, spec.min_iterations, spec.target_moe)
    } else {
        StopRule::fixed(spec.iterations)
    };

    let shuffle_seed = spec
        .train
        .shuffle_singular_values
        .then_some(spec.seed ^ 0x33);
    let mapping_span = Span::start("mapping", phase_histogram(&config.metrics, "mapping"));
    let mut topologies = Vec::with_capacity(spec.topologies.len());
    let mut points = Vec::new();
    for &topology in &spec.topologies {
        let hardware = ctx
            .mapping(topology, shuffle_seed)
            .map_err(EngineError::Mapping)?;
        // The nominal (ideal-hardware) accuracy runs through the same
        // kernel profile as the sweep, so topology summaries are
        // profile-consistent and shard-merge bit-comparisons agree. The
        // software accuracy above stays per-sample and profile-independent.
        let nominal_accuracy = batch.accuracy_with_profile(
            &hardware,
            &hardware.ideal_matrices(),
            config.kernel,
            &mut BatchScratch::default(),
        );
        let topo_name = topology_name(topology);
        topologies.push(TopologySummary {
            topology: topo_name.to_string(),
            software_accuracy,
            nominal_accuracy,
        });
        for item in compile(spec, &hardware) {
            points.push(PreparedPoint {
                topology: topo_name,
                hardware: Arc::clone(&hardware),
                item,
            });
        }
    }

    let mapping_elapsed = mapping_span.finish();
    tevent!(
        Level::Debug,
        "engine",
        "prepared",
        scenario = &spec.name,
        topologies = topologies.len(),
        points = points.len(),
        mapping_seconds = mapping_elapsed.as_secs_f64(),
    );

    Ok(PreparedScenario {
        name: spec.name.clone(),
        batch,
        stop,
        round_size: spec.round_size,
        topologies,
        points,
        ctx,
    })
}

/// Re-persists the trained context so mappings synthesized during a run
/// land on disk — the next warm load then skips SVD + mesh synthesis too.
pub(crate) fn persist_context(cache: &ContextCache, prep: &PreparedScenario, verbose: bool) {
    if let Err(e) = cache.persist(&prep.ctx) {
        if verbose {
            eprintln!("[engine] warning: could not persist trained context: {e}");
        }
    }
}

/// One milestone of a streaming scenario run, delivered to the observer
/// callback of [`run_scenario_streaming_with`] the moment it happens.
///
/// Events borrow from the running scenario; copy out whatever must
/// outlive the callback. The event stream for a given spec is itself
/// deterministic: the same spec produces the same events in the same
/// order, regardless of thread count or cache temperature.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub enum StreamEvent<'a> {
    /// Preparation finished (training/cache load, mapping, queue
    /// compilation); the sweep is about to start.
    Started {
        /// Scenario name (from the spec).
        scenario: &'a str,
        /// Number of sweep points the run will produce, in queue order.
        total_points: usize,
    },
    /// One topology's training/mapping context (emitted after `Started`,
    /// once per topology, in spec order).
    Topology(&'a TopologySummary),
    /// One sweep point completed. Rows arrive in queue order; `index` is
    /// 0-based.
    Row {
        /// 0-based position of the row in the report.
        index: usize,
        /// The completed row, exactly as it will appear in the report.
        row: &'a SweepRow,
    },
}

/// Rebuilds a [`SweepRow`] from a cached point's retained sample stream —
/// the same [`McResult::from_samples`] aggregation as the cold path, so
/// every statistic is bit-identical to the run that published the point.
pub(crate) fn row_from_cached(point: &CachedPoint) -> SweepRow {
    let mc = McResult::from_samples(point.samples.clone());
    SweepRow {
        topology: point.topology.clone(),
        labels: point.labels.clone(),
        mean: mc.mean,
        std_dev: mc.std_dev,
        moe95: mc.margin_of_error_95(),
        iterations: mc.samples.len(),
        stopped_early: point.stopped_early,
    }
}

/// Attempts to replay a whole scenario from the row cache alone: the
/// spec's manifest names every row key in queue order, and if all of them
/// are resident the report — and the full event stream — is rebuilt
/// without training, mapping, or a single Monte-Carlo iteration.
///
/// Returns `None` (emitting no events) unless **every** row is available;
/// a partial replay would reorder the stream relative to a cold run.
pub(crate) fn replay_cached_scenario(
    spec: &ScenarioSpec,
    kernel: KernelProfile,
    rc: &RowCache,
    observe: &mut dyn FnMut(StreamEvent<'_>),
) -> Option<EngineReport> {
    let manifest = rc.get_manifest(&queue_fingerprint_with(spec, kernel))?;
    let mut rows = Vec::with_capacity(manifest.row_keys.len());
    for hex in &manifest.row_keys {
        rows.push(row_from_cached(rc.get_by_hex(hex)?.as_ref()));
    }
    tevent!(
        Level::Debug,
        "rowcache",
        "scenario replayed from row cache",
        scenario = &manifest.scenario,
        rows = rows.len(),
    );
    observe(StreamEvent::Started {
        scenario: &manifest.scenario,
        total_points: rows.len(),
    });
    for t in &manifest.topologies {
        observe(StreamEvent::Topology(t));
    }
    for (i, row) in rows.iter().enumerate() {
        observe(StreamEvent::Row { index: i, row });
    }
    Some(EngineReport {
        scenario: manifest.scenario.clone(),
        topologies: manifest.topologies.clone(),
        rows,
    })
}

/// Runs a whole scenario: dataset generation, software training, photonic
/// mapping per topology, queue compilation, and the Monte-Carlo sweep.
///
/// Deterministic: the report is a pure function of `(spec)`; `config` only
/// affects wall-clock and logging. Training goes through a fresh
/// [`ContextCache`] built from `config.cache_dir` — use
/// [`run_scenarios`] (or [`run_scenario_with`] with a shared cache) to
/// train once across scenarios that share a training fingerprint.
///
/// # Errors
///
/// Returns [`EngineError`] if the spec fails validation or a weight matrix
/// cannot be mapped onto hardware (not expected for trained weights).
pub fn run_scenario(
    spec: &ScenarioSpec,
    config: &EngineConfig,
) -> Result<EngineReport, EngineError> {
    let cache = ContextCache::new(config.cache_dir.clone());
    run_scenario_with(spec, config, &cache)
}

/// Runs several scenarios through one shared trained-context cache:
/// scenarios with the same training fingerprint (dataset, architecture,
/// optimizer hyper-parameters, seed) train exactly once.
///
/// Reports come back in input order; the run fails fast on the first
/// scenario error.
///
/// # Errors
///
/// Returns the first scenario's [`EngineError`], if any.
pub fn run_scenarios(
    specs: &[ScenarioSpec],
    config: &EngineConfig,
) -> Result<Vec<EngineReport>, EngineError> {
    let cache = ContextCache::new(config.cache_dir.clone());
    specs
        .iter()
        .map(|spec| run_scenario_with(spec, config, &cache))
        .collect()
}

/// Runs one scenario against an explicit trained-context `cache` — the
/// primitive behind [`run_scenario`] and [`run_scenarios`]. The report is
/// bit-identical whether the context comes from memory, from disk, or from
/// a fresh training run.
///
/// # Errors
///
/// Returns [`EngineError`] if the spec fails validation or a weight matrix
/// cannot be mapped onto hardware (not expected for trained weights).
pub fn run_scenario_with(
    spec: &ScenarioSpec,
    config: &EngineConfig,
    cache: &ContextCache,
) -> Result<EngineReport, EngineError> {
    run_scenario_streaming_with(spec, config, cache, &mut |_| {})
}

/// Runs one scenario like [`run_scenario_with`], delivering a
/// [`StreamEvent`] to `observe` at every milestone: once preparation is
/// done, per topology summary, and per completed sweep point — the hook
/// behind `spnn serve`'s NDJSON row streaming (see [`crate::serve`]).
///
/// The returned report is the very same value the events described:
/// [`run_scenario_with`] **is** this function with a no-op observer, so a
/// report assembled from the event stream is identical — bit for bit — to
/// the batch report.
///
/// The observer runs on the calling thread, between sweep points; a slow
/// observer delays the sweep but cannot change any result.
///
/// # Errors
///
/// Returns [`EngineError`] if the spec fails validation or a weight matrix
/// cannot be mapped onto hardware. Preparation errors precede the first
/// event: once `Started` has been observed, the run can no longer fail.
pub fn run_scenario_streaming_with(
    spec: &ScenarioSpec,
    config: &EngineConfig,
    cache: &ContextCache,
    observe: &mut dyn FnMut(StreamEvent<'_>),
) -> Result<EngineReport, EngineError> {
    run_streaming_inner(spec, config, cache, None, observe)
}

/// [`run_scenario_streaming_with`] with a cooperative abort: the token is
/// polled between sweep points, and a cancelled token stops the run with
/// [`EngineError::Cancelled`] before the next point starts — the seam the
/// server's per-request budget enforcement cancels through.
///
/// Granularity is deliberately the sweep point, not the iteration: a
/// point in flight always completes, so every row that *was* emitted is
/// bit-identical to the corresponding row of an uncancelled run, and
/// already-cached rows stay valid. Note the token observes the
/// process-wide shutdown flag too (see [`CancelToken::is_cancelled`]);
/// callers that must let in-flight streams drain through a graceful
/// shutdown should use [`run_scenario_streaming_with`] instead.
///
/// # Errors
///
/// As [`run_scenario_streaming_with`], plus [`EngineError::Cancelled`]
/// when the token is cancelled mid-sweep.
pub fn run_scenario_streaming_cancellable(
    spec: &ScenarioSpec,
    config: &EngineConfig,
    cache: &ContextCache,
    cancel: &crate::exec::CancelToken,
    observe: &mut dyn FnMut(StreamEvent<'_>),
) -> Result<EngineReport, EngineError> {
    run_streaming_inner(spec, config, cache, Some(cancel), observe)
}

fn run_streaming_inner(
    spec: &ScenarioSpec,
    config: &EngineConfig,
    cache: &ContextCache,
    cancel: Option<&crate::exec::CancelToken>,
    observe: &mut dyn FnMut(StreamEvent<'_>),
) -> Result<EngineReport, EngineError> {
    if let Some(rc) = &config.row_cache {
        if let Some(report) = replay_cached_scenario(spec, config.kernel, rc, observe) {
            return Ok(report);
        }
    }
    let prep = prepare(spec, config, cache)?;
    let total = prep.points.len();
    observe(StreamEvent::Started {
        scenario: &prep.name,
        total_points: total,
    });
    for t in &prep.topologies {
        observe(StreamEvent::Topology(t));
    }
    let rctx = config
        .row_cache
        .as_ref()
        .map(|rc| (rc, RowContext::of_spec_with(spec, config.kernel)));
    let mut row_keys = Vec::with_capacity(total);
    let counters = SweepCounters::new(&config.metrics);
    let mut rows = Vec::with_capacity(total);
    for (i, point) in prep.points.iter().enumerate() {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            return Err(EngineError::Cancelled);
        }
        let key = rctx
            .as_ref()
            .map(|(_, ctx)| ctx.key(point.topology, &point.item.labels));
        if let (Some((rc, _)), Some(key)) = (&rctx, &key) {
            if let Some(cached) = rc.get(key) {
                let row = row_from_cached(&cached);
                observe(StreamEvent::Row {
                    index: i,
                    row: &row,
                });
                rows.push(row);
                row_keys.push(key.hex());
                continue;
            }
        }
        let point_span = Span::start("point", counters.rounds_hist.clone());
        let r = run_point(
            &point.hardware,
            &point.item.plan,
            &point.item.effects,
            &prep.batch,
            &prep.stop,
            prep.round_size,
            point.item.seed,
            config.threads,
            config.kernel,
        );
        let point_elapsed = point_span.finish();
        counters.record(r.samples.len(), prep.round_size, r.stopped_early);
        tevent!(
            Level::Trace,
            "engine",
            "point done",
            scenario = &prep.name,
            index = i,
            iterations = r.samples.len(),
            early_stop = r.stopped_early,
            seconds = point_elapsed.as_secs_f64(),
        );
        if config.verbose {
            let label_str = point
                .item
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            eprintln!(
                "[engine] {}/{} point {}/{total} {label_str} → {:.4} (moe {:.4}, {} iters{})",
                prep.name,
                point.topology,
                i + 1,
                r.mean,
                r.moe95,
                r.samples.len(),
                if r.stopped_early { ", early stop" } else { "" },
            );
        }
        if let (Some((rc, _)), Some(key)) = (&rctx, &key) {
            rc.put(
                key,
                CachedPoint {
                    topology: point.topology.to_string(),
                    labels: owned_labels(&point.item),
                    samples: r.samples.clone(),
                    stopped_early: r.stopped_early,
                },
            );
            row_keys.push(key.hex());
        }
        let row = SweepRow {
            topology: point.topology.to_string(),
            labels: owned_labels(&point.item),
            mean: r.mean,
            std_dev: r.std_dev,
            moe95: r.moe95,
            iterations: r.samples.len(),
            stopped_early: r.stopped_early,
        };
        observe(StreamEvent::Row {
            index: i,
            row: &row,
        });
        rows.push(row);
    }

    if let Some((rc, _)) = &rctx {
        rc.put_manifest(
            &queue_fingerprint_with(spec, config.kernel),
            RowManifest {
                scenario: prep.name.clone(),
                topologies: prep.topologies.clone(),
                row_keys,
            },
        );
    }

    persist_context(cache, &prep, config.verbose);

    Ok(EngineReport {
        scenario: prep.name,
        topologies: prep.topologies,
        rows,
    })
}

/// Runs shard `shard_index` of a `shards`-way split of a scenario and
/// returns the partial report covering exactly that slice of the global
/// work queue's rounds (see [`crate::shard`] for the plan, the format,
/// and the merge semantics).
///
/// Every shard independently prepares the scenario (training comes from
/// the shared cache when available) and executes only its assigned round
/// ranges. Merging all `shards` partials with
/// [`crate::shard::merge_partials`] yields a report bit-identical to
/// [`run_scenario_with`] — pinned by tests and by the CI `shard-merge`
/// job.
///
/// # Errors
///
/// Returns [`EngineError::Invalid`] when `shards == 0` or
/// `shard_index >= shards`, and propagates preparation errors.
pub fn run_scenario_shard_with(
    spec: &ScenarioSpec,
    config: &EngineConfig,
    cache: &ContextCache,
    shards: usize,
    shard_index: usize,
) -> Result<PartialReport, EngineError> {
    if shards == 0 {
        return Err(EngineError::Invalid("shards must be positive".into()));
    }
    if shard_index >= shards {
        return Err(EngineError::Invalid(format!(
            "shard index {shard_index} out of range for {shards} shard(s)"
        )));
    }
    let prep = prepare(spec, config, cache)?;
    let rctx = config
        .row_cache
        .as_ref()
        .map(|rc| (rc.as_ref(), RowContext::of_spec_with(spec, config.kernel)));
    let partial = execute_shard_blocks(
        &prep,
        queue_fingerprint_with(spec, config.kernel),
        config.kernel,
        shards,
        shard_index,
        config.threads,
        config.verbose,
        &config.metrics,
        rctx.as_ref().map(|(rc, ctx)| (*rc, ctx)),
    );
    persist_context(cache, &prep, config.verbose);
    Ok(partial)
}

/// Runs the contiguous unit range `[first_unit, first_unit + units)` of a
/// scenario's global **round space** and returns the partial report
/// covering exactly those rounds — the span twin of
/// [`run_scenario_shard_with`], serving the coordinator's
/// capacity-weighted plans and work-stealing re-dispatches
/// (`POST /shard?span=LO-HI`). Any partition of the round space into
/// spans merges back byte-identical to the unsharded run; overlapping
/// spans deduplicate (see [`crate::shard::MergeState`]).
///
/// # Errors
///
/// Returns [`EngineError::Invalid`] when the span is empty or overruns
/// the round space, and propagates preparation errors.
pub fn run_scenario_span_with(
    spec: &ScenarioSpec,
    config: &EngineConfig,
    cache: &ContextCache,
    first_unit: usize,
    units: usize,
) -> Result<PartialReport, EngineError> {
    if units == 0 {
        return Err(EngineError::Invalid("span must be non-empty".into()));
    }
    let prep = prepare(spec, config, cache)?;
    let rounds_per_point = sweep_rounds_per_point(&prep);
    let total: usize = rounds_per_point.iter().sum();
    if first_unit.saturating_add(units) > total {
        return Err(EngineError::Invalid(format!(
            "span {first_unit}..{} out of range for a {total}-round queue",
            first_unit.saturating_add(units)
        )));
    }
    let blocks = plan_span(&rounds_per_point, first_unit, first_unit + units);
    let rctx = config
        .row_cache
        .as_ref()
        .map(|rc| (rc.as_ref(), RowContext::of_spec_with(spec, config.kernel)));
    let partial = execute_blocks(
        &prep,
        queue_fingerprint_with(spec, config.kernel),
        config.kernel,
        1,
        0,
        &blocks,
        config.threads,
        config.verbose,
        &config.metrics,
        rctx.as_ref().map(|(rc, ctx)| (*rc, ctx)),
    );
    persist_context(cache, &prep, config.verbose);
    Ok(partial)
}

/// Attempts to serve block `[first_round, first_round + rounds)` of a
/// point from a cached full-point sample stream.
///
/// A cached point that ran to the iteration cap serves **any** block as a
/// slice of its stream. An early-stopped point retains only the samples
/// up to the stopping boundary, so it can serve only prefix blocks
/// (`first_round == 0`): a non-prefix block must speculate past samples
/// the cache never kept, and computes cold instead.
fn serve_block_from_cache(
    cached: &CachedPoint,
    cap: usize,
    round_size: usize,
    first_round: usize,
    rounds: usize,
) -> Option<RangeResult> {
    let k_start = first_round * round_size;
    let k_end = cap.min(k_start + rounds * round_size);
    let retained = cached.samples.len();
    if !cached.stopped_early {
        // Full stream on hand (retained == cap): any slice is exact.
        return Some(RangeResult {
            samples: cached.samples[k_start..k_end].to_vec(),
            stopped_early: false,
        });
    }
    if first_round != 0 {
        return None;
    }
    // Prefix block of an early-stopped point: the cold run would fold the
    // same prefix and stop at the same boundary — either inside this
    // block (serve the retained stream, report the stop) or past its end
    // (serve the full block, no stop inside it).
    Some(RangeResult {
        samples: cached.samples[..retained.min(k_end)].to_vec(),
        stopped_early: retained <= k_end,
    })
}

/// The per-point round count vector of a prepared scenario — the global
/// round space that [`plan_shard`], [`crate::shard::plan_shard_weighted`]
/// and [`plan_span`] all slice. Every point carries the same round count
/// (the iteration cap split into rounds), so peers can compute this
/// without preparing when the queue length is statically known.
pub(crate) fn sweep_rounds_per_point(prep: &PreparedScenario) -> Vec<usize> {
    let cap = prep.stop.max_iterations;
    vec![cap.div_ceil(prep.round_size); prep.points.len()]
}

/// Executes shard `shard_index` of a `shards`-way plan over an already
/// prepared scenario — the primitive shared by the per-process shard
/// entry point ([`run_scenario_shard_with`]) and by
/// [`crate::exec::LocalExecutor`], which prepares once and runs every
/// slice on its own thread.
#[allow(clippy::too_many_arguments)] // internal primitive shared by two drivers
pub(crate) fn execute_shard_blocks(
    prep: &PreparedScenario,
    queue_fp: String,
    kernel: KernelProfile,
    shards: usize,
    shard_index: usize,
    threads: Option<usize>,
    verbose: bool,
    registry: &MetricsRegistry,
    row_ctx: Option<(&RowCache, &RowContext)>,
) -> PartialReport {
    let blocks = plan_shard(&sweep_rounds_per_point(prep), shards, shard_index);
    execute_blocks(
        prep,
        queue_fp,
        kernel,
        shards,
        shard_index,
        &blocks,
        threads,
        verbose,
        registry,
        row_ctx,
    )
}

/// Executes an explicit block list over a prepared scenario — the
/// planner-agnostic primitive beneath [`execute_shard_blocks`] and the
/// local half of mixed fleet dispatch (arbitrary spans, weighted slices,
/// stolen sub-spans). `shards`/`shard_index` are recorded in the partial
/// header for diagnostics only; the merge derives coverage from the
/// blocks themselves.
#[allow(clippy::too_many_arguments)] // internal primitive shared by several drivers
pub(crate) fn execute_blocks(
    prep: &PreparedScenario,
    queue_fp: String,
    kernel: KernelProfile,
    shards: usize,
    shard_index: usize,
    blocks: &[ShardBlock],
    threads: Option<usize>,
    verbose: bool,
    registry: &MetricsRegistry,
    row_ctx: Option<(&RowCache, &RowContext)>,
) -> PartialReport {
    let cap = prep.stop.max_iterations;
    let counters = SweepCounters::new(registry);
    let mut points = Vec::with_capacity(blocks.len());
    for (i, block) in blocks.iter().enumerate() {
        let point = &prep.points[block.point];
        let key = row_ctx
            .as_ref()
            .map(|(_, ctx)| ctx.key(point.topology, &point.item.labels));
        let served = match (&row_ctx, &key) {
            (Some((rc, _)), Some(key)) => rc.get(key).and_then(|cached| {
                serve_block_from_cache(
                    &cached,
                    cap,
                    prep.round_size,
                    block.first_round,
                    block.rounds,
                )
            }),
            _ => None,
        };
        let from_cache = served.is_some();
        let r = match served {
            Some(r) => {
                tevent!(
                    Level::Trace,
                    "rowcache",
                    "shard block served from row cache",
                    scenario = &prep.name,
                    shard = shard_index,
                    point = block.point,
                    iterations = r.samples.len(),
                );
                r
            }
            None => {
                let block_span = Span::start("shard_block", counters.rounds_hist.clone());
                let r = run_point_range(
                    &point.hardware,
                    &point.item.plan,
                    &point.item.effects,
                    &prep.batch,
                    &prep.stop,
                    prep.round_size,
                    point.item.seed,
                    threads,
                    kernel,
                    block.first_round,
                    block.rounds,
                );
                let block_elapsed = block_span.finish();
                counters.record(r.samples.len(), prep.round_size, r.stopped_early);
                tevent!(
                    Level::Trace,
                    "engine",
                    "shard block done",
                    scenario = &prep.name,
                    shard = shard_index,
                    point = block.point,
                    iterations = r.samples.len(),
                    seconds = block_elapsed.as_secs_f64(),
                );
                r
            }
        };
        // A cold prefix block that alone determined the whole point (it
        // stopped early, or it ran every round to the cap) is a complete
        // sample stream — publish it for the next overlapping sweep.
        if !from_cache && block.first_round == 0 && (r.stopped_early || r.samples.len() == cap) {
            if let (Some((rc, _)), Some(key)) = (&row_ctx, &key) {
                rc.put(
                    key,
                    CachedPoint {
                        topology: point.topology.to_string(),
                        labels: owned_labels(&point.item),
                        samples: r.samples.clone(),
                        stopped_early: r.stopped_early,
                    },
                );
            }
        }
        if verbose {
            eprintln!(
                "[engine] {} shard {shard_index}/{shards}: block {}/{} point {} rounds {}..{} → {} sample(s){}",
                prep.name,
                i + 1,
                blocks.len(),
                block.point,
                block.first_round,
                block.first_round + block.rounds,
                r.samples.len(),
                if r.stopped_early { " (early stop)" } else { "" },
            );
        }
        let mut est = Welford::new();
        for &s in &r.samples {
            est.push(s);
        }
        points.push(PartialPoint {
            index: block.point,
            topology: point.topology.to_string(),
            labels: owned_labels(&point.item),
            seed: point.item.seed,
            first_iteration: block.first_round * prep.round_size,
            stopped_early: r.stopped_early,
            welford: est,
            samples: r.samples,
        });
    }

    PartialReport {
        scenario: prep.name.clone(),
        queue_fingerprint: queue_fp,
        kernel,
        shards,
        shard_index,
        total_points: prep.points.len(),
        round_size: prep.round_size,
        iterations: prep.stop.max_iterations,
        min_iterations: prep.stop.min_iterations,
        target_moe: prep.stop.target_moe,
        topologies: prep.topologies.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnn_core::{mc_accuracy, MeshTopology};
    use spnn_linalg::C64;
    use spnn_neural::ComplexNetwork;
    use spnn_photonics::UncertaintySpec;

    fn setup() -> (PhotonicNetwork, Vec<Vec<C64>>, Vec<usize>) {
        let sw = ComplexNetwork::new(&[4, 4, 3], 31);
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let features: Vec<Vec<C64>> = (0..12)
            .map(|i| {
                (0..4)
                    .map(|j| {
                        C64::new(
                            ((i * 7 + j * 3) % 5) as f64 * 0.2,
                            ((i + j) % 3) as f64 * 0.3,
                        )
                    })
                    .collect()
            })
            .collect();
        let ideal = hw.ideal_matrices();
        let labels: Vec<usize> = features
            .iter()
            .map(|f| hw.classify_with(&ideal, f))
            .collect();
        (hw, features, labels)
    }

    #[test]
    fn fixed_count_run_point_matches_mc_accuracy_bitwise() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.06));
        let fx = HardwareEffects::default();
        let reference = mc_accuracy(&hw, &plan, &fx, &xs, &ys, 10, 99);
        let engine = run_point(
            &hw,
            &plan,
            &fx,
            &batch,
            &StopRule::fixed(10),
            4,
            99,
            Some(2),
            KernelProfile::Reference,
        );
        assert_eq!(engine.samples, reference.samples);
        assert_eq!(engine.mean.to_bits(), reference.mean.to_bits());
        assert_eq!(engine.std_dev.to_bits(), reference.std_dev.to_bits());
        assert!(!engine.stopped_early);
    }

    #[test]
    fn range_samples_are_slices_of_the_full_run() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
        let fx = HardwareEffects::default();
        let stop = StopRule::fixed(14); // cap not a multiple of round_size
        let full = run_point(
            &hw,
            &plan,
            &fx,
            &batch,
            &stop,
            4,
            7,
            Some(2),
            KernelProfile::Reference,
        );
        assert_eq!(full.samples.len(), 14);
        // Ranges [0,2), [2,3), [3,4) (the last round is short: 2 iters).
        for (first, rounds, lo, hi) in [
            (0usize, 2usize, 0usize, 8usize),
            (2, 1, 8, 12),
            (3, 1, 12, 14),
        ] {
            let r = run_point_range(
                &hw,
                &plan,
                &fx,
                &batch,
                &stop,
                4,
                7,
                Some(3),
                KernelProfile::Reference,
                first,
                rounds,
            );
            let want: Vec<u64> = full.samples[lo..hi].iter().map(|s| s.to_bits()).collect();
            let got: Vec<u64> = r.samples.iter().map(|s| s.to_bits()).collect();
            assert_eq!(got, want, "range [{first}, {first}+{rounds})");
            assert!(!r.stopped_early);
        }
    }

    #[test]
    fn non_prefix_range_never_stops_early() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        // Zero variance (no perturbation) satisfies any target immediately,
        // but a range that does not hold the prefix must not act on it.
        let stop = StopRule::adaptive(32, 4, 0.01);
        let r = run_point_range(
            &hw,
            &PerturbationPlan::None,
            &HardwareEffects::default(),
            &batch,
            &stop,
            4,
            3,
            Some(1),
            KernelProfile::Reference,
            2,
            3,
        );
        assert_eq!(r.samples.len(), 12, "speculative range runs all rounds");
        assert!(!r.stopped_early);
    }

    #[test]
    fn zero_variance_point_stops_at_min_iterations() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        // No uncertainty → every iteration yields the same accuracy.
        let r = run_point(
            &hw,
            &PerturbationPlan::None,
            &HardwareEffects::default(),
            &batch,
            &StopRule::adaptive(100, 6, 0.01),
            4,
            1,
            Some(1),
            KernelProfile::Reference,
        );
        // Stops at the first round boundary ≥ min_iterations = 6 → 8.
        assert_eq!(r.samples.len(), 8);
        assert!(r.stopped_early);
        assert!(r.moe95 <= 0.01);
    }

    #[test]
    fn early_stop_never_violates_the_moe_target() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
        let fx = HardwareEffects::default();
        let stop = StopRule::adaptive(64, 8, 0.04);
        let r = run_point(
            &hw,
            &plan,
            &fx,
            &batch,
            &stop,
            8,
            5,
            Some(2),
            KernelProfile::Reference,
        );
        if r.stopped_early {
            assert!(r.moe95 <= 0.04, "stopped early at moe {} > target", r.moe95);
        } else {
            assert_eq!(r.samples.len(), 64);
        }
    }

    #[test]
    fn report_accessors() {
        let row = SweepRow {
            topology: "clements".into(),
            labels: vec![
                ("sigma".into(), "0.05".into()),
                ("mode".into(), "both".into()),
            ],
            mean: 0.5,
            std_dev: 0.1,
            moe95: 0.02,
            iterations: 10,
            stopped_early: false,
        };
        assert_eq!(row.label("mode"), Some("both"));
        assert_eq!(row.label_f64("sigma"), Some(0.05));
        assert_eq!(row.label("nope"), None);
        let report = EngineReport {
            scenario: "t".into(),
            topologies: vec![],
            rows: vec![row],
        };
        assert_eq!(report.total_iterations(), 10);
        assert_eq!(report.rows_for("clements").count(), 1);
        assert_eq!(report.rows_for("reck").count(), 0);
    }
}
