//! The Monte-Carlo driver: deterministic, multi-threaded, adaptive.
//!
//! Execution model per sweep point:
//!
//! 1. Iterations are processed in **rounds** of `spec.round_size`. Within a
//!    round, iterations are split across worker threads; iteration `k`
//!    derives its RNG purely from `(seed, k)` via
//!    [`spnn_core::monte_carlo::iteration_rng`], so the schedule cannot
//!    affect any sample.
//! 2. After each round the samples are folded **in iteration order** into a
//!    [`Welford`] estimator and the [`StopRule`] is consulted. Stopping
//!    decisions therefore happen at thread-count-independent boundaries:
//!    the result is bit-identical for 1, 2 or 64 workers.
//! 3. Each iteration realizes the network's transfer matrices **once** and
//!    pushes the whole test set through as matrix-matrix products
//!    ([`TestBatch::accuracy_with`]), bit-identical to the seed's
//!    per-sample `mc_accuracy` path.

use crate::batched::TestBatch;
use crate::cache::ContextCache;
use crate::estimator::{StopRule, Welford};
use crate::queue::compile;
use crate::spec::{topology_name, ScenarioSpec};
use spnn_core::monte_carlo::iteration_rng;
use spnn_core::network::SpnnError;
use spnn_core::{HardwareEffects, McResult, PerturbationPlan, PhotonicNetwork};
use spnn_dataset::{DatasetConfig, SpnnDataset};
use std::fmt;
use std::path::PathBuf;

/// Execution knobs that must not change results — only speed.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker threads per sweep point (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Print per-point progress to stderr.
    pub verbose: bool,
    /// Trained-context cache directory. `None` (the default) keeps the
    /// cache in memory only; results are bit-identical either way (see
    /// [`crate::cache`]).
    pub cache_dir: Option<PathBuf>,
}

/// The outcome of one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Per-iteration accuracies in iteration order.
    pub samples: Vec<f64>,
    /// Mean accuracy.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// 95 % margin of error of the mean.
    pub moe95: f64,
    /// `true` when the adaptive rule stopped before the iteration cap.
    pub stopped_early: bool,
}

/// Runs one sweep point to completion.
///
/// This is the engine's primitive — the spec-level driver
/// [`run_scenario`] reduces to calls of this function. With
/// [`StopRule::fixed`]`(n)` the returned `samples` are bit-identical to
/// `spnn_core::mc_accuracy(network, plan, effects, …, n, seed).samples`.
///
/// # Panics
///
/// Panics if `round_size == 0` or the stop rule's cap is zero.
#[allow(clippy::too_many_arguments)] // the engine's primitive: each knob is load-bearing
pub fn run_point(
    network: &PhotonicNetwork,
    plan: &PerturbationPlan,
    effects: &HardwareEffects,
    batch: &TestBatch,
    stop: &StopRule,
    round_size: usize,
    seed: u64,
    threads: Option<usize>,
) -> PointResult {
    assert!(round_size > 0, "round_size must be positive");
    assert!(stop.max_iterations > 0, "need at least one iteration");
    let n_threads = threads
        .or_else(|| std::thread::available_parallelism().map(|n| n.get()).ok())
        .unwrap_or(1)
        .max(1);

    let mut est = Welford::new();
    let mut samples: Vec<f64> = Vec::new();
    let mut next_k = 0usize;
    let mut stopped_early = false;

    while next_k < stop.max_iterations {
        let n_this = round_size.min(stop.max_iterations - next_k);
        let mut round = vec![0.0f64; n_this];
        let chunk = n_this.div_ceil(n_threads.min(n_this));
        std::thread::scope(|scope| {
            for (t, out_chunk) in round.chunks_mut(chunk).enumerate() {
                let start = next_k + t * chunk;
                scope.spawn(move || {
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        let mut rng = iteration_rng(seed, start + off);
                        let matrices = network.realize(plan, effects, &mut rng);
                        *slot = batch.accuracy_with(network, &matrices);
                    }
                });
            }
        });
        for &s in &round {
            est.push(s);
        }
        samples.extend_from_slice(&round);
        next_k += n_this;
        if stop.should_stop(&est) {
            stopped_early = next_k < stop.max_iterations;
            break;
        }
    }

    // Final statistics via the same aggregation as the per-sample
    // reference, so fixed-count engine results equal `mc_accuracy` exactly.
    let mc = McResult::from_samples(samples);
    PointResult {
        mean: mc.mean,
        std_dev: mc.std_dev,
        moe95: mc.margin_of_error_95(),
        samples: mc.samples,
        stopped_early,
    }
}

/// Per-topology context of a scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySummary {
    /// Topology name (`clements` / `reck`).
    pub topology: String,
    /// Software (pre-mapping) test accuracy.
    pub software_accuracy: f64,
    /// Ideal (σ = 0) hardware accuracy.
    pub nominal_accuracy: f64,
}

/// One row of a scenario report: a sweep point plus its estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Topology the point ran on.
    pub topology: String,
    /// The point's labels (same keys for every row of a report).
    pub labels: Vec<(&'static str, String)>,
    /// Mean accuracy.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// 95 % margin of error.
    pub moe95: f64,
    /// Iterations actually spent.
    pub iterations: usize,
    /// Whether the adaptive rule stopped early.
    pub stopped_early: bool,
}

impl SweepRow {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses label `key` as `f64` (e.g. `sigma`).
    pub fn label_f64(&self, key: &str) -> Option<f64> {
        self.label(key).and_then(|v| v.parse().ok())
    }
}

/// A completed scenario: context plus one row per sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Per-topology training/mapping context.
    pub topologies: Vec<TopologySummary>,
    /// Sweep results in queue order.
    pub rows: Vec<SweepRow>,
}

impl EngineReport {
    /// Rows restricted to one topology.
    pub fn rows_for<'a>(&'a self, topology: &'a str) -> impl Iterator<Item = &'a SweepRow> + 'a {
        self.rows.iter().filter(move |r| r.topology == topology)
    }

    /// Total Monte-Carlo iterations spent across all points.
    pub fn total_iterations(&self) -> usize {
        self.rows.iter().map(|r| r.iterations).sum()
    }
}

/// Failures of a scenario run.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The spec is internally inconsistent.
    Invalid(String),
    /// Photonic mapping failed.
    Mapping(SpnnError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Invalid(m) => write!(f, "invalid scenario: {m}"),
            EngineError::Mapping(e) => write!(f, "photonic mapping failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Runs a whole scenario: dataset generation, software training, photonic
/// mapping per topology, queue compilation, and the Monte-Carlo sweep.
///
/// Deterministic: the report is a pure function of `(spec)`; `config` only
/// affects wall-clock and logging. Training goes through a fresh
/// [`ContextCache`] built from `config.cache_dir` — use
/// [`run_scenarios`] (or [`run_scenario_with`] with a shared cache) to
/// train once across scenarios that share a training fingerprint.
///
/// # Errors
///
/// Returns [`EngineError`] if the spec fails validation or a weight matrix
/// cannot be mapped onto hardware (not expected for trained weights).
pub fn run_scenario(
    spec: &ScenarioSpec,
    config: &EngineConfig,
) -> Result<EngineReport, EngineError> {
    let cache = ContextCache::new(config.cache_dir.clone());
    run_scenario_with(spec, config, &cache)
}

/// Runs several scenarios through one shared trained-context cache:
/// scenarios with the same training fingerprint (dataset, architecture,
/// optimizer hyper-parameters, seed) train exactly once.
///
/// Reports come back in input order; the run fails fast on the first
/// scenario error.
///
/// # Errors
///
/// Returns the first scenario's [`EngineError`], if any.
pub fn run_scenarios(
    specs: &[ScenarioSpec],
    config: &EngineConfig,
) -> Result<Vec<EngineReport>, EngineError> {
    let cache = ContextCache::new(config.cache_dir.clone());
    specs
        .iter()
        .map(|spec| run_scenario_with(spec, config, &cache))
        .collect()
}

/// Runs one scenario against an explicit trained-context `cache` — the
/// primitive behind [`run_scenario`] and [`run_scenarios`]. The report is
/// bit-identical whether the context comes from memory, from disk, or from
/// a fresh training run.
///
/// # Errors
///
/// Returns [`EngineError`] if the spec fails validation or a weight matrix
/// cannot be mapped onto hardware (not expected for trained weights).
pub fn run_scenario_with(
    spec: &ScenarioSpec,
    config: &EngineConfig,
    cache: &ContextCache,
) -> Result<EngineReport, EngineError> {
    spec.validate().map_err(EngineError::Invalid)?;

    let ctx = cache.get_or_train(spec, config.verbose);
    // Only the test split is generated here; the training split lives
    // behind the cache (its RNG stream is independent, so the test set is
    // identical either way).
    let data = SpnnDataset::generate(&DatasetConfig {
        n_train: 0,
        n_test: spec.dataset.n_test,
        crop: spec.dataset.crop,
        seed: spec.seed,
    });
    let software_accuracy = ctx
        .software()
        .accuracy(&data.test_features, &data.test_labels);
    if config.verbose {
        eprintln!(
            "[engine] {}: context {} (train acc {:.2}%, test acc {:.2}%)",
            spec.name,
            ctx.fingerprint().short(),
            ctx.train_accuracy() * 100.0,
            software_accuracy * 100.0
        );
    }
    let batch = TestBatch::new(&data.test_features, &data.test_labels);
    let stop = if spec.target_moe > 0.0 {
        StopRule::adaptive(spec.iterations, spec.min_iterations, spec.target_moe)
    } else {
        StopRule::fixed(spec.iterations)
    };

    let shuffle_seed = spec
        .train
        .shuffle_singular_values
        .then_some(spec.seed ^ 0x33);
    let mut topologies = Vec::with_capacity(spec.topologies.len());
    let mut rows = Vec::new();
    for &topology in &spec.topologies {
        let hardware = ctx
            .mapping(topology, shuffle_seed)
            .map_err(EngineError::Mapping)?;
        let nominal_accuracy = batch.accuracy_with(&hardware, &hardware.ideal_matrices());
        let topo_name = topology_name(topology);
        topologies.push(TopologySummary {
            topology: topo_name.to_string(),
            software_accuracy,
            nominal_accuracy,
        });

        let queue = compile(spec, &hardware);
        let total = queue.len();
        for (i, item) in queue.into_iter().enumerate() {
            let r = run_point(
                &hardware,
                &item.plan,
                &item.effects,
                &batch,
                &stop,
                spec.round_size,
                item.seed,
                config.threads,
            );
            if config.verbose {
                let label_str = item
                    .labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                eprintln!(
                    "[engine] {}/{topo_name} point {}/{total} {label_str} → {:.4} (moe {:.4}, {} iters{})",
                    spec.name,
                    i + 1,
                    r.mean,
                    r.moe95,
                    r.samples.len(),
                    if r.stopped_early { ", early stop" } else { "" },
                );
            }
            rows.push(SweepRow {
                topology: topo_name.to_string(),
                labels: item.labels,
                mean: r.mean,
                std_dev: r.std_dev,
                moe95: r.moe95,
                iterations: r.samples.len(),
                stopped_early: r.stopped_early,
            });
        }
    }

    // Re-persist so mappings synthesized during this run land on disk —
    // the next warm load then skips SVD + mesh synthesis as well.
    if let Err(e) = cache.persist(&ctx) {
        if config.verbose {
            eprintln!("[engine] warning: could not persist trained context: {e}");
        }
    }

    Ok(EngineReport {
        scenario: spec.name.clone(),
        topologies,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnn_core::{mc_accuracy, MeshTopology};
    use spnn_linalg::C64;
    use spnn_neural::ComplexNetwork;
    use spnn_photonics::UncertaintySpec;

    fn setup() -> (PhotonicNetwork, Vec<Vec<C64>>, Vec<usize>) {
        let sw = ComplexNetwork::new(&[4, 4, 3], 31);
        let hw = PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap();
        let features: Vec<Vec<C64>> = (0..12)
            .map(|i| {
                (0..4)
                    .map(|j| {
                        C64::new(
                            ((i * 7 + j * 3) % 5) as f64 * 0.2,
                            ((i + j) % 3) as f64 * 0.3,
                        )
                    })
                    .collect()
            })
            .collect();
        let ideal = hw.ideal_matrices();
        let labels: Vec<usize> = features
            .iter()
            .map(|f| hw.classify_with(&ideal, f))
            .collect();
        (hw, features, labels)
    }

    #[test]
    fn fixed_count_run_point_matches_mc_accuracy_bitwise() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.06));
        let fx = HardwareEffects::default();
        let reference = mc_accuracy(&hw, &plan, &fx, &xs, &ys, 10, 99);
        let engine = run_point(
            &hw,
            &plan,
            &fx,
            &batch,
            &StopRule::fixed(10),
            4,
            99,
            Some(2),
        );
        assert_eq!(engine.samples, reference.samples);
        assert_eq!(engine.mean.to_bits(), reference.mean.to_bits());
        assert_eq!(engine.std_dev.to_bits(), reference.std_dev.to_bits());
        assert!(!engine.stopped_early);
    }

    #[test]
    fn zero_variance_point_stops_at_min_iterations() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        // No uncertainty → every iteration yields the same accuracy.
        let r = run_point(
            &hw,
            &PerturbationPlan::None,
            &HardwareEffects::default(),
            &batch,
            &StopRule::adaptive(100, 6, 0.01),
            4,
            1,
            Some(1),
        );
        // Stops at the first round boundary ≥ min_iterations = 6 → 8.
        assert_eq!(r.samples.len(), 8);
        assert!(r.stopped_early);
        assert!(r.moe95 <= 0.01);
    }

    #[test]
    fn early_stop_never_violates_the_moe_target() {
        let (hw, xs, ys) = setup();
        let batch = TestBatch::new(&xs, &ys);
        let plan = PerturbationPlan::global(UncertaintySpec::both(0.05));
        let fx = HardwareEffects::default();
        let stop = StopRule::adaptive(64, 8, 0.04);
        let r = run_point(&hw, &plan, &fx, &batch, &stop, 8, 5, Some(2));
        if r.stopped_early {
            assert!(r.moe95 <= 0.04, "stopped early at moe {} > target", r.moe95);
        } else {
            assert_eq!(r.samples.len(), 64);
        }
    }

    #[test]
    fn report_accessors() {
        let row = SweepRow {
            topology: "clements".into(),
            labels: vec![("sigma", "0.05".into()), ("mode", "both".into())],
            mean: 0.5,
            std_dev: 0.1,
            moe95: 0.02,
            iterations: 10,
            stopped_early: false,
        };
        assert_eq!(row.label("mode"), Some("both"));
        assert_eq!(row.label_f64("sigma"), Some(0.05));
        assert_eq!(row.label("nope"), None);
        let report = EngineReport {
            scenario: "t".into(),
            topologies: vec![],
            rows: vec![row],
        };
        assert_eq!(report.total_iterations(), 10);
        assert_eq!(report.rows_for("clements").count(), 1);
        assert_eq!(report.rows_for("reck").count(), 0);
    }
}
