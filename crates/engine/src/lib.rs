//! `spnn-engine` — a batched, adaptive, deterministic Monte-Carlo
//! simulation engine for silicon-photonic neural networks.
//!
//! The paper estimates accuracy-under-uncertainty with 1000-iteration
//! Monte-Carlo sweeps (§III-D). The seed repository ran every sweep point
//! through a fixed-count, per-figure ad-hoc loop; this crate replaces those
//! loops with one reusable engine:
//!
//! - [`spec::ScenarioSpec`] — a declarative description of a whole
//!   experiment campaign: sweep grids over perturbation plans × hardware
//!   effects × mesh topologies, serializable to/from a simple text format
//!   (`*.scn` files, see `scenarios/` at the workspace root).
//! - [`queue`] — compiles a spec into a flat work queue of fully-resolved
//!   [`queue::WorkItem`]s (one per sweep point).
//! - [`batched::TestBatch`] — the batched forward path: each realized
//!   hardware sample's transfer matrices are computed once per iteration
//!   and the whole test set is pushed through as tiled split-plane
//!   matrix-matrix products that preserve `CMatrix::mul_vec`'s
//!   accumulation order, bit-identical to the per-sample `mc_accuracy`
//!   reference.
//! - [`estimator`] — Welford-style streaming mean/variance per sweep point
//!   with **adaptive early termination**: iteration stops at a round
//!   boundary once the 95 % margin of error falls below the spec's target.
//! - [`runner`] — the driver: deterministic multi-threaded execution using
//!   the per-iteration `splitmix64` seeding of
//!   `spnn_core::monte_carlo`, so results are bit-identical for any
//!   worker-thread count.
//! - [`report`] — CSV/JSON emission for downstream plotting.
//! - [`presets`] — built-in scenarios reproducing the paper's figures
//!   (Fig. 4 / EXP 1, Fig. 5 / EXP 2, quantization/thermal/topology
//!   ablations), used by the `spnn` CLI and the `spnn-bench` binaries.
//! - [`cache`] — the trained-context cache: scenarios sharing a training
//!   [`cache::Fingerprint`] (dataset, architecture, optimizer
//!   hyper-parameters, seed) train **once**, in-memory within a run and
//!   on disk across runs, with bit-identical results either way.
//! - [`rowcache`] — the point-level result cache (the "scenario CDN"):
//!   every sweep row is a pure function of the spec, so finished rows are
//!   content-addressed by [`rowcache::RowKey`] and memoized in a
//!   two-tier [`rowcache::RowCache`] (in-memory LRU + optional shared
//!   disk dir with the same checksummed atomic-write discipline as
//!   [`cache`]). The runner consults it before any Monte-Carlo work, the
//!   coordinator before any dispatch; overlapping sweeps only compute
//!   their delta and replayed reports stay byte-identical.
//! - [`shard`] — distributed shard-and-merge execution: a deterministic
//!   planner partitions the compiled queue's rounds across `k` processes
//!   (`spnn run --shards k --shard-index i`, or `--shards k --spawn` for
//!   a local process pool), each writes a versioned JSON
//!   [`shard::PartialReport`], and [`shard::merge_partials`]
//!   (`spnn merge`) validates coverage and recombines them into a report
//!   **bit-identical** to the unsharded run — enforced by CI on every
//!   push.
//! - [`exec`] — the Executor layer: [`exec::LocalExecutor`] (in-process
//!   threads), [`exec::SpawnExecutor`] (child processes), and
//!   [`exec::RemoteExecutor`] (worker `spnn serve` instances over
//!   `POST /shard`, with retry-on-another-worker) behind one trait;
//!   [`exec::run_distributed`] merges partials **as they arrive**
//!   through [`shard::MergeState`] and streams rows in prefix order —
//!   byte-identical to the unsharded run for every executor.
//! - [`serve`] — the long-lived scenario service (`spnn serve`): `POST`
//!   a spec, receive per-point rows as **NDJSON the moment they
//!   complete** (or CSV via `?format=csv`), over a dependency-free
//!   [`http`] layer; one process-lifetime [`cache::ContextCache`] makes
//!   repeat requests skip training, [`serve::assemble_report`] rebuilds
//!   the exact batch report from a completed stream, `--workers-from`
//!   turns the service into a streaming coordinator over remote
//!   workers, and SIGTERM drains gracefully.
//! - [`metrics`] — a dependency-free [`metrics::MetricsRegistry`]
//!   (atomic counters, gauges, fixed-bucket histograms) rendered in the
//!   Prometheus text exposition format; every server exposes its own
//!   registry at `GET /metrics`, and `spnn run --stats` prints the
//!   process-global one as an end-of-run phase table.
//! - [`trace`] — structured key=value event lines on stderr (filtered
//!   by `SPNN_LOG`, JSON lines via `SPNN_LOG_FORMAT=json` or
//!   `spnn serve --log-json`) and [`trace::Span`] RAII timers that feed
//!   the registry's histograms; purely observational, so reports stay
//!   bit-identical at any verbosity.
//!
//! The guides under `docs/` at the workspace root complement the rustdoc:
//! `docs/scenario-format.md` is the complete `.scn` reference,
//! `docs/architecture.md` maps the crate stack and the engine's data
//! flow, `docs/sharding.md` covers distributed execution,
//! `docs/serving.md` is the service's operator manual, and
//! `docs/observability.md` catalogs every metric and the log schema.
//!
//! # CLI
//!
//! The crate ships a binary:
//!
//! ```text
//! spnn run scenarios/fig4.scn --format csv --out results/fig4.csv
//! spnn run scenarios/fig4.scn scenarios/fig5.scn --out results/
//! spnn run fig4.scn --shards 3 --shard-index 0 --out part0.json
//! spnn merge part*.json --format json --out fig4.json
//! spnn example fig4          # print a ready-to-edit scenario file
//! spnn validate my.scn       # parse + compile, print the queue size
//! spnn cache ls              # inspect the trained-context cache
//! spnn cache gc --max-entries 16   # evict least-recently-written entries
//! ```
//!
//! # Example
//!
//! ```
//! use spnn_engine::prelude::*;
//!
//! let mut spec = presets::fig4(&RunScale::tiny());
//! spec.sweep.sigmas = vec![0.0, 0.1];
//! spec.sweep.modes = vec![spnn_photonics::PerturbTarget::Both];
//! let report = run_scenario(&spec, &EngineConfig::default()).unwrap();
//! assert_eq!(report.rows.len(), 2);
//! // σ = 0 has zero Monte-Carlo variance; σ = 0.1 does not.
//! assert_eq!(report.rows[0].std_dev, 0.0);
//! assert!(report.rows.iter().all(|r| (0.0..=1.0).contains(&r.mean)));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batched;
pub mod cache;
pub mod estimator;
pub mod exec;
mod fnv;
pub mod http;
mod json;
pub mod metrics;
pub mod presets;
pub mod queue;
pub mod report;
pub mod rowcache;
pub mod runner;
pub mod serve;
pub mod shard;
pub mod spec;
pub mod trace;

pub use batched::TestBatch;
pub use cache::{ContextCache, Fingerprint, TrainedContext};
pub use estimator::{StopRule, Welford};
pub use exec::{
    run_distributed, BreakerConfig, BreakerState, CancelToken, DistError, ExecContext, ExecError,
    Executor, LocalExecutor, RemoteExecutor, SpawnExecutor, WeightSource, WorkerBreakers,
};
pub use metrics::{histogram_quantile, Counter, FloatGauge, Gauge, Histogram, MetricsRegistry};
pub use queue::WorkItem;
pub use report::{to_csv, to_json};
pub use rowcache::{RowCache, RowContext, RowKey};
pub use runner::{
    run_point, run_point_range, run_scenario, run_scenario_shard_with, run_scenario_span_with,
    run_scenario_streaming_cancellable, run_scenario_streaming_with, run_scenario_with,
    run_scenarios, EngineConfig, EngineReport, PointResult, RangeResult, StreamEvent, SweepRow,
};
pub use serve::{assemble_report, AssembleError, QuotaConfig, RequestBudget, ServeConfig, Server};
pub use shard::{
    merge_partials, plan_shard, plan_shard_weighted, plan_span, queue_fingerprint,
    queue_fingerprint_with, weighted_span, MergeError, MergeState, PartialReport, ShardBlock,
};
pub use spec::{ParseError, PlanKind, RunScale, ScenarioSpec};
pub use spnn_core::{detected_tier, KernelProfile, KernelTier};
pub use trace::{Level, Span};

/// Commonly used items, importable with `use spnn_engine::prelude::*`.
pub mod prelude {
    pub use crate::batched::TestBatch;
    pub use crate::cache::{ContextCache, Fingerprint};
    pub use crate::estimator::{StopRule, Welford};
    pub use crate::exec::{
        run_distributed, CancelToken, ExecContext, Executor, LocalExecutor, RemoteExecutor,
        SpawnExecutor, WeightSource,
    };
    pub use crate::metrics::MetricsRegistry;
    pub use crate::presets;
    pub use crate::report::{to_csv, to_json};
    pub use crate::rowcache::{RowCache, RowContext};
    pub use crate::runner::{
        run_point, run_scenario, run_scenario_shard_with, run_scenario_streaming_with,
        run_scenario_with, run_scenarios, EngineConfig, EngineReport, StreamEvent, SweepRow,
    };
    pub use crate::serve::{assemble_report, AssembleError, ServeConfig, Server};
    pub use crate::shard::{merge_partials, MergeError, MergeState, PartialReport};
    pub use crate::spec::{PlanKind, RunScale, ScenarioSpec};
    pub use spnn_core::{detected_tier, KernelProfile, KernelTier};
}
