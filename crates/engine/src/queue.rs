//! Compilation of a [`ScenarioSpec`] into a flat work queue.
//!
//! Each [`WorkItem`] is one fully-resolved sweep point: a concrete
//! [`PerturbationPlan`], concrete [`HardwareEffects`], a stable per-point
//! seed, and the label set that names the point in reports. The queue is
//! the cartesian product of every sweep axis; zonal plans expand to one
//! item per 2×2 zone of every selected unitary multiplier (which is why
//! compilation needs the mapped [`PhotonicNetwork`] — the zone grids
//! depend on the mesh shapes).
//!
//! Queue compilation is independent of *how* the mapped network was
//! obtained: the runner hands it either a freshly synthesized mapping or
//! one restored from the trained-context cache ([`crate::cache`]), and the
//! resulting queue — per-point seeds included — is identical, because
//! seeds derive from the spec seed and the point labels alone (see
//! [`WorkItem::seed`]), never from queue position or mapping identity.

use crate::spec::{LayerSelect, PlanKind, ScenarioSpec};
use spnn_core::exp1::spec_for_mode;
use spnn_core::monte_carlo::splitmix64;
use spnn_core::{HardwareEffects, PerturbationPlan, PhotonicNetwork, Stage};
use spnn_photonics::thermal::ThermalCrosstalk;
use spnn_photonics::UncertaintySpec;

/// One fully-resolved sweep point.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Report labels, e.g. `[("mode", "both"), ("sigma", "0.05"), …]`.
    /// Every item of a queue carries the same keys in the same order, so
    /// the labels double as CSV columns.
    pub labels: Vec<(&'static str, String)>,
    /// The perturbation plan of this point.
    pub plan: PerturbationPlan,
    /// The deterministic hardware effects of this point.
    pub effects: HardwareEffects,
    /// Base Monte-Carlo seed — derived from the spec seed and the point's
    /// labels, so it is stable under sweep-axis reordering or extension.
    pub seed: u64,
}

/// FNV-1a over the label set: the per-point seed is a pure function of the
/// spec seed and the point's *semantic identity*, not its queue position.
/// Adding values to an axis therefore never reseeds existing points.
///
/// Uses the crate-shared [`crate::fnv`] streaming hasher over the
/// `key=value;` byte stream — byte-for-byte the same hash the original
/// inline implementation computed, so existing per-point seeds are
/// unchanged.
fn label_seed(spec_seed: u64, labels: &[(&'static str, String)]) -> u64 {
    let mut h = crate::fnv::Fnv1a64::with_basis(crate::fnv::FNV_BASIS);
    for (k, v) in labels {
        h.write(k.as_bytes());
        h.write(b"=");
        h.write(v.as_bytes());
        h.write(b";");
    }
    splitmix64(spec_seed ^ h.finish())
}

fn effects_grid(spec: &ScenarioSpec) -> Vec<(Vec<(&'static str, String)>, HardwareEffects)> {
    let mut out = Vec::new();
    for &bits in &spec.effects.quantization_bits {
        for &kappa in &spec.effects.thermal_kappa {
            for &loss in &spec.effects.mzi_loss_db {
                let thermal = if kappa > 0.0 {
                    ThermalCrosstalk::new(kappa, spec.effects.thermal_decay_um)
                } else {
                    ThermalCrosstalk::disabled()
                };
                let effects = HardwareEffects {
                    quantization_bits: bits,
                    thermal,
                    mzi_loss_db: loss,
                    ..HardwareEffects::default()
                };
                let labels = vec![
                    (
                        "quant_bits",
                        bits.map_or_else(|| "none".to_string(), |b| b.to_string()),
                    ),
                    ("thermal_kappa", kappa.to_string()),
                    ("loss_db", loss.to_string()),
                ];
                out.push((labels, effects));
            }
        }
    }
    out
}

/// Compiles the spec into the flat queue for one mapped network.
///
/// The queue order is deterministic: effects-grid outer, plan axes inner,
/// in spec order.
pub fn compile(spec: &ScenarioSpec, hardware: &PhotonicNetwork) -> Vec<WorkItem> {
    let mut queue = Vec::new();
    for (fx_labels, effects) in effects_grid(spec) {
        match spec.plan {
            PlanKind::Global | PlanKind::GlobalNoSigma => {
                let include_sigma = spec.plan == PlanKind::Global;
                for &mode in &spec.sweep.modes {
                    for &sigma in &spec.sweep.sigmas {
                        let plan = if sigma == 0.0 {
                            PerturbationPlan::None
                        } else {
                            let uspec = spec_for_mode(mode, sigma);
                            if include_sigma {
                                PerturbationPlan::global(uspec)
                            } else {
                                PerturbationPlan::global_no_sigma(uspec)
                            }
                        };
                        let mut labels = vec![
                            ("plan", spec_plan_label(spec.plan).to_string()),
                            ("mode", crate::spec::mode_name(mode).to_string()),
                            ("sigma", sigma.to_string()),
                        ];
                        labels.extend(fx_labels.iter().cloned());
                        let seed = label_seed(spec.seed, &labels);
                        queue.push(WorkItem {
                            labels,
                            plan,
                            effects: effects.clone(),
                            seed,
                        });
                    }
                }
            }
            PlanKind::Zonal => {
                let layers: Vec<usize> = match &spec.zonal.layers {
                    LayerSelect::All => (0..hardware.n_layers()).collect(),
                    LayerSelect::List(v) => v.clone(),
                };
                for &layer in &layers {
                    assert!(
                        layer < hardware.n_layers(),
                        "zonal layer {layer} out of range ({} layers)",
                        hardware.n_layers()
                    );
                    for &stage in &spec.zonal.stages {
                        let zones = match stage {
                            Stage::UMesh => hardware.layers()[layer].u_zones(),
                            Stage::VMesh => hardware.layers()[layer].v_zones(),
                            Stage::Sigma => unreachable!("validated out"),
                        };
                        for zr in 0..zones.rows() {
                            for zc in 0..zones.cols() {
                                let plan = PerturbationPlan::Zonal {
                                    base: UncertaintySpec::both(spec.zonal.base_sigma),
                                    hot: UncertaintySpec::both(spec.zonal.hot_sigma),
                                    layer,
                                    stage,
                                    zone: (zr, zc),
                                };
                                let mut labels = vec![
                                    ("plan", "zonal".to_string()),
                                    ("layer", layer.to_string()),
                                    ("stage", stage.label().to_string()),
                                    ("zone_row", zr.to_string()),
                                    ("zone_col", zc.to_string()),
                                ];
                                labels.extend(fx_labels.iter().cloned());
                                let seed = label_seed(spec.seed, &labels);
                                queue.push(WorkItem {
                                    labels,
                                    plan,
                                    effects: effects.clone(),
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    queue
}

/// The queue length per mapped network when it is derivable from the
/// spec alone — i.e. without training/mapping the hardware. Global plans
/// are a pure cartesian product (effects grid × modes × sigmas); zonal
/// plans depend on the mapped mesh's zone grids, so they return `None`.
///
/// This is what lets the server reject an over-budget request *before*
/// spending any compute on it: `Some(n)` here times the topology count
/// is exactly `compile(...).len()` summed over topologies.
pub fn static_queue_len(spec: &ScenarioSpec) -> Option<usize> {
    match spec.plan {
        PlanKind::Global | PlanKind::GlobalNoSigma => {
            let effects = spec.effects.quantization_bits.len()
                * spec.effects.thermal_kappa.len()
                * spec.effects.mzi_loss_db.len();
            Some(effects * spec.sweep.modes.len() * spec.sweep.sigmas.len())
        }
        PlanKind::Zonal => None,
    }
}

fn spec_plan_label(plan: PlanKind) -> &'static str {
    match plan {
        PlanKind::Global => "global",
        PlanKind::GlobalNoSigma => "global-no-sigma",
        PlanKind::Zonal => "zonal",
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // specs are built by mutating defaults
mod tests {
    use super::*;
    use spnn_core::MeshTopology;
    use spnn_neural::ComplexNetwork;
    use spnn_photonics::PerturbTarget;

    fn tiny_hw() -> PhotonicNetwork {
        let sw = ComplexNetwork::new(&[4, 4, 3], 5);
        PhotonicNetwork::from_network(&sw, MeshTopology::Clements, None).unwrap()
    }

    fn tiny_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::default();
        spec.sweep.modes = vec![PerturbTarget::Both, PerturbTarget::PhaseShiftersOnly];
        spec.sweep.sigmas = vec![0.0, 0.05];
        spec
    }

    #[test]
    fn global_queue_is_the_cartesian_product() {
        let hw = tiny_hw();
        let mut spec = tiny_spec();
        spec.effects.quantization_bits = vec![None, Some(6)];
        let queue = compile(&spec, &hw);
        // 2 quant × 2 modes × 2 sigmas
        assert_eq!(queue.len(), 8);
        // All items share the same label keys in the same order.
        let keys: Vec<&str> = queue[0].labels.iter().map(|(k, _)| *k).collect();
        for item in &queue {
            assert_eq!(
                item.labels.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
                keys
            );
        }
    }

    #[test]
    fn sigma_zero_compiles_to_plan_none() {
        let hw = tiny_hw();
        let queue = compile(&tiny_spec(), &hw);
        let zero_points: Vec<_> = queue
            .iter()
            .filter(|i| i.labels.iter().any(|(k, v)| *k == "sigma" && v == "0"))
            .collect();
        assert!(!zero_points.is_empty());
        for p in zero_points {
            assert_eq!(p.plan, PerturbationPlan::None);
        }
    }

    #[test]
    fn per_point_seeds_are_stable_under_axis_extension() {
        let hw = tiny_hw();
        let base = compile(&tiny_spec(), &hw);
        let mut extended_spec = tiny_spec();
        extended_spec.sweep.sigmas = vec![0.0, 0.025, 0.05]; // insert a value
        let extended = compile(&extended_spec, &hw);
        for item in &base {
            let twin = extended
                .iter()
                .find(|i| i.labels == item.labels)
                .expect("original point survives extension");
            assert_eq!(twin.seed, item.seed, "seed moved for {:?}", item.labels);
        }
    }

    #[test]
    fn distinct_points_get_distinct_seeds() {
        let hw = tiny_hw();
        let queue = compile(&tiny_spec(), &hw);
        let mut seeds: Vec<u64> = queue.iter().map(|i| i.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), queue.len());
    }

    #[test]
    fn zonal_queue_covers_every_zone_of_selected_meshes() {
        let hw = tiny_hw();
        let mut spec = ScenarioSpec::default();
        spec.plan = PlanKind::Zonal;
        spec.zonal.stages = vec![Stage::UMesh];
        spec.zonal.layers = LayerSelect::List(vec![0]);
        let queue = compile(&spec, &hw);
        let zones = hw.layers()[0].u_zones();
        assert_eq!(queue.len(), zones.rows() * zones.cols());
        for item in &queue {
            assert!(matches!(item.plan, PerturbationPlan::Zonal { .. }));
        }
    }

    #[test]
    fn static_queue_len_matches_compile_for_global_plans() {
        let hw = tiny_hw();
        let mut spec = tiny_spec();
        spec.effects.quantization_bits = vec![None, Some(6)];
        spec.effects.mzi_loss_db = vec![0.0, 0.1, 0.2];
        assert_eq!(static_queue_len(&spec), Some(compile(&spec, &hw).len()));

        let mut zonal = ScenarioSpec::default();
        zonal.plan = PlanKind::Zonal;
        zonal.zonal.stages = vec![Stage::UMesh];
        zonal.zonal.layers = LayerSelect::List(vec![0]);
        assert_eq!(static_queue_len(&zonal), None);
    }

    #[test]
    fn thermal_axis_materializes_crosstalk_models() {
        let hw = tiny_hw();
        let mut spec = tiny_spec();
        spec.sweep.modes = vec![PerturbTarget::Both];
        spec.sweep.sigmas = vec![0.0];
        spec.effects.thermal_kappa = vec![0.0, 0.02];
        let queue = compile(&spec, &hw);
        assert_eq!(queue.len(), 2);
        assert!(queue[0].effects.thermal.is_disabled());
        assert!(!queue[1].effects.thermal.is_disabled());
        assert!((queue[1].effects.thermal.coupling() - 0.02).abs() < 1e-15);
    }
}
