//! CSV and JSON emission for [`EngineReport`]s.
//!
//! Both writers are hand-rolled (the environment has no serde): CSV for
//! the plotting pipeline the seed's figure binaries already use, JSON for
//! downstream tooling. Every row of a report carries the same label keys
//! (guaranteed by [`crate::queue::compile`]), so the label keys become the
//! CSV columns directly.

use crate::runner::{EngineReport, SweepRow};
use std::fmt::Write as _;

/// The CSV header line (newline included) for rows carrying `keys` label
/// columns. Shared by [`to_csv`] and the service's streaming
/// `POST /run?format=csv` writer so the two dialects cannot diverge.
pub(crate) fn csv_header(keys: &[&str]) -> String {
    let mut out = String::from("topology");
    for k in keys {
        let _ = write!(out, ",{k}");
    }
    out.push_str(",mean_accuracy,std_dev,moe95,iterations,stopped_early\n");
    out
}

/// One CSV data line (newline included) of `row` under `keys` columns.
pub(crate) fn csv_row(row: &SweepRow, keys: &[&str]) -> String {
    let mut out = String::new();
    out.push_str(&row.topology);
    for key in keys {
        let _ = write!(out, ",{}", row.label(key).unwrap_or(""));
    }
    let _ = writeln!(
        out,
        ",{:.6},{:.6},{:.6},{},{}",
        row.mean, row.std_dev, row.moe95, row.iterations, row.stopped_early
    );
    out
}

/// The label keys a report's rows carry (every row of a report shares
/// them; the first row is authoritative).
pub(crate) fn label_keys(row: &SweepRow) -> Vec<&str> {
    row.labels.iter().map(|(k, _)| k.as_str()).collect()
}

/// Serializes a report as CSV:
/// `topology,<label columns…>,mean_accuracy,std_dev,moe95,iterations,stopped_early`.
pub fn to_csv(report: &EngineReport) -> String {
    let keys: Vec<&str> = report.rows.first().map(label_keys).unwrap_or_default();
    let mut out = csv_header(&keys);
    for row in &report.rows {
        out.push_str(&csv_row(row, &keys));
    }
    out
}

// One escaper and one float writer serve the final report, the shard
// partial-report format, and the serve NDJSON events — the JSON dialects
// must never diverge.
use crate::json::{escape as json_escape, num as json_f64};

/// Serializes a report as pretty-printed JSON.
pub fn to_json(report: &EngineReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"scenario\": \"{}\",",
        json_escape(&report.scenario)
    );
    out.push_str("  \"topologies\": [\n");
    for (i, t) in report.topologies.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"topology\": \"{}\", \"software_accuracy\": {}, \"nominal_accuracy\": {}}}",
            json_escape(&t.topology),
            json_f64(t.software_accuracy),
            json_f64(t.nominal_accuracy)
        );
        out.push_str(if i + 1 < report.topologies.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"rows\": [\n");
    for (i, row) in report.rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"topology\": \"{}\"",
            json_escape(&row.topology)
        );
        for (k, v) in &row.labels {
            // Emit numeric-looking labels as numbers for friendlier JSON.
            if v.parse::<f64>().is_ok() {
                let _ = write!(out, ", \"{}\": {}", json_escape(k), v);
            } else {
                let _ = write!(out, ", \"{}\": \"{}\"", json_escape(k), json_escape(v));
            }
        }
        let _ = write!(
            out,
            ", \"mean_accuracy\": {}, \"std_dev\": {}, \"moe95\": {}, \"iterations\": {}, \"stopped_early\": {}}}",
            json_f64(row.mean),
            json_f64(row.std_dev),
            json_f64(row.moe95),
            row.iterations,
            row.stopped_early
        );
        out.push_str(if i + 1 < report.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{SweepRow, TopologySummary};

    fn sample_report() -> EngineReport {
        EngineReport {
            scenario: "demo".into(),
            topologies: vec![TopologySummary {
                topology: "clements".into(),
                software_accuracy: 0.9,
                nominal_accuracy: 0.89,
            }],
            rows: vec![
                SweepRow {
                    topology: "clements".into(),
                    labels: vec![
                        ("mode".into(), "both".into()),
                        ("sigma".into(), "0.05".into()),
                    ],
                    mean: 0.31,
                    std_dev: 0.02,
                    moe95: 0.004,
                    iterations: 100,
                    stopped_early: true,
                },
                SweepRow {
                    topology: "clements".into(),
                    labels: vec![("mode".into(), "both".into()), ("sigma".into(), "0".into())],
                    mean: 0.89,
                    std_dev: 0.0,
                    moe95: 0.0,
                    iterations: 32,
                    stopped_early: true,
                },
            ],
        }
    }

    #[test]
    fn csv_has_header_and_one_line_per_row() {
        let csv = to_csv(&sample_report());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "topology,mode,sigma,mean_accuracy,std_dev,moe95,iterations,stopped_early"
        );
        assert!(lines[1].starts_with("clements,both,0.05,0.310000"));
        assert!(lines[1].ends_with(",100,true"));
    }

    #[test]
    fn empty_report_csv_is_just_the_base_header() {
        let report = EngineReport {
            scenario: "empty".into(),
            topologies: vec![],
            rows: vec![],
        };
        let csv = to_csv(&report);
        assert_eq!(
            csv,
            "topology,mean_accuracy,std_dev,moe95,iterations,stopped_early\n"
        );
    }

    #[test]
    fn json_mentions_every_field_and_quotes_strings() {
        let json = to_json(&sample_report());
        assert!(json.contains("\"scenario\": \"demo\""));
        assert!(json.contains("\"mode\": \"both\""));
        assert!(json.contains("\"sigma\": 0.05"), "numeric label unquoted");
        assert!(json.contains("\"stopped_early\": true"));
        assert!(json.contains("\"nominal_accuracy\": 0.89"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.25), "0.25");
    }
}
