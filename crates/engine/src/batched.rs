//! The batched forward path (re-exported from `spnn-core`).
//!
//! [`TestBatch`] — the tiled, split-plane whole-test-set accuracy kernel —
//! originated in this crate. Once it was proven bit-identical to the
//! per-sample reference, it moved down into [`spnn_core::batched`] so that
//! [`spnn_core::mc_accuracy`] itself runs batched by default; the engine
//! re-exports it here so existing `spnn_engine::batched::TestBatch` (and
//! `spnn_engine::TestBatch`) imports keep working unchanged.
//!
//! See [`spnn_core::batched`] for the kernel documentation and the
//! bit-identity argument, and `docs/architecture.md` for where the batched
//! path sits in the engine's data flow.

pub use spnn_core::batched::TestBatch;
