//! `spnn` — run declarative SPNN Monte-Carlo scenarios from the command
//! line.
//!
//! ```text
//! spnn run <spec.scn>... | --preset NAME  [--format csv|json] [--out PATH]
//!          [--threads N] [--kernel reference|fma] [--quiet] [--stats]
//!          [--no-cache] [--cache-dir DIR]
//!          [--shards K (--shard-index I | --spawn | --exec local|spawn)]
//!          [--workers URL,URL,... [--local-peers N] [--weights-from SRC] [--steal]]
//! spnn merge <part.json>... [--format csv|json] [--out PATH]
//! spnn serve [--addr HOST:PORT] [--workers N] [--workers-from FILE]
//!          [--local-peers N] [--weights-from SRC] [--steal]
//!          [--threads N] [--kernel reference|fma] [--quiet] [--log-json]
//!          [--no-cache] [--cache-dir DIR]
//! spnn assemble <stream.ndjson> [--format csv|json] [--out PATH]
//! spnn validate <spec.scn> [--kernel reference|fma]
//! spnn example [NAME]
//! spnn cache ls | rm <KEY>... | rm --all | gc [--max-entries N]
//!          [--max-bytes BYTES] | path
//! spnn rowcache ls | rm <KEY>... | rm --all | gc [--max-entries N]
//!          [--max-bytes BYTES] | path
//! spnn help
//! ```
//!
//! Scenario scale knobs for presets come from the usual `SPNN_*`
//! environment variables (`SPNN_MC`, `SPNN_NTRAIN`, `SPNN_NTEST`,
//! `SPNN_EPOCHS`, `SPNN_SEED`, `SPNN_TARGET_MOE`, `SPNN_THREADS`);
//! `SPNN_CACHE_DIR` relocates the trained-context cache; `SPNN_LOG`
//! (error|warn|info|debug|trace|off) and `SPNN_LOG_FORMAT=json` shape the
//! structured stderr log. See `docs/scenario-format.md` for the spec
//! format, `docs/sharding.md` for the shard/merge workflow,
//! `docs/serving.md` for the HTTP service, `docs/observability.md` for
//! the metric catalog and `docs/architecture.md` for the engine
//! internals.

use spnn_engine::cache::{default_cache_dir, gc, list_entries, ContextCache, GcLimits};
use spnn_engine::exec::{
    install_signal_handlers, run_distributed, BreakerConfig, CancelToken, ExecContext, Executor,
    LocalExecutor, RemoteExecutor, SpawnExecutor, WeightSource, WorkerBreakers,
};
use spnn_engine::metrics::{self, Reading};
use spnn_engine::prelude::*;
use spnn_engine::rowcache::{self, RowCache};
use spnn_engine::runner::{run_scenario_shard_with, run_scenario_with, EngineError};
use spnn_engine::serve::{assemble_report, QuotaConfig, RequestBudget, Server};
use spnn_engine::trace;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
spnn — batched, adaptive Monte-Carlo simulation engine for silicon-photonic
neural networks (reproduces the DATE 2021 uncertainty-modeling paper).

USAGE:
    spnn run <SPEC>...       run scenario file(s) (`-` reads stdin); files
                             sharing a training fingerprint train once
    spnn run --preset NAME   run a built-in scenario (fig4, fig5, mesh,
                             quant, thermal) at SPNN_* env scale
    spnn merge <PART>...     merge shard partial reports into the final
                             report (bit-identical to an unsharded run)
    spnn serve               long-lived HTTP service: POST a spec to /run,
                             rows stream back as NDJSON as they complete;
                             one trained-context cache for the lifetime
    spnn assemble <NDJSON>   rebuild the report from a completed /run
                             stream (byte-identical to `spnn run`)
    spnn validate <SPEC>     parse a scenario and report its queue size
    spnn example [NAME]      print a built-in scenario file (default fig4)
    spnn cache ls            list cached trained contexts
    spnn cache rm <KEY>...   remove entries by (prefix of) key; --all wipes
    spnn cache gc            evict least-recently-written entries down to
                             --max-entries N and/or --max-bytes BYTES
                             (suffixes K/M/G allowed)
    spnn cache path          print the resolved cache directory
    spnn rowcache ls|rm|gc|path
                             same verbs over the row-level result cache
                             (finished sweep points, shared across runs
                             and overlapping sweeps; docs/row-cache.md)
    spnn help                this text

OPTIONS (run, merge):
    --format csv|json        output format (default csv)
    --out PATH               write output to PATH (default stdout); with
                             several SPECs, PATH is a directory and each
                             scenario writes <name>.<format> inside it
    --threads N              worker threads per sweep point
                             (default: $SPNN_THREADS, else all cores;
                             results are identical for any thread count)
    --kernel reference|fma   compute-kernel profile (default reference).
                             reference is the paper-faithful scalar path;
                             fma fuses multiply-adds with runtime-selected
                             SIMD (AVX-512/AVX2+FMA/scalar, identical bits
                             on every tier) — each profile is bit-exactly
                             reproducible under its own fingerprint, and
                             partials from different profiles never merge
    --quiet                  suppress progress logging on stderr
    --stats                  after the run, print a phase breakdown and
                             the engine counters (training, cache,
                             Monte-Carlo, shard dispatch) on stderr
    --no-cache               skip the on-disk trained-context cache
    --cache-dir DIR          cache location (default: `spnn cache path`)
    --no-row-cache           skip the row-level result cache entirely
    --row-cache-dir DIR      row-cache location (default:
                             `spnn rowcache path`)
    --shards K               split the run into K deterministic shards and
                             execute only one of them (single SPEC only;
                             the output is a JSON partial report)
    --shard-index I          which shard to execute (0-based, requires
                             --shards)
    --spawn                  with --shards K: launch all K shard processes
                             locally, merge their partials, and emit the
                             final report (same as --exec spawn)
    --exec local|spawn       with --shards K: run every shard through the
                             named executor (local = threads in-process,
                             spawn = child processes) and emit the merged
                             final report
    --workers URL,URL,...    dispatch one shard per remote `spnn serve`
                             worker (POST /shard), merge partials as they
                             arrive, and emit the final report; a failed
                             worker's shard is retried on another worker
                             (--shards overrides the shard count)
    --local-peers N          with --workers: run N in-process peers next
                             to the remote workers, all in one plan
    --weights-from SRC       with --workers: size each peer's round-space
                             slice by capacity. SRC is equal (default),
                             healthz (GET /healthz core counts), metrics
                             (healthz seeded, refined by dispatch-duration
                             histograms), or an explicit W,W,... list
    --steal                  with --workers: a drained peer re-dispatches
                             the slowest outstanding slice; overlapping
                             speculative partials merge bit-identically

OPTIONS (serve):
    --addr HOST:PORT         listen address (default 127.0.0.1:7878)
    --workers N              concurrent connection handlers (default 4)
    --workers-from FILE      coordinator mode: dispatch each POST /run
                             across the worker URLs listed in FILE (one
                             per line, # comments), streaming rows as
                             shards complete
    --local-peers N          coordinator mode: also run N in-process
                             peers alongside the remote workers
    --weights-from SRC       coordinator mode: capacity-weighted slices
                             (equal | healthz | metrics | W,W,...)
    --steal                  coordinator mode: drained peers re-dispatch
                             the slowest outstanding slice
    --log-json               emit structured stderr logs as JSON objects
                             (one per line) instead of key=value text
    --queue-depth N          admission queue slots (default 64); overflow
                             is shed with 429 + Retry-After
    --queue-wait SECS        max time a connection may wait queued before
                             it is shed with 429 (default 5)
    --read-timeout SECS      socket read budget per request (default 30;
                             a stalled client gets 408)
    --write-timeout SECS     socket write budget per response (default 60)
    --max-points N           per-request budget: reject/abort runs past N
                             sweep points (0 = unlimited, the default)
    --max-iterations N       ... past N Monte-Carlo iterations total
    --max-rounds N           ... past N adaptive rounds total
    --quota-concurrent N     per-client cap on in-flight /run + /shard
                             requests (by X-Client-Id, else peer IP)
    --quota-rate R           per-client request rate (tokens/second;
                             0 = unlimited)
    --quota-burst B          per-client burst size (default: R, min 1)
    --breaker-failures N     coordinator: consecutive worker failures
                             that open its circuit breaker (default 3)
    --breaker-cooldown SECS  how long an open breaker skips its worker
                             before a half-open /healthz probe (default 10)
    --threads, --kernel, --quiet, --no-cache, --cache-dir,
    --no-row-cache, --row-cache-dir as for run

Sharding: `spnn run S --shards K --shard-index I` writes partial report I
of a K-way split; run all K (any machines, any order), then
`spnn merge part*.json` recombines them — bit-for-bit identical to the
unsharded `spnn run S`. `spnn run S --shards K --spawn` does all of that
on one machine in one command; `spnn run S --workers http://a:7901,...`
does it across remote workers. See docs/sharding.md.

Serving: `spnn serve` then `curl -N --data-binary @S http://HOST/run`
streams one NDJSON row per completed sweep point (`/run?format=csv`
streams CSV); `spnn assemble stream.ndjson` rebuilds the exact
`spnn run` report. `spnn serve --workers-from workers.txt` turns the
service into a coordinator over remote workers; SIGTERM drains
gracefully. GET /metrics exposes Prometheus text on every role — see
docs/serving.md and docs/observability.md.

Cached contexts are reused bit-exactly: a warm-cache run produces the very
same report as a cold one, it just skips training (and mesh synthesis).
The row cache extends that to finished sweep points: a warm re-run (or an
overlapping sweep) replays its cached rows byte-identically and computes
only the delta — `spnn rowcache ls` inspects, `--no-row-cache` opts out.

SCALE (env): SPNN_MC, SPNN_NTRAIN, SPNN_NTEST, SPNN_EPOCHS, SPNN_SEED,
SPNN_TARGET_MOE (e.g. SPNN_TARGET_MOE=0.01 enables adaptive early stop),
SPNN_THREADS, SPNN_CACHE_DIR, SPNN_ROW_CACHE_DIR.

LOGGING (env): SPNN_LOG sets the structured-log level on stderr
(error|warn|info|debug|trace|off; default info) and SPNN_LOG_FORMAT=json
switches the lines to JSON objects. Logs never touch stdout, and reports
are byte-identical at every level. See docs/observability.md.
";

/// Applies the CLI logging flags before any engine work runs: `--quiet`
/// drops the structured-log level to `warn` unless `SPNN_LOG` explicitly
/// chose one, and `--log-json` switches the stderr lines to JSON.
fn init_logging(args: &[String]) {
    if has_flag(args, "--quiet") && !trace::verbosity_from_env() {
        trace::set_verbosity(Some(trace::Level::Warn));
    }
    if has_flag(args, "--log-json") {
        trace::set_format(trace::Format::Json);
    }
}

/// `--stats`: the end-of-run breakdown read from the process-global
/// metrics registry — wall-clock per engine phase, then every counter
/// the run touched. Stderr only; stdout stays reserved for reports.
fn print_run_stats() {
    let snapshot = metrics::global().snapshot();
    eprintln!("[spnn] phase breakdown (--stats):");
    eprintln!(
        "[spnn]   {:<12} {:>7} {:>10} {:>10}",
        "phase", "calls", "total s", "mean s"
    );
    for s in &snapshot {
        if s.name != "spnn_phase_duration_seconds" {
            continue;
        }
        if let Reading::Histogram { sum, count, .. } = &s.value {
            let phase = s
                .labels
                .iter()
                .find(|(k, _)| k == "phase")
                .map_or("?", |(_, v)| v.as_str());
            let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
            eprintln!("[spnn]   {phase:<12} {count:>7} {sum:>10.3} {mean:>10.3}");
        }
    }
    eprintln!("[spnn] counters:");
    for s in &snapshot {
        let Reading::Counter(v) = &s.value else {
            continue;
        };
        let labels = if s.labels.is_empty() {
            String::new()
        } else {
            format!(
                "{{{}}}",
                s.labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        eprintln!("[spnn]   {:<44} {v:>10}", format!("{}{labels}", s.name));
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("run `spnn help` for usage");
    ExitCode::FAILURE
}

fn read_spec_file(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn load_specs(args: &[String]) -> Result<Vec<ScenarioSpec>, String> {
    if let Some(pos) = args.iter().position(|a| a == "--preset") {
        let name = args
            .get(pos + 1)
            .ok_or_else(|| "--preset needs a name".to_string())?;
        let spec = presets::by_name(name, &RunScale::from_env()).ok_or_else(|| {
            format!(
                "unknown preset {name:?} (have: {})",
                presets::PRESET_NAMES.join(", ")
            )
        })?;
        return Ok(vec![spec]);
    }
    let paths = positional_args(args);
    if paths.is_empty() {
        return Err("missing scenario file (or --preset NAME)".to_string());
    }
    paths
        .iter()
        .map(|path| {
            let text = read_spec_file(path)?;
            ScenarioSpec::parse(&text).map_err(|e| format!("{path}: {e}"))
        })
        .collect()
}

/// The positional arguments after the subcommand, skipping options and
/// their values *by position* (a path that merely equals some option's
/// value, e.g. `spnn run fig4.json --out fig4.json`, must still be found).
fn positional_args(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut i = 1; // args[0] is the subcommand
    while i < args.len() {
        match args[i].as_str() {
            "--format" | "--out" | "--threads" | "--preset" | "--cache-dir" | "--row-cache-dir"
            | "--shards" | "--shard-index" | "--max-entries" | "--max-bytes" | "--addr"
            | "--workers" | "--workers-from" | "--exec" | "--queue-depth" | "--queue-wait"
            | "--read-timeout" | "--write-timeout" | "--max-points" | "--max-iterations"
            | "--max-rounds" | "--quota-concurrent" | "--quota-rate" | "--quota-burst"
            | "--breaker-failures" | "--breaker-cooldown" | "--weights-from" | "--local-peers"
            | "--kernel" => i += 2,
            s if s.starts_with("--") => i += 1,
            s => {
                out.push(s);
                i += 1;
            }
        }
    }
    out
}

fn option_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|p| args.get(p + 1))
        .map(|s| s.as_str())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Worker threads per sweep point: `--threads` wins; `SPNN_THREADS` is
/// the environment fallback the CI determinism cross-check drives
/// (results are identical for any value, only wall-clock changes).
fn parse_threads(args: &[String]) -> Result<Option<usize>, String> {
    match option_value(args, "--threads") {
        None => Ok(std::env::var("SPNN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(format!("invalid thread count {v:?}")),
        },
    }
}

/// The kernel profile: `--kernel reference|fma` (default reference, the
/// historical scalar path — reports are byte-identical with or without
/// the flag).
fn parse_kernel(args: &[String]) -> Result<KernelProfile, String> {
    match option_value(args, "--kernel") {
        None => Ok(KernelProfile::default()),
        Some(v) => v.parse(),
    }
}

/// The cache directory a command resolves to: `--cache-dir`, else the
/// default chain (`SPNN_CACHE_DIR` → XDG → `~/.cache/spnn`).
fn resolve_cache_dir(args: &[String]) -> PathBuf {
    option_value(args, "--cache-dir")
        .map(PathBuf::from)
        .unwrap_or_else(default_cache_dir)
}

/// The row-cache directory a command resolves to: `--row-cache-dir`, else
/// the default chain (`SPNN_ROW_CACHE_DIR` → XDG → `~/.cache/spnn/rows`).
fn resolve_row_cache_dir(args: &[String]) -> PathBuf {
    option_value(args, "--row-cache-dir")
        .map(PathBuf::from)
        .unwrap_or_else(rowcache::default_row_cache_dir)
}

/// The row-level result cache for `run`/`serve`: on-disk at the resolved
/// directory unless `--no-row-cache` opted out entirely.
fn resolve_row_cache(args: &[String]) -> Option<Arc<RowCache>> {
    (!has_flag(args, "--no-row-cache"))
        .then(|| Arc::new(RowCache::on_disk(resolve_row_cache_dir(args))))
}

fn write_report(path: &Path, body: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(path, body).map_err(|e| format!("writing {}: {e}", path.display()))?;
    eprintln!("[spnn] wrote {}", path.display());
    Ok(())
}

fn cmd_run(args: &[String]) -> ExitCode {
    init_logging(args);
    let specs = match load_specs(args) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let format = option_value(args, "--format").unwrap_or("csv");
    if format != "csv" && format != "json" {
        return fail(&format!("unknown format {format:?} (csv|json)"));
    }
    let threads = match parse_threads(args) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let kernel = match parse_kernel(args) {
        Ok(k) => k,
        Err(e) => return fail(&e),
    };
    let cache_dir = (!has_flag(args, "--no-cache")).then(|| resolve_cache_dir(args));
    let row_cache = resolve_row_cache(args);
    let config = EngineConfig {
        threads,
        kernel,
        verbose: !has_flag(args, "--quiet"),
        cache_dir: None, // the shared cache below carries the directory
        metrics: metrics::global().clone(),
        row_cache: row_cache.clone(),
    };
    // Surface the resolved profile and the CPU dispatch tier wherever the
    // run's metrics end up (`--stats`, scrapes of a long-lived process).
    config
        .metrics
        .gauge(
            "spnn_kernel_profile",
            "Active kernel profile and the CPU dispatch tier selected for it (info gauge).",
            &[
                ("profile", kernel.as_str()),
                ("tier", detected_tier().as_str()),
            ],
        )
        .set(1);
    let cache = ContextCache::new(cache_dir);
    // One process, one run: the cache's counters belong in the global
    // registry so `--stats` shows hits/trains next to the phase table.
    cache.register_metrics(metrics::global());
    if let Some(rc) = &row_cache {
        rc.register_metrics(metrics::global());
    }
    let show_stats = has_flag(args, "--stats");

    // Distributed / sharded execution. All the fan-out spellings drive
    // the same library seam (`spnn_engine::exec`): `--workers` dispatches
    // shards to remote `spnn serve` workers, `--shards K --spawn` (or
    // `--exec spawn`) launches child processes, `--exec local` fans out
    // in-process threads — each merged as partials arrive, byte-identical
    // to the unsharded run. `--shards K --shard-index I` runs one slice
    // and emits a JSON partial report for `spnn merge`.
    let spawn = has_flag(args, "--spawn");
    let exec_kind = option_value(args, "--exec");
    let workers_csv = option_value(args, "--workers");
    let shards = match option_value(args, "--shards") {
        None if spawn => return fail("--spawn requires --shards K"),
        None if exec_kind.is_some() => return fail("--exec requires --shards K"),
        None if option_value(args, "--shard-index").is_some() && workers_csv.is_none() => {
            return fail("--shard-index requires --shards");
        }
        None => None,
        Some(k) => match k.parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => return fail(&format!("invalid shard count {k:?}")),
        },
    };

    if workers_csv.is_none() {
        for flag in ["--steal", "--weights-from", "--local-peers"] {
            if has_flag(args, flag) || option_value(args, flag).is_some() {
                return fail(&format!(
                    "{flag} only applies to distributed runs (--workers)"
                ));
            }
        }
    }
    if let Some(workers) = workers_csv {
        if spawn || exec_kind.is_some() || option_value(args, "--shard-index").is_some() {
            return fail("--workers picks the remote executor; drop --spawn/--exec/--shard-index");
        }
        let workers: Vec<String> = workers
            .split(',')
            .map(|w| w.trim().to_string())
            .filter(|w| !w.is_empty())
            .collect();
        if workers.is_empty() {
            return fail("--workers needs at least one URL");
        }
        if specs.len() != 1 {
            return fail("distributed runs take exactly one scenario");
        }
        let local_peers = match option_value(args, "--local-peers") {
            None => 0,
            Some(v) => match v.parse::<usize>() {
                Ok(n) => n,
                _ => return fail(&format!("invalid --local-peers value {v:?}")),
            },
        };
        let weights_from = match option_value(args, "--weights-from") {
            None => WeightSource::Equal,
            Some(v) => match WeightSource::parse(v) {
                Ok(w) => w,
                Err(e) => return fail(&e),
            },
        };
        let shards = shards.unwrap_or(workers.len() + local_peers);
        // Default circuit breakers: a worker that keeps failing is
        // skipped for a cooldown instead of eating a retry per shard.
        let breakers = Arc::new(WorkerBreakers::new(
            BreakerConfig::default(),
            &config.metrics,
        ));
        let executor = RemoteExecutor::new(workers)
            .with_breakers(breakers)
            .with_local_peers(local_peers)
            .with_weights(weights_from)
            .with_steal(has_flag(args, "--steal"));
        return run_with_executor(
            &specs[0],
            &executor,
            shards,
            format,
            &config,
            &cache,
            option_value(args, "--out"),
            show_stats,
        );
    }

    if let Some(shards) = shards {
        if specs.len() != 1 {
            return fail("sharded runs take exactly one scenario");
        }
        let shard_index = option_value(args, "--shard-index");
        let executor: Option<Box<dyn Executor>> = match (exec_kind, spawn) {
            (Some("local"), true) => {
                return fail("--exec local conflicts with --spawn (--spawn is --exec spawn)");
            }
            (Some("spawn"), _) | (None, true) => match std::env::current_exe() {
                Ok(exe) => Some(Box::new(SpawnExecutor { exe })),
                Err(e) => return fail(&format!("locating the spnn binary: {e}")),
            },
            (Some("local"), false) => Some(Box::new(LocalExecutor)),
            (Some(other), _) => {
                return fail(&format!("unknown executor {other:?} (local|spawn)"));
            }
            (None, false) => None,
        };
        if let Some(executor) = executor {
            if shard_index.is_some() {
                return fail("--spawn launches every shard itself; drop --shard-index");
            }
            return run_with_executor(
                &specs[0],
                executor.as_ref(),
                shards,
                format,
                &config,
                &cache,
                option_value(args, "--out"),
                show_stats,
            );
        }
        let index = match shard_index {
            None => {
                return fail(
                    "--shards requires --shard-index (or --spawn), --exec local|spawn, \
                     or --workers",
                )
            }
            Some(i) => match i.parse::<usize>() {
                Ok(n) if n < shards => n,
                Ok(n) => {
                    return fail(&format!("shard index {n} out of range (0..{shards})"));
                }
                _ => return fail(&format!("invalid shard index {i:?}")),
            },
        };
        if option_value(args, "--format").is_some_and(|f| f != "json") {
            return fail("partial reports are always JSON; drop --format or use --format json");
        }
        let partial = match run_scenario_shard_with(&specs[0], &config, &cache, shards, index) {
            Ok(p) => p,
            Err(e) => return fail(&e.to_string()),
        };
        eprintln!(
            "[spnn] shard {index}/{shards} of {}: {} block(s), {} MC iteration(s), fingerprint {}",
            partial.scenario,
            partial.points.len(),
            partial
                .points
                .iter()
                .map(|p| p.samples.len())
                .sum::<usize>(),
            &partial.queue_fingerprint[..12],
        );
        if show_stats {
            print_run_stats();
        }
        let body = partial.to_json();
        return match option_value(args, "--out") {
            Some(path) => match write_report(Path::new(path), &body) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            },
            None => {
                print!("{body}");
                ExitCode::SUCCESS
            }
        };
    }

    let render = |report: &EngineReport| match format {
        "json" => to_json(report),
        _ => to_csv(report),
    };
    // --out names a directory when several scenarios run, when it already
    // is one, or when it is spelled like one — a single-spec run into an
    // existing directory must not fail after the campaign completes.
    let out = option_value(args, "--out");
    let out_is_dir =
        out.is_some_and(|p| specs.len() > 1 || p.ends_with('/') || Path::new(p).is_dir());
    if out_is_dir {
        // Fail on an unusable output directory *before* the campaign, not
        // after the first scenario's Monte-Carlo run has completed.
        if let Err(e) = std::fs::create_dir_all(out.expect("out_is_dir")) {
            return fail(&format!(
                "--out {}: not a usable directory: {e}",
                out.unwrap_or_default()
            ));
        }
    }

    let started = std::time::Instant::now();
    let mut reports = Vec::with_capacity(specs.len());
    let mut used_stems = std::collections::HashSet::new();
    for spec in &specs {
        let report = match run_scenario_with(spec, &config, &cache) {
            Ok(r) => r,
            Err(EngineError::Invalid(m)) => return fail(&format!("invalid scenario: {m}")),
            Err(e) => return fail(&e.to_string()),
        };
        if out_is_dir {
            // Write each report as soon as its scenario finishes: a
            // failure in a later scenario must not discard completed
            // work. Scenario names come from user-written spec files, so
            // sanitize them — a name can neither escape the output
            // directory nor silently overwrite a sibling report.
            let base = sanitize_file_stem(&report.scenario);
            let mut stem = base.clone();
            let mut i = 2;
            while !used_stems.insert(stem.clone()) {
                stem = format!("{base}-{i}");
                i += 1;
            }
            let file = Path::new(out.expect("out_is_dir")).join(format!("{stem}.{format}"));
            if let Err(e) = write_report(&file, &render(&report)) {
                return fail(&e);
            }
        }
        reports.push(report);
    }
    let elapsed = started.elapsed();
    let stats = cache.stats();
    let total_points: usize = reports.iter().map(|r| r.rows.len()).sum();
    let total_iters: usize = reports.iter().map(|r| r.total_iterations()).sum();
    eprintln!(
        "[spnn] {} scenario(s): {} points, {} MC iterations in {:.2?} ({:.0} iters/s); \
         contexts: {} trained, {} reused",
        reports.len(),
        total_points,
        total_iters,
        elapsed,
        total_iters as f64 / elapsed.as_secs_f64().max(1e-9),
        stats.trains,
        stats.mem_hits + stats.disk_hits,
    );
    for report in &reports {
        for t in &report.topologies {
            eprintln!(
                "[spnn]   {}/{}: software acc {:.2}%, nominal hardware acc {:.2}%",
                report.scenario,
                t.topology,
                t.software_accuracy * 100.0,
                t.nominal_accuracy * 100.0
            );
        }
    }
    if show_stats {
        print_run_stats();
    }

    match out {
        Some(_) if out_is_dir => {} // written incrementally above
        Some(path) => {
            if let Err(e) = write_report(Path::new(path), &render(&reports[0])) {
                return fail(&e);
            }
        }
        None => {
            for report in &reports {
                print!("{}", render(report));
            }
        }
    }
    ExitCode::SUCCESS
}

/// Merges shard partial reports into the final report.
fn cmd_merge(args: &[String]) -> ExitCode {
    let paths = positional_args(args);
    if paths.is_empty() {
        return fail("merge needs at least one partial report");
    }
    let format = option_value(args, "--format").unwrap_or("csv");
    if format != "csv" && format != "json" {
        return fail(&format!("unknown format {format:?} (csv|json)"));
    }
    // Stream the files through the incremental merge one at a time, so
    // peak memory is one parsed partial plus the retained blocks — not
    // the whole set twice.
    let mut merge = MergeState::new();
    for path in &paths {
        let text = match read_spec_file(path) {
            Ok(t) => t,
            Err(e) => return fail(&e),
        };
        let partial = match PartialReport::parse(&text) {
            Ok(p) => p,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        if let Err(e) = merge.push(partial) {
            return fail(&format!("{path}: {e}"));
        }
    }
    let report = match merge.finalize() {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    eprintln!(
        "[spnn] merged {} partial(s) of {}: {} point(s), {} MC iteration(s)",
        paths.len(),
        report.scenario,
        report.rows.len(),
        report.total_iterations(),
    );
    let body = match format {
        "json" => to_json(&report),
        _ => to_csv(&report),
    };
    match option_value(args, "--out") {
        Some(path) => match write_report(Path::new(path), &body) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        None => {
            print!("{body}");
            ExitCode::SUCCESS
        }
    }
}

/// Runs one scenario as a `shards`-way split through `executor` — the
/// one driver behind `--exec local`, `--spawn`, and `--workers`. The
/// library merges partials as they arrive ([`run_distributed`]); rows
/// are logged in prefix order as their coverage becomes final, and the
/// emitted report is byte-identical to the unsharded `spnn run SPEC`
/// (CI-enforced for every executor).
#[allow(clippy::too_many_arguments)]
fn run_with_executor(
    spec: &ScenarioSpec,
    executor: &dyn Executor,
    shards: usize,
    format: &str,
    config: &EngineConfig,
    cache: &ContextCache,
    out: Option<&str>,
    stats: bool,
) -> ExitCode {
    let cancel = CancelToken::new();
    let ctx = ExecContext {
        config,
        cache,
        cancel: &cancel,
    };
    let started = std::time::Instant::now();
    let verbose = config.verbose;
    let mut total_points = 0usize;
    let report = match run_distributed(spec, executor, shards, &ctx, &mut |event| match event {
        StreamEvent::Started {
            scenario,
            total_points: n,
        } => {
            total_points = n;
            if verbose {
                eprintln!(
                    "[spnn] {scenario}: dispatching {shards} shard(s) via the {} executor",
                    executor.name()
                );
            }
        }
        StreamEvent::Row { index, row } if verbose => {
            eprintln!(
                "[spnn] row {}/{total_points} final: {}/{} → {:.4} ({} iters)",
                index + 1,
                row.topology,
                row.labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" "),
                row.mean,
                row.iterations
            );
        }
        _ => {}
    }) {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    eprintln!(
        "[spnn] {}: {} shard(s) via {} executor merged in {:.2?}: {} point(s), {} MC iteration(s)",
        report.scenario,
        shards,
        executor.name(),
        started.elapsed(),
        report.rows.len(),
        report.total_iterations(),
    );
    if stats {
        print_run_stats();
    }
    let body = match format {
        "json" => to_json(&report),
        _ => to_csv(&report),
    };
    match out {
        Some(path) => match write_report(Path::new(path), &body) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        None => {
            print!("{body}");
            ExitCode::SUCCESS
        }
    }
}

/// Reduces a scenario name to a safe file stem: path separators and other
/// non-portable characters become `_`, and an empty result falls back to
/// `scenario`.
fn sanitize_file_stem(name: &str) -> String {
    let stem: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if stem.chars().all(|c| c == '.' || c == '_') {
        "scenario".to_string()
    } else {
        stem
    }
}

/// Reads a coordinator worker list: one `http://host:port` URL per line,
/// blank lines and `#` comments skipped.
fn read_worker_list(path: &str) -> Result<Vec<String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading worker list {path}: {e}"))?;
    let workers: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    if workers.is_empty() {
        return Err(format!("worker list {path} names no workers"));
    }
    Ok(workers)
}

/// `spnn serve`: bind the scenario service and run until killed (or
/// gracefully drained by SIGTERM/SIGINT).
/// A numeric option with a default: absent → `default`; present →
/// parsed, rejecting garbage with the flag's name.
fn numeric_option<T: std::str::FromStr>(
    args: &[String],
    name: &str,
    default: T,
) -> Result<T, String> {
    match option_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse::<T>()
            .map_err(|_| format!("invalid {name} value {v:?}")),
    }
}

/// A duration option in (possibly fractional) seconds.
fn seconds_option(args: &[String], name: &str, default: Duration) -> Result<Duration, String> {
    match option_value(args, name) {
        None => Ok(default),
        Some(v) => match v.parse::<f64>() {
            Ok(s) if s.is_finite() && s >= 0.0 => Ok(Duration::from_secs_f64(s)),
            _ => Err(format!("invalid {name} value {v:?} (seconds)")),
        },
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    init_logging(args);
    let addr = option_value(args, "--addr").unwrap_or("127.0.0.1:7878");
    let workers = match option_value(args, "--workers") {
        None => 4,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => return fail(&format!("invalid worker count {v:?}")),
        },
    };
    let remote_workers = match option_value(args, "--workers-from") {
        None => Vec::new(),
        Some(path) => match read_worker_list(path) {
            Ok(w) => w,
            Err(e) => return fail(&e),
        },
    };
    let steal = has_flag(args, "--steal");
    let weights_from = match option_value(args, "--weights-from") {
        None => WeightSource::Equal,
        Some(v) => match WeightSource::parse(v) {
            Ok(w) => w,
            Err(e) => return fail(&e),
        },
    };
    let local_peers = match option_value(args, "--local-peers") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            _ => return fail(&format!("invalid --local-peers value {v:?}")),
        },
    };
    if remote_workers.is_empty()
        && (steal || local_peers > 0 || weights_from != WeightSource::Equal)
    {
        return fail("--steal/--weights-from/--local-peers need coordinator mode (--workers-from)");
    }
    let threads = match parse_threads(args) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let kernel = match parse_kernel(args) {
        Ok(k) => k,
        Err(e) => return fail(&e),
    };
    let verbose = !has_flag(args, "--quiet");
    let defaults = ServeConfig::default();
    let traffic = (|| -> Result<ServeConfig, String> {
        Ok(ServeConfig {
            queue_depth: numeric_option(args, "--queue-depth", defaults.queue_depth)?,
            queue_wait: seconds_option(args, "--queue-wait", defaults.queue_wait)?,
            read_timeout: seconds_option(args, "--read-timeout", defaults.read_timeout)?,
            write_timeout: seconds_option(args, "--write-timeout", defaults.write_timeout)?,
            budget: RequestBudget {
                max_points: numeric_option(args, "--max-points", 0)?,
                max_iterations: numeric_option(args, "--max-iterations", 0)?,
                max_rounds: numeric_option(args, "--max-rounds", 0)?,
            },
            quota: QuotaConfig {
                max_concurrent: numeric_option(args, "--quota-concurrent", 0)?,
                rate: numeric_option(args, "--quota-rate", 0.0)?,
                burst: numeric_option(args, "--quota-burst", 0.0)?,
            },
            breaker: BreakerConfig {
                failure_threshold: numeric_option(
                    args,
                    "--breaker-failures",
                    defaults.breaker.failure_threshold,
                )?,
                cooldown: seconds_option(args, "--breaker-cooldown", defaults.breaker.cooldown)?,
            },
            ..defaults
        })
    })();
    let traffic = match traffic {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let config = ServeConfig {
        workers,
        engine: EngineConfig {
            threads,
            kernel,
            verbose,
            cache_dir: (!has_flag(args, "--no-cache")).then(|| resolve_cache_dir(args)),
            // Server::bind replaces this with its own registry so every
            // instrument lands behind this server's GET /metrics.
            metrics: metrics::global().clone(),
            row_cache: resolve_row_cache(args),
        },
        remote_workers: remote_workers.clone(),
        steal,
        weights_from,
        local_peers,
        ..traffic
    };
    let server = match Server::bind(addr, config) {
        Ok(s) => s,
        Err(e) => return fail(&format!("binding {addr}: {e}")),
    };
    let graceful = install_signal_handlers();
    if let Ok(local) = server.local_addr() {
        eprintln!("[spnn] serving on http://{local}");
        eprintln!("[spnn]   POST /run          stream a scenario's rows as NDJSON (?format=csv)");
        eprintln!("[spnn]   POST /shard        run one shard, return its partial report");
        eprintln!("[spnn]   GET  /healthz      liveness: role, version, uptime, run counters");
        eprintln!("[spnn]   GET  /cache/stats  trained-context cache counters");
        eprintln!("[spnn]   GET  /metrics      Prometheus text exposition (all of the above)");
        if !remote_workers.is_empty() {
            eprintln!(
                "[spnn] coordinator over {} worker(s): {}",
                remote_workers.len(),
                remote_workers.join(", ")
            );
        }
        if graceful && verbose {
            eprintln!("[spnn] SIGTERM/SIGINT drains in-flight streams, then exits");
        }
    }
    match server.run() {
        Ok(()) => {
            if verbose {
                eprintln!("[spnn] drained; bye");
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("serving {addr}: {e}")),
    }
}

/// `spnn assemble`: rebuild the final report from a saved `/run` stream.
fn cmd_assemble(args: &[String]) -> ExitCode {
    let paths = positional_args(args);
    let [path] = paths.as_slice() else {
        return fail("assemble takes exactly one NDJSON stream file (`-` reads stdin)");
    };
    let format = option_value(args, "--format").unwrap_or("csv");
    if format != "csv" && format != "json" {
        return fail(&format!("unknown format {format:?} (csv|json)"));
    }
    let text = match read_spec_file(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let report = match assemble_report(&text) {
        Ok(r) => r,
        Err(e) => return fail(&format!("{path}: {e}")),
    };
    eprintln!(
        "[spnn] assembled {}: {} point(s), {} MC iteration(s)",
        report.scenario,
        report.rows.len(),
        report.total_iterations(),
    );
    let body = match format {
        "json" => to_json(&report),
        _ => to_csv(&report),
    };
    match option_value(args, "--out") {
        Some(path) => match write_report(Path::new(path), &body) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        None => {
            print!("{body}");
            ExitCode::SUCCESS
        }
    }
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        return fail("missing scenario file");
    };
    let text = match read_spec_file(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let spec = match ScenarioSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => return fail(&format!("{path}: {e}")),
    };
    // Compiling the zonal queue needs the mapped network; report the
    // statically-known grid instead of training one here.
    let effects_points = spec.effects.quantization_bits.len()
        * spec.effects.thermal_kappa.len()
        * spec.effects.mzi_loss_db.len();
    let plan_points = match spec.plan {
        PlanKind::Global | PlanKind::GlobalNoSigma => {
            format!("{}", spec.sweep.modes.len() * spec.sweep.sigmas.len())
        }
        PlanKind::Zonal => format!(
            "{} stage(s) × layers × zones (resolved at run time)",
            spec.zonal.stages.len()
        ),
    };
    println!("scenario:    {}", spec.name);
    println!("plan:        {:?}", spec.plan);
    println!("topologies:  {}", spec.topologies.len());
    println!("effects:     {effects_points} grid point(s)");
    println!("plan axes:   {plan_points}");
    println!(
        "budget:      <= {} iterations/point (min {}, target moe {})",
        spec.iterations, spec.min_iterations, spec.target_moe
    );
    let kernel = match parse_kernel(args) {
        Ok(k) => k,
        Err(e) => return fail(&e),
    };
    let fp = spnn_engine::Fingerprint::of_spec(&spec);
    println!("fingerprint: {} ({})", fp.short(), fp.canonical());
    println!(
        "queue fp:    {} (shard partials must match to merge)",
        spnn_engine::shard::queue_fingerprint_with(&spec, kernel)
    );
    println!(
        "kernel:      {kernel} (cpu tier: {}; partials are profile-scoped)",
        detected_tier()
    );
    println!("ok");
    ExitCode::SUCCESS
}

fn cmd_example(args: &[String]) -> ExitCode {
    let name = args.get(1).map(|s| s.as_str()).unwrap_or("fig4");
    match presets::by_name(name, &RunScale::from_env()) {
        Some(spec) => {
            print!("{}", spec.to_text());
            ExitCode::SUCCESS
        }
        None => fail(&format!(
            "unknown preset {name:?} (have: {})",
            presets::PRESET_NAMES.join(", ")
        )),
    }
}

/// Parses a byte count with an optional binary K/M/G suffix (`64M`).
fn parse_bytes(v: &str) -> Option<u64> {
    let (digits, multiplier) = match v.as_bytes().last()? {
        b'k' | b'K' => (&v[..v.len() - 1], 1u64 << 10),
        b'm' | b'M' => (&v[..v.len() - 1], 1 << 20),
        b'g' | b'G' => (&v[..v.len() - 1], 1 << 30),
        _ => (v, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(multiplier)
}

fn human_size(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

fn cmd_cache(args: &[String]) -> ExitCode {
    let dir = resolve_cache_dir(args);
    match args.get(1).map(|s| s.as_str()) {
        Some("path") => {
            println!("{}", dir.display());
            ExitCode::SUCCESS
        }
        Some("ls") => {
            let entries = match list_entries(&dir) {
                Ok(e) => e,
                Err(e) => return fail(&format!("listing {}: {e}", dir.display())),
            };
            if entries.is_empty() {
                eprintln!("[spnn] cache at {} is empty", dir.display());
                return ExitCode::SUCCESS;
            }
            println!(
                "{:<14} {:>8} {:>9} {:<9} summary",
                "key", "mappings", "size", "status"
            );
            for e in &entries {
                // char-based truncation: a stray non-ASCII file stem must
                // not panic the listing on a byte boundary.
                let key: String = e.key_hex.chars().take(12).collect();
                println!(
                    "{key:<14} {:>8} {:>9} {:<9} {}",
                    e.n_mappings.map_or_else(|| "-".into(), |n| n.to_string()),
                    human_size(e.size_bytes),
                    if e.ok { "ok" } else { "corrupt" },
                    e.canonical.as_deref().unwrap_or("(unreadable)"),
                );
            }
            ExitCode::SUCCESS
        }
        Some("rm") => {
            let keys = positional_args(&args[1..]);
            let all = has_flag(args, "--all");
            if keys.is_empty() && !all {
                return fail("cache rm needs entry key(s) or --all");
            }
            // Matching and deletion only need file names — no point
            // deserializing whole entries just to unlink them.
            let mut files: Vec<(PathBuf, String)> = Vec::new();
            match std::fs::read_dir(&dir) {
                Ok(rd) => {
                    for entry in rd.flatten() {
                        let path = entry.path();
                        if path.extension().and_then(|e| e.to_str()) != Some("spnnctx") {
                            continue;
                        }
                        if let Some(stem) = path
                            .file_stem()
                            .and_then(|s| s.to_str())
                            .and_then(|s| s.strip_prefix("ctx-"))
                        {
                            let stem = stem.to_string();
                            files.push((path, stem));
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return fail(&format!("listing {}: {e}", dir.display())),
            }
            files.sort();
            // Validate every key before touching anything: a typo'd key
            // must not leave the cache half-deleted.
            for k in &keys {
                if k.is_empty() || !files.iter().any(|(_, hex)| hex.starts_with(k)) {
                    return fail(&format!("no cache entry matches key {k:?}"));
                }
            }
            let mut removed = 0usize;
            for (path, hex) in &files {
                if all || keys.iter().any(|k| hex.starts_with(k)) {
                    match std::fs::remove_file(path) {
                        Ok(()) => {
                            removed += 1;
                            eprintln!("[spnn] removed {}", path.display());
                        }
                        Err(err) => return fail(&format!("removing {}: {err}", path.display())),
                    }
                }
            }
            eprintln!(
                "[spnn] removed {removed} entr{}",
                if removed == 1 { "y" } else { "ies" }
            );
            ExitCode::SUCCESS
        }
        Some("gc") => {
            let max_entries = match option_value(args, "--max-entries") {
                None => None,
                Some(v) => match v.parse::<usize>() {
                    Ok(n) => Some(n),
                    Err(_) => return fail(&format!("invalid --max-entries {v:?}")),
                },
            };
            let max_bytes = match option_value(args, "--max-bytes") {
                None => None,
                Some(v) => match parse_bytes(v) {
                    Some(n) => Some(n),
                    None => return fail(&format!("invalid --max-bytes {v:?} (e.g. 500000, 64M)")),
                },
            };
            if max_entries.is_none() && max_bytes.is_none() {
                return fail("cache gc needs --max-entries and/or --max-bytes");
            }
            match gc(
                &dir,
                &GcLimits {
                    max_entries,
                    max_bytes,
                },
            ) {
                Ok(out) => {
                    eprintln!(
                        "[spnn] cache gc at {}: kept {} entr{} ({}), removed {} ({} freed)",
                        dir.display(),
                        out.kept,
                        if out.kept == 1 { "y" } else { "ies" },
                        human_size(out.bytes_kept),
                        out.removed,
                        human_size(out.bytes_freed),
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&format!("cache gc at {}: {e}", dir.display())),
            }
        }
        Some(other) => fail(&format!("unknown cache command {other:?} (ls|rm|gc|path)")),
        None => fail("cache needs a subcommand (ls|rm|gc|path)"),
    }
}

/// `spnn rowcache {ls,rm,gc,path}` — the row-level result store's
/// counterpart of [`cmd_cache`], over `row-*.spnnrow` / `man-*.spnnrow`
/// files (see `docs/row-cache.md`).
fn cmd_rowcache(args: &[String]) -> ExitCode {
    let dir = resolve_row_cache_dir(args);
    match args.get(1).map(|s| s.as_str()) {
        Some("path") => {
            println!("{}", dir.display());
            ExitCode::SUCCESS
        }
        Some("ls") => {
            let entries = match rowcache::list_entries(&dir) {
                Ok(e) => e,
                Err(e) => return fail(&format!("listing {}: {e}", dir.display())),
            };
            if entries.is_empty() {
                eprintln!("[spnn] row cache at {} is empty", dir.display());
                return ExitCode::SUCCESS;
            }
            println!(
                "{:<14} {:<9} {:>9} {:<9} summary",
                "key", "kind", "size", "status"
            );
            for e in &entries {
                let key: String = e.key_hex.chars().take(12).collect();
                println!(
                    "{key:<14} {:<9} {:>9} {:<9} {}",
                    e.kind,
                    human_size(e.size_bytes),
                    if e.ok { "ok" } else { "corrupt" },
                    e.detail.as_deref().unwrap_or("(unreadable)"),
                );
            }
            ExitCode::SUCCESS
        }
        Some("rm") => {
            let keys = positional_args(&args[1..]);
            let all = has_flag(args, "--all");
            if keys.is_empty() && !all {
                return fail("rowcache rm needs entry key(s) or --all");
            }
            let mut files: Vec<(PathBuf, String)> = Vec::new();
            match std::fs::read_dir(&dir) {
                Ok(rd) => {
                    for entry in rd.flatten() {
                        let path = entry.path();
                        if path.extension().and_then(|e| e.to_str()) != Some(rowcache::EXTENSION) {
                            continue;
                        }
                        if let Some(stem) =
                            path.file_stem().and_then(|s| s.to_str()).and_then(|s| {
                                s.strip_prefix("row-")
                                    .or_else(|| s.strip_prefix("man-"))
                                    .map(str::to_string)
                            })
                        {
                            files.push((path, stem));
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return fail(&format!("listing {}: {e}", dir.display())),
            }
            files.sort();
            for k in &keys {
                if k.is_empty() || !files.iter().any(|(_, hex)| hex.starts_with(k)) {
                    return fail(&format!("no row-cache entry matches key {k:?}"));
                }
            }
            let mut removed = 0usize;
            for (path, hex) in &files {
                if all || keys.iter().any(|k| hex.starts_with(k)) {
                    match std::fs::remove_file(path) {
                        Ok(()) => {
                            removed += 1;
                            eprintln!("[spnn] removed {}", path.display());
                        }
                        Err(err) => return fail(&format!("removing {}: {err}", path.display())),
                    }
                }
            }
            eprintln!(
                "[spnn] removed {removed} entr{}",
                if removed == 1 { "y" } else { "ies" }
            );
            ExitCode::SUCCESS
        }
        Some("gc") => {
            let max_entries = match option_value(args, "--max-entries") {
                None => None,
                Some(v) => match v.parse::<usize>() {
                    Ok(n) => Some(n),
                    Err(_) => return fail(&format!("invalid --max-entries {v:?}")),
                },
            };
            let max_bytes = match option_value(args, "--max-bytes") {
                None => None,
                Some(v) => match parse_bytes(v) {
                    Some(n) => Some(n),
                    None => return fail(&format!("invalid --max-bytes {v:?} (e.g. 500000, 64M)")),
                },
            };
            if max_entries.is_none() && max_bytes.is_none() {
                return fail("rowcache gc needs --max-entries and/or --max-bytes");
            }
            match rowcache::gc(
                &dir,
                &GcLimits {
                    max_entries,
                    max_bytes,
                },
            ) {
                Ok(out) => {
                    eprintln!(
                        "[spnn] rowcache gc at {}: kept {} entr{} ({}), removed {} ({} freed)",
                        dir.display(),
                        out.kept,
                        if out.kept == 1 { "y" } else { "ies" },
                        human_size(out.bytes_kept),
                        out.removed,
                        human_size(out.bytes_freed),
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&format!("rowcache gc at {}: {e}", dir.display())),
            }
        }
        Some(other) => fail(&format!(
            "unknown rowcache command {other:?} (ls|rm|gc|path)"
        )),
        None => fail("rowcache needs a subcommand (ls|rm|gc|path)"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("run") => cmd_run(&args),
        Some("merge") => cmd_merge(&args),
        Some("serve") => cmd_serve(&args),
        Some("assemble") => cmd_assemble(&args),
        Some("validate") => cmd_validate(&args),
        Some("example") => cmd_example(&args),
        Some("cache") => cmd_cache(&args),
        Some("rowcache") => cmd_rowcache(&args),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown command {other:?}")),
    }
}
