//! `spnn` — run declarative SPNN Monte-Carlo scenarios from the command
//! line.
//!
//! ```text
//! spnn run <spec.scn | - | --preset NAME> [--format csv|json] [--out FILE]
//!          [--threads N] [--quiet]
//! spnn validate <spec.scn>
//! spnn example [NAME]
//! spnn help
//! ```
//!
//! Scenario scale knobs for presets come from the usual `SPNN_*`
//! environment variables (`SPNN_MC`, `SPNN_NTRAIN`, `SPNN_NTEST`,
//! `SPNN_EPOCHS`, `SPNN_SEED`, `SPNN_TARGET_MOE`).

use spnn_engine::prelude::*;
use spnn_engine::runner::EngineError;
use std::io::Read as _;
use std::process::ExitCode;

const USAGE: &str = "\
spnn — batched, adaptive Monte-Carlo simulation engine for silicon-photonic
neural networks (reproduces the DATE 2021 uncertainty-modeling paper).

USAGE:
    spnn run <SPEC>          run a scenario file (`-` reads stdin)
    spnn run --preset NAME   run a built-in scenario (fig4, fig5, mesh,
                             quant, thermal) at SPNN_* env scale
    spnn validate <SPEC>     parse a scenario and report its queue size
    spnn example [NAME]      print a built-in scenario file (default fig4)
    spnn help                this text

OPTIONS (run):
    --format csv|json        output format (default csv)
    --out FILE               write output to FILE (default stdout)
    --threads N              worker threads per sweep point
                             (default: all cores; results are identical
                             for any thread count)
    --quiet                  suppress progress logging on stderr

SCALE (env): SPNN_MC, SPNN_NTRAIN, SPNN_NTEST, SPNN_EPOCHS, SPNN_SEED,
SPNN_TARGET_MOE (e.g. SPNN_TARGET_MOE=0.01 enables adaptive early stop).
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("run `spnn help` for usage");
    ExitCode::FAILURE
}

fn read_spec_file(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn load_spec(args: &[String]) -> Result<ScenarioSpec, String> {
    if let Some(pos) = args.iter().position(|a| a == "--preset") {
        let name = args
            .get(pos + 1)
            .ok_or_else(|| "--preset needs a name".to_string())?;
        return presets::by_name(name, &RunScale::from_env()).ok_or_else(|| {
            format!(
                "unknown preset {name:?} (have: {})",
                presets::PRESET_NAMES.join(", ")
            )
        });
    }
    let path = positional_arg(args)
        .ok_or_else(|| "missing scenario file (or --preset NAME)".to_string())?;
    let text = read_spec_file(path)?;
    ScenarioSpec::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// The first positional argument after the subcommand, skipping options
/// and their values *by position* (a path that merely equals some option's
/// value, e.g. `spnn run fig4.json --out fig4.json`, must still be found).
fn positional_arg(args: &[String]) -> Option<&str> {
    let mut i = 1; // args[0] is the subcommand
    while i < args.len() {
        match args[i].as_str() {
            "--format" | "--out" | "--threads" | "--preset" => i += 2,
            s if s.starts_with("--") => i += 1,
            s => return Some(s),
        }
    }
    None
}

fn option_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|p| args.get(p + 1))
        .map(|s| s.as_str())
}

fn cmd_run(args: &[String]) -> ExitCode {
    let spec = match load_spec(args) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let format = option_value(args, "--format").unwrap_or("csv");
    if format != "csv" && format != "json" {
        return fail(&format!("unknown format {format:?} (csv|json)"));
    }
    let threads = match option_value(args, "--threads") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => return fail(&format!("invalid thread count {v:?}")),
        },
    };
    let config = EngineConfig {
        threads,
        verbose: !args.iter().any(|a| a == "--quiet"),
    };

    let started = std::time::Instant::now();
    let report = match run_scenario(&spec, &config) {
        Ok(r) => r,
        Err(EngineError::Invalid(m)) => return fail(&format!("invalid scenario: {m}")),
        Err(e) => return fail(&e.to_string()),
    };
    let elapsed = started.elapsed();
    eprintln!(
        "[spnn] {}: {} points, {} MC iterations in {:.2?} ({:.0} iters/s)",
        report.scenario,
        report.rows.len(),
        report.total_iterations(),
        elapsed,
        report.total_iterations() as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    for t in &report.topologies {
        eprintln!(
            "[spnn]   {}: software acc {:.2}%, nominal hardware acc {:.2}%",
            t.topology,
            t.software_accuracy * 100.0,
            t.nominal_accuracy * 100.0
        );
    }

    let body = match format {
        "json" => to_json(&report),
        _ => to_csv(&report),
    };
    match option_value(args, "--out") {
        Some(path) => {
            if let Some(dir) = std::path::Path::new(path).parent() {
                if !dir.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(dir);
                }
            }
            if let Err(e) = std::fs::write(path, &body) {
                return fail(&format!("writing {path}: {e}"));
            }
            eprintln!("[spnn] wrote {path}");
        }
        None => print!("{body}"),
    }
    ExitCode::SUCCESS
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        return fail("missing scenario file");
    };
    let text = match read_spec_file(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let spec = match ScenarioSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => return fail(&format!("{path}: {e}")),
    };
    // Compiling the zonal queue needs the mapped network; report the
    // statically-known grid instead of training one here.
    let effects_points = spec.effects.quantization_bits.len()
        * spec.effects.thermal_kappa.len()
        * spec.effects.mzi_loss_db.len();
    let plan_points = match spec.plan {
        PlanKind::Global | PlanKind::GlobalNoSigma => {
            format!("{}", spec.sweep.modes.len() * spec.sweep.sigmas.len())
        }
        PlanKind::Zonal => format!(
            "{} stage(s) × layers × zones (resolved at run time)",
            spec.zonal.stages.len()
        ),
    };
    println!("scenario:   {}", spec.name);
    println!("plan:       {:?}", spec.plan);
    println!("topologies: {}", spec.topologies.len());
    println!("effects:    {effects_points} grid point(s)");
    println!("plan axes:  {plan_points}");
    println!(
        "budget:     <= {} iterations/point (min {}, target moe {})",
        spec.iterations, spec.min_iterations, spec.target_moe
    );
    println!("ok");
    ExitCode::SUCCESS
}

fn cmd_example(args: &[String]) -> ExitCode {
    let name = args.get(1).map(|s| s.as_str()).unwrap_or("fig4");
    match presets::by_name(name, &RunScale::from_env()) {
        Some(spec) => {
            print!("{}", spec.to_text());
            ExitCode::SUCCESS
        }
        None => fail(&format!(
            "unknown preset {name:?} (have: {})",
            presets::PRESET_NAMES.join(", ")
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("run") => cmd_run(&args),
        Some("validate") => cmd_validate(&args),
        Some("example") => cmd_example(&args),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown command {other:?}")),
    }
}
