//! A minimal, dependency-free HTTP/1.1 layer for [`crate::serve`].
//!
//! The environment vendors no HTTP crates, so the scenario service reads
//! and writes the protocol itself over `std::net` streams. The subset
//! implemented here is exactly what the service needs:
//!
//! - **Requests**: request line + headers + an optional `Content-Length`
//!   body ([`read_request`]). Chunked request bodies are rejected with
//!   `411 Length Required`; header and body sizes are bounded so a
//!   misbehaving client cannot exhaust memory.
//! - **Responses**: either a complete body with a `Content-Length`
//!   ([`Response::write_to`]) or a **close-delimited stream**
//!   ([`Response::write_streaming_head`]) — the server sends the header
//!   with `Connection: close`, then writes body bytes as they are
//!   produced and signals the end by closing the socket. This is how
//!   `POST /run` streams NDJSON rows as sweep points complete, with no
//!   chunked-encoding framing for clients to undo (`curl` shows lines
//!   as they arrive).
//!
//! Everything here is transport plumbing: no route logic, no engine
//! types. See [`crate::serve`] for the endpoints and `docs/serving.md`
//! for the wire-level reference.

use std::fmt;
use std::io::{self, BufRead, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (scenario specs are a few KiB), in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request: method, target path, lower-cased headers, body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path plus optional query string), as received.
    pub path: String,
    /// Headers in arrival order; names are lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path without its query string.
    pub fn route(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// The first value of query parameter `key`, if present. Values are
    /// taken literally (no percent-decoding) — the service's parameters
    /// are plain tokens (`format=csv`, `shards=3`).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.path.split_once('?')?.1.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be read. [`HttpError::status`] maps each case
/// to the response status the server should answer with.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed or closed mid-request.
    Io(io::Error),
    /// The socket's read deadline expired mid-request — a client that
    /// sent half a head (or half a body) and then stalled. Answered with
    /// `408 Request Timeout` so the worker thread is released instead of
    /// pinned forever.
    Timeout,
    /// The request line or a header is not parseable HTTP/1.x.
    Malformed(String),
    /// Headers exceed [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// `Content-Length` exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// A body-carrying request without a usable `Content-Length`.
    LengthRequired,
}

impl HttpError {
    /// The HTTP status code this error should be answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Io(_) => 400,
            HttpError::Timeout => 408,
            HttpError::Malformed(_) => 400,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::LengthRequired => 411,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Timeout => write!(f, "request read timed out"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::HeadTooLarge => write!(f, "request headers exceed {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            HttpError::LengthRequired => write!(f, "request body needs a Content-Length"),
        }
    }
}

/// Classifies a read failure: a socket whose read deadline expired
/// (`WouldBlock`/`TimedOut`, depending on platform) is a [`HttpError::Timeout`],
/// anything else is [`HttpError::Io`].
fn read_error(e: io::Error) -> HttpError {
    if matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    ) {
        HttpError::Timeout
    } else {
        HttpError::Io(e)
    }
}

impl std::error::Error for HttpError {}

/// Reads one HTTP/1.x request (head + `Content-Length` body) from a
/// buffered stream.
///
/// # Errors
///
/// Returns an [`HttpError`] describing the violation; callers should
/// answer with [`HttpError::status`] and close the connection.
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_head_line(stream)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let line = read_head_line(stream)?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        // The service only accepts small spec bodies; chunked uploads are
        // not worth the framing code.
        return Err(HttpError::LengthRequired);
    }
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
    };
    if length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; length];
    io::Read::read_exact(stream, &mut body).map_err(read_error)?;
    Ok(Request { body, ..request })
}

/// Reads one CRLF- (or LF-) terminated head line, bounded by
/// [`MAX_HEAD_BYTES`].
fn read_head_line(stream: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match io::Read::read(stream, &mut byte) {
            Ok(0) => return Err(HttpError::Malformed("connection closed mid-head".into())),
            Ok(_) => {}
            Err(e) => return Err(read_error(e)),
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| HttpError::Malformed("non-UTF-8 request head".into()));
        }
        line.push(byte[0]);
        if line.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
    }
}

/// The reason phrase for the status codes the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A complete (non-streaming) HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (see [`status_text`]).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `Retry-After` on a `429`), written
    /// after the standard ones. Names must be valid header tokens;
    /// values must be single-line.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A response with an explicit (static) content type — e.g. the
    /// Prometheus text exposition served by `GET /metrics`.
    pub fn text(status: u16, content_type: &'static str, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Returns the response with `name: value` appended to its headers —
    /// how a `429` carries its `Retry-After`.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Writes the response with a `Content-Length` and `Connection:
    /// close`.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(stream, "\r\n")?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }

    /// Writes only the head of a **close-delimited streaming** response:
    /// no `Content-Length`, `Connection: close`. The caller then writes
    /// body bytes as they become available (flushing after each line to
    /// defeat buffering) and ends the body by closing the socket.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_streaming_head(
        stream: &mut impl Write,
        status: u16,
        content_type: &str,
    ) -> io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: close\r\nX-Accel-Buffering: no\r\n\r\n",
            status,
            status_text(status),
            content_type
        )?;
        stream.flush()
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// A complete response received by the client helpers.
#[derive(Debug, Clone)]
pub struct FetchResponse {
    /// Status code from the response line.
    pub status: u16,
    /// Response body (to `Content-Length`, else to connection close).
    pub body: Vec<u8>,
}

impl FetchResponse {
    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Splits an `http://host:port/path?query` URL into `(authority, path)`.
/// The path defaults to `/`; HTTPS is out of scope for the in-cluster
/// coordinator/worker link this client exists for.
fn split_url(url: &str) -> io::Result<(&str, String)> {
    let rest = url.strip_prefix("http://").ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unsupported URL {url:?} (only http:// is spoken here)"),
        )
    })?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], rest[i..].to_string()),
        None => (rest, "/".to_string()),
    };
    if authority.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("URL {url:?} has no host"),
        ));
    }
    Ok((authority, path))
}

/// How long the client waits for the TCP connect to a worker.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);
/// How long a blocked request write (peer accepted but reads nothing)
/// may stall before the send fails — spec bodies are a few KiB, so any
/// healthy peer drains them immediately.
const WRITE_TIMEOUT: Duration = Duration::from_secs(60);
/// Poll interval while reading a response: each tick re-checks `abort`.
const CLIENT_POLL: Duration = Duration::from_millis(500);

/// `POST`s `body` to an `http://host:port/path` URL and reads the whole
/// response (status + body). Blocking, bounded, dependency-free — the
/// client half of the coordinator/worker link (`POST /shard`).
///
/// The authority may name a host with a port (`127.0.0.1:7901`); the
/// address is resolved once. While waiting for response bytes the
/// `abort` callback (if any) is polled about twice a second; returning
/// `true` abandons the request with [`io::ErrorKind::Interrupted`] —
/// this is how a shutting-down coordinator cancels outstanding remote
/// shards. `idle_timeout` bounds how long the response may make *no*
/// progress before the request is abandoned as timed out; pass `None`
/// when the peer legitimately computes before writing a single byte —
/// a `/shard` response arrives only once the whole slice is done, so
/// the coordinator bounds those waits by cancellation, not by a clock
/// (a killed worker closes the socket, which is an error, not idleness).
///
/// # Errors
///
/// Propagates URL, connect, write, and read failures; a malformed
/// response head is [`io::ErrorKind::InvalidData`].
pub fn http_post(
    url: &str,
    body: &[u8],
    content_type: &str,
    abort: Option<&dyn Fn() -> bool>,
    idle_timeout: Option<Duration>,
) -> io::Result<FetchResponse> {
    let (authority, path) = split_url(url)?;
    let addr = authority.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::NotFound, format!("{authority}: no address"))
    })?;
    let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: {authority}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;

    let raw = read_close_delimited(&mut stream, authority, abort, idle_timeout)?;
    parse_response(&raw)
}

/// `GET`s an `http://host:port/path` URL and reads the whole response —
/// the client half of the coordinator's half-open breaker probe
/// (`GET /healthz`). Same connect/abort/idle semantics as [`http_post`].
///
/// # Errors
///
/// Propagates URL, connect, write, and read failures; a malformed
/// response head is [`io::ErrorKind::InvalidData`].
pub fn http_get(
    url: &str,
    abort: Option<&dyn Fn() -> bool>,
    idle_timeout: Option<Duration>,
) -> io::Result<FetchResponse> {
    let (authority, path) = split_url(url)?;
    let addr = authority.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::NotFound, format!("{authority}: no address"))
    })?;
    let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {authority}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;

    let raw = read_close_delimited(&mut stream, authority, abort, idle_timeout)?;
    parse_response(&raw)
}

/// Reads a close-delimited response body off `stream`, polling `abort`
/// between read timeouts and bounding no-progress stretches by
/// `idle_timeout`.
///
/// Responses are close-delimited or Content-Length-delimited; either
/// way the server closes after one exchange (`Connection: close`), so
/// reading to EOF captures the full response. Short read timeouts let
/// the abort callback interleave with a slow worker.
fn read_close_delimited(
    stream: &mut TcpStream,
    authority: &str,
    abort: Option<&dyn Fn() -> bool>,
    idle_timeout: Option<Duration>,
) -> io::Result<Vec<u8>> {
    stream.set_read_timeout(Some(CLIENT_POLL))?;
    let mut raw = Vec::new();
    let mut idle = Duration::ZERO;
    let mut buf = [0u8; 16 * 1024];
    loop {
        match io::Read::read(stream, &mut buf) {
            Ok(0) => break,
            Ok(n) => {
                idle = Duration::ZERO;
                raw.extend_from_slice(&buf[..n]);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if abort.is_some_and(|f| f()) {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "request cancelled",
                    ));
                }
                idle += CLIENT_POLL;
                if let Some(limit) = idle_timeout {
                    if idle >= limit {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("no response bytes from {authority} for {limit:?}"),
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(raw)
}

/// Parses a raw HTTP/1.x response into status + body, honoring
/// `Content-Length` when present (trailing bytes past it are ignored).
fn parse_response(raw: &[u8]) -> io::Result<FetchResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response head never ended"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body_start = head_end + 4;
    let body = match content_length {
        Some(n) if raw.len() >= body_start + n => raw[body_start..body_start + n].to_vec(),
        Some(n) => {
            return Err(bad(&format!(
                "response truncated: {} of {n} body byte(s)",
                raw.len().saturating_sub(body_start)
            )))
        }
        None => raw[body_start..].to_vec(),
    };
    Ok(FetchResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_with_body() {
        let r = parse("POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/run");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn parses_get_without_body_and_splits_query() {
        let r = parse("GET /healthz?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.route(), "/healthz");
        assert!(r.body.is_empty());
    }

    #[test]
    fn lf_only_lines_are_tolerated() {
        let r = parse("GET / HTTP/1.0\nA: b\n\n").unwrap();
        assert_eq!(r.header("a"), Some("b"));
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(matches!(
            parse("nonsense\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_and_chunked_bodies() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&huge), Err(HttpError::BodyTooLarge)));
        assert_eq!(HttpError::BodyTooLarge.status(), 413);
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::LengthRequired)
        ));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn query_params_are_found_and_route_is_clean() {
        let r = parse("POST /run?format=csv&x=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.route(), "/run");
        assert_eq!(r.query_param("format"), Some("csv"));
        assert_eq!(r.query_param("x"), Some("1"));
        assert_eq!(r.query_param("nope"), None);
        let r = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.query_param("format"), None);
    }

    #[test]
    fn client_posts_and_reads_content_length_and_close_delimited_responses() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // One Content-Length exchange, then one close-delimited one.
            for response in [
                "HTTP/1.1 200 OK\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello"
                    .to_string(),
                "HTTP/1.1 418 Teapot\r\nConnection: close\r\n\r\nshort and stout".to_string(),
            ] {
                let (mut s, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(s.try_clone().unwrap());
                let req = read_request(&mut reader).unwrap();
                assert_eq!(req.method, "POST");
                assert_eq!(req.route(), "/shard");
                assert_eq!(req.query_param("shards"), Some("3"));
                s.write_all(response.as_bytes()).unwrap();
            }
        });
        let url = format!("http://{addr}/shard?shards=3&index=0");
        let a = http_post(
            &url,
            b"spec",
            "text/plain",
            None,
            Some(Duration::from_secs(10)),
        )
        .unwrap();
        assert_eq!((a.status, a.text().as_str()), (200, "hello"));
        let b = http_post(
            &url,
            b"spec",
            "text/plain",
            None,
            Some(Duration::from_secs(10)),
        )
        .unwrap();
        assert_eq!((b.status, b.text().as_str()), (418, "short and stout"));
        server.join().unwrap();
    }

    #[test]
    fn client_rejects_bad_urls_and_dead_peers() {
        assert!(http_post("ftp://x/", b"", "text/plain", None, None).is_err());
        assert!(http_post("http:///path", b"", "text/plain", None, None).is_err());
        // A port nothing listens on: connect must fail, not hang.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        }; // listener dropped — port is free again
        assert!(http_post(&format!("http://{dead}/"), b"", "text/plain", None, None).is_err());
    }

    #[test]
    fn response_parser_handles_truncation() {
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nshort").is_err());
        assert!(parse_response(b"no head end").is_err());
        let ok = parse_response(b"HTTP/1.1 204 No Content\r\n\r\n").unwrap();
        assert_eq!((ok.status, ok.body.len()), (204, 0));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut head = Vec::new();
        Response::write_streaming_head(&mut head, 200, "application/x-ndjson").unwrap();
        let head = String::from_utf8(head).unwrap();
        assert!(head.contains("Connection: close"));
        assert!(!head.contains("Content-Length"));
    }

    #[test]
    fn extra_headers_render_between_standard_ones_and_the_body() {
        let mut out = Vec::new();
        Response::json(429, "{\"error\":\"shed\"}")
            .with_header("Retry-After", "5")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("\r\nRetry-After: 5\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"shed\"}"));
        // The client parser sees the extra header like any other.
        let parsed = parse_response(text.as_bytes()).unwrap();
        assert_eq!(parsed.status, 429);
    }

    #[test]
    fn half_sent_head_times_out_as_408() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Client sends half a header line and then goes quiet.
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /run HTTP/1.1\r\nX-Half: ").unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });
        let (s, _) = listener.accept().unwrap();
        s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let err = read_request(&mut BufReader::new(s)).unwrap_err();
        assert!(matches!(err, HttpError::Timeout));
        assert_eq!(err.status(), 408);
        client.join().unwrap();
    }

    #[test]
    fn client_gets_and_reads_responses() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let req = read_request(&mut reader).unwrap();
            assert_eq!(req.method, "GET");
            assert_eq!(req.route(), "/healthz");
            assert!(req.body.is_empty());
            s.write_all(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\n{\"ok\":true}")
                .unwrap();
        });
        let got = http_get(
            &format!("http://{addr}/healthz"),
            None,
            Some(Duration::from_secs(10)),
        )
        .unwrap();
        assert_eq!((got.status, got.text().as_str()), (200, "{\"ok\":true}"));
        server.join().unwrap();
    }
}
