//! A minimal, dependency-free HTTP/1.1 layer for [`crate::serve`].
//!
//! The environment vendors no HTTP crates, so the scenario service reads
//! and writes the protocol itself over `std::net` streams. The subset
//! implemented here is exactly what the service needs:
//!
//! - **Requests**: request line + headers + an optional `Content-Length`
//!   body ([`read_request`]). Chunked request bodies are rejected with
//!   `411 Length Required`; header and body sizes are bounded so a
//!   misbehaving client cannot exhaust memory.
//! - **Responses**: either a complete body with a `Content-Length`
//!   ([`Response::write_to`]) or a **close-delimited stream**
//!   ([`Response::write_streaming_head`]) — the server sends the header
//!   with `Connection: close`, then writes body bytes as they are
//!   produced and signals the end by closing the socket. This is how
//!   `POST /run` streams NDJSON rows as sweep points complete, with no
//!   chunked-encoding framing for clients to undo (`curl` shows lines
//!   as they arrive).
//!
//! Everything here is transport plumbing: no route logic, no engine
//! types. See [`crate::serve`] for the endpoints and `docs/serving.md`
//! for the wire-level reference.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (scenario specs are a few KiB), in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request: method, target path, lower-cased headers, body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path plus optional query string), as received.
    pub path: String,
    /// Headers in arrival order; names are lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path without its query string.
    pub fn route(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }
}

/// Why a request could not be read. [`HttpError::status`] maps each case
/// to the response status the server should answer with.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed or closed mid-request.
    Io(io::Error),
    /// The request line or a header is not parseable HTTP/1.x.
    Malformed(String),
    /// Headers exceed [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// `Content-Length` exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// A body-carrying request without a usable `Content-Length`.
    LengthRequired,
}

impl HttpError {
    /// The HTTP status code this error should be answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Io(_) => 400,
            HttpError::Malformed(_) => 400,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::LengthRequired => 411,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::HeadTooLarge => write!(f, "request headers exceed {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            HttpError::LengthRequired => write!(f, "request body needs a Content-Length"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one HTTP/1.x request (head + `Content-Length` body) from a
/// buffered stream.
///
/// # Errors
///
/// Returns an [`HttpError`] describing the violation; callers should
/// answer with [`HttpError::status`] and close the connection.
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_head_line(stream)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let line = read_head_line(stream)?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        // The service only accepts small spec bodies; chunked uploads are
        // not worth the framing code.
        return Err(HttpError::LengthRequired);
    }
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
    };
    if length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; length];
    io::Read::read_exact(stream, &mut body).map_err(HttpError::Io)?;
    Ok(Request { body, ..request })
}

/// Reads one CRLF- (or LF-) terminated head line, bounded by
/// [`MAX_HEAD_BYTES`].
fn read_head_line(stream: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match io::Read::read(stream, &mut byte) {
            Ok(0) => return Err(HttpError::Malformed("connection closed mid-head".into())),
            Ok(_) => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| HttpError::Malformed("non-UTF-8 request head".into()));
        }
        line.push(byte[0]);
        if line.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
    }
}

/// The reason phrase for the status codes the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// A complete (non-streaming) HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (see [`status_text`]).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// Writes the response with a `Content-Length` and `Connection:
    /// close`.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        )?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }

    /// Writes only the head of a **close-delimited streaming** response:
    /// no `Content-Length`, `Connection: close`. The caller then writes
    /// body bytes as they become available (flushing after each line to
    /// defeat buffering) and ends the body by closing the socket.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_streaming_head(
        stream: &mut impl Write,
        status: u16,
        content_type: &str,
    ) -> io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: close\r\nX-Accel-Buffering: no\r\n\r\n",
            status,
            status_text(status),
            content_type
        )?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_with_body() {
        let r = parse("POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/run");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn parses_get_without_body_and_splits_query() {
        let r = parse("GET /healthz?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.route(), "/healthz");
        assert!(r.body.is_empty());
    }

    #[test]
    fn lf_only_lines_are_tolerated() {
        let r = parse("GET / HTTP/1.0\nA: b\n\n").unwrap();
        assert_eq!(r.header("a"), Some("b"));
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(matches!(
            parse("nonsense\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_and_chunked_bodies() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&huge), Err(HttpError::BodyTooLarge)));
        assert_eq!(HttpError::BodyTooLarge.status(), 413);
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::LengthRequired)
        ));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut head = Vec::new();
        Response::write_streaming_head(&mut head, 200, "application/x-ndjson").unwrap();
        let head = String::from_utf8(head).unwrap();
        assert!(head.contains("Connection: close"));
        assert!(!head.contains("Content-Length"));
    }
}
