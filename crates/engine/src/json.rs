//! A minimal JSON reader for the shard partial-report format.
//!
//! The environment vendors no serde, so [`crate::shard`] parses its own
//! emission with this small recursive-descent parser. Numbers keep their
//! **literal text**: `f64` values are recovered by parsing the exact
//! digits the writer emitted (Rust's shortest-round-trip `{}` format), so
//! every float survives the JSON round trip bit-for-bit, and 64-bit seeds
//! are read as integers without passing through `f64`.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved (lookups are
/// linear — partial reports have a handful of keys per object).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `f64` (exact for round-trip-formatted output).
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `u64` (exact — no float round trip).
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `usize`.
    pub(crate) fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing garbage is an error).
pub(crate) fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multi-byte UTF-8 passes through verbatim (the input is a
                // &str, so the bytes are valid UTF-8 by construction).
                _ => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.bytes.len() - self.pos < 4 {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" || text.parse::<f64>().is_err() {
            return Err(self.err("invalid number"));
        }
        Ok(Json::Num(text.to_string()))
    }
}

/// Formats a float for JSON emission: shortest-round-trip decimals for
/// finite values (`{}` — bit-exactly recoverable by [`parse`]), `null`
/// otherwise. The single float writer behind [`crate::report::to_json`]
/// and the serve NDJSON events — the dialects must never diverge.
pub(crate) fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for JSON emission — the single escaper behind both
/// [`crate::report::to_json`] and the partial-report writer.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        // Shortest-round-trip formatting + literal-text parsing is lossless
        // for every finite f64 — spot-check awkward values.
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -0.0,
            1e-300,
            0.49999999999999994,
        ] {
            let text = format!("{{\"x\": {x}}}");
            let v = parse(&text).unwrap();
            assert_eq!(
                v.get("x").unwrap().as_f64().unwrap().to_bits(),
                x.to_bits(),
                "{x}"
            );
        }
    }

    #[test]
    fn u64_seeds_do_not_pass_through_f64() {
        let seed = u64::MAX - 17; // not representable as f64
        let v = parse(&format!("{{\"seed\": {seed}}}")).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}é✓";
        let v = parse(&format!("{{\"s\": \"{}\"}}", escape(original))).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn malformed_documents_error() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"abc",
            "{\"a\": 1,}",
            "-",
            "\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }
}
