//! Structured tracing: leveled key=value event lines on stderr and
//! RAII span timers that feed [`crate::metrics`] histograms.
//!
//! Events go to **stderr only** — stdout belongs to reports, and the
//! determinism contract (reports bit-identical across thread counts,
//! shardings, executors, and verbosity) depends on that. Instrumentation
//! reads clocks but never feeds them back into computation; CI runs the
//! byte-identity gates with `SPNN_LOG=trace` to prove it.
//!
//! Verbosity is filtered by the `SPNN_LOG` environment variable
//! (`error` | `warn` | `info` | `debug` | `trace` | `off`; default
//! `info`), overridable in-process via [`set_verbosity`] (the CLI maps
//! `--quiet` to [`Level::Warn`] when `SPNN_LOG` is unset). Line format
//! defaults to logfmt-style text:
//!
//! ```text
//! ts=2026-08-07T12:00:00.123Z level=info target=serve msg="request" route=/run status=200
//! ```
//!
//! and switches to one JSON object per line with `SPNN_LOG_FORMAT=json`
//! or [`set_format`]`(`[`Format::Json`]`)` (what `spnn serve --log-json`
//! does) for machine ingestion.
//!
//! Emit events with the [`tevent!`](crate::tevent) macro:
//!
//! ```
//! use spnn_engine::tevent;
//! use spnn_engine::trace::Level;
//! tevent!(Level::Info, "doctest", "hello", answer = 42, pi = 3.5);
//! ```

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::metrics::Histogram;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed.
    Error = 1,
    /// Something surprising that the engine worked around.
    Warn = 2,
    /// Lifecycle milestones (default verbosity).
    Info = 3,
    /// Per-request / per-shard detail.
    Debug = 4,
    /// Per-point detail, span timings.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Line format for emitted events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// logfmt-style `k=v` text (default).
    Text,
    /// One JSON object per line.
    Json,
}

/// Sentinel meaning "not initialised from the environment yet".
const UNSET: u8 = 255;
/// Max verbosity level that passes the filter; 0 silences everything.
static VERBOSITY: AtomicU8 = AtomicU8::new(UNSET);
/// 0 = text, 1 = json.
static FORMAT: AtomicU8 = AtomicU8::new(UNSET);

fn verbosity() -> u8 {
    let v = VERBOSITY.load(Ordering::Relaxed);
    if v != UNSET {
        return v;
    }
    let parsed = match std::env::var("SPNN_LOG") {
        Ok(s) => match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => 0,
            "error" => Level::Error as u8,
            "warn" | "warning" => Level::Warn as u8,
            "info" | "" => Level::Info as u8,
            "debug" => Level::Debug as u8,
            "trace" => Level::Trace as u8,
            _ => Level::Info as u8,
        },
        Err(_) => Level::Info as u8,
    };
    VERBOSITY.store(parsed, Ordering::Relaxed);
    parsed
}

fn format() -> Format {
    let f = FORMAT.load(Ordering::Relaxed);
    if f != UNSET {
        return if f == 1 { Format::Json } else { Format::Text };
    }
    let parsed = match std::env::var("SPNN_LOG_FORMAT") {
        Ok(s) if s.trim().eq_ignore_ascii_case("json") => Format::Json,
        _ => Format::Text,
    };
    FORMAT.store(
        if parsed == Format::Json { 1 } else { 0 },
        Ordering::Relaxed,
    );
    parsed
}

/// Caps verbosity in-process, overriding `SPNN_LOG`. Pass `None` to
/// silence all events.
pub fn set_verbosity(level: Option<Level>) {
    VERBOSITY.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// True when `SPNN_LOG` was set in the environment (used by the CLI to
/// decide whether `--quiet` should lower the default verbosity).
pub fn verbosity_from_env() -> bool {
    std::env::var_os("SPNN_LOG").is_some()
}

/// Forces the line format in-process, overriding `SPNN_LOG_FORMAT`.
pub fn set_format(fmt: Format) {
    FORMAT.store(if fmt == Format::Json { 1 } else { 0 }, Ordering::Relaxed);
}

/// True when events at `level` would be emitted — guard any costly
/// field construction behind this.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= verbosity()
}

/// A field value in a trace event. Construct via `From`: the
/// [`tevent!`](crate::tevent) macro calls `.into()` on every field expression.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// A string slice.
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}
impl<'a> From<&'a String> for Value<'a> {
    fn from(v: &'a String) -> Self {
        Value::Str(v)
    }
}
impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u16> for Value<'_> {
    fn from(v: u16) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value<'_> {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Emits one structured event line to stderr if `level` passes the
/// filter. Prefer the [`tevent!`](crate::tevent) macro, which builds the field slice.
pub fn emit(level: Level, target: &str, msg: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled(level) {
        return;
    }
    let ts = rfc3339_now();
    let line = match format() {
        Format::Text => {
            let mut line = String::with_capacity(64);
            let _ = write!(
                line,
                "ts={ts} level={} target={} msg={}",
                level.as_str(),
                text_atom(target),
                text_atom(msg)
            );
            for (k, v) in fields {
                let _ = write!(line, " {k}=");
                match v {
                    Value::Str(s) => line.push_str(&text_atom(s)),
                    Value::U64(n) => {
                        let _ = write!(line, "{n}");
                    }
                    Value::I64(n) => {
                        let _ = write!(line, "{n}");
                    }
                    Value::F64(n) => {
                        let _ = write!(line, "{n}");
                    }
                    Value::Bool(b) => {
                        let _ = write!(line, "{b}");
                    }
                }
            }
            line
        }
        Format::Json => {
            let mut line = String::with_capacity(96);
            let _ = write!(
                line,
                "{{\"ts\":\"{ts}\",\"level\":\"{}\",\"target\":{},\"msg\":{}",
                level.as_str(),
                json_string(target),
                json_string(msg)
            );
            for (k, v) in fields {
                let _ = write!(line, ",{}:", json_string(k));
                match v {
                    Value::Str(s) => line.push_str(&json_string(s)),
                    Value::U64(n) => {
                        let _ = write!(line, "{n}");
                    }
                    Value::I64(n) => {
                        let _ = write!(line, "{n}");
                    }
                    Value::F64(n) => {
                        if n.is_finite() {
                            let _ = write!(line, "{n}");
                        } else {
                            line.push_str("null");
                        }
                    }
                    Value::Bool(b) => {
                        let _ = write!(line, "{b}");
                    }
                }
            }
            line.push('}');
            line
        }
    };
    // One write per line; ignore a broken stderr rather than panic.
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

/// Emits a structured trace event.
///
/// ```
/// use spnn_engine::tevent;
/// use spnn_engine::trace::Level;
/// tevent!(Level::Debug, "cache", "disk hit", tier = "disk", bytes = 1024usize);
/// ```
#[macro_export]
macro_rules! tevent {
    ($level:expr, $target:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::enabled($level) {
            $crate::trace::emit(
                $level,
                $target,
                $msg,
                &[$((stringify!($key), $crate::trace::Value::from($val))),*],
            );
        }
    };
}

/// An RAII timer: started with [`Span::start`], it observes its elapsed
/// wall-clock into a [`Histogram`] on drop and (at [`Level::Trace`])
/// emits a `span` event with the duration. Purely observational — the
/// measured time never feeds back into computation.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    started: Instant,
    histogram: Option<Histogram>,
    done: bool,
}

impl Span {
    /// Starts a span that reports into `histogram` on drop.
    pub fn start(name: &'static str, histogram: Histogram) -> Self {
        Span {
            name,
            started: Instant::now(),
            histogram: Some(histogram),
            done: false,
        }
    }

    /// Starts a span that only emits the trace event (no histogram).
    pub fn event_only(name: &'static str) -> Self {
        Span {
            name,
            started: Instant::now(),
            histogram: None,
            done: false,
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Ends the span now, returning its duration (drop becomes a no-op).
    pub fn finish(mut self) -> Duration {
        self.record();
        self.elapsed()
    }

    fn record(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let elapsed = self.started.elapsed();
        if let Some(h) = &self.histogram {
            h.observe_duration(elapsed);
        }
        tevent!(
            Level::Trace,
            "span",
            self.name,
            seconds = elapsed.as_secs_f64()
        );
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

/// Quotes an atom for the text format when it contains whitespace,
/// quotes, or `=`; bare otherwise. Empty strings render as `""`.
fn text_atom(s: &str) -> String {
    let needs_quoting = s.is_empty()
        || s.chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '=' || c == '\\');
    if !needs_quoting {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The current wall-clock as `YYYY-MM-DDTHH:MM:SS.mmmZ` (UTC), computed
/// without a calendar dependency via the days-from-civil inverse.
fn rfc3339_now() -> String {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO);
    rfc3339_from_unix(now.as_secs(), now.subsec_millis())
}

fn rfc3339_from_unix(secs: u64, millis: u32) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    // civil-from-days (Howard Hinnant's algorithm), days since 1970-01-01.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}.{millis:03}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc3339_known_timestamps() {
        assert_eq!(rfc3339_from_unix(0, 0), "1970-01-01T00:00:00.000Z");
        // 2026-08-07T00:00:00Z
        assert_eq!(
            rfc3339_from_unix(1_786_060_800, 7),
            "2026-08-07T00:00:00.007Z"
        );
        // Leap-day check: 2024-02-29T12:34:56Z
        assert_eq!(
            rfc3339_from_unix(1_709_210_096, 500),
            "2024-02-29T12:34:56.500Z"
        );
    }

    #[test]
    fn text_atom_quoting() {
        assert_eq!(text_atom("plain"), "plain");
        assert_eq!(text_atom("/run"), "/run");
        assert_eq!(text_atom("two words"), "\"two words\"");
        assert_eq!(text_atom("a=b"), "\"a=b\"");
        assert_eq!(text_atom(""), "\"\"");
        assert_eq!(text_atom("say \"hi\""), "\"say \\\"hi\\\"\"");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Trace);
        assert!((Level::Warn as u8) < (Level::Debug as u8));
    }

    #[test]
    fn span_observes_histogram() {
        let h = Histogram::new(&[10.0]);
        let span = Span::start("unit", h.clone());
        let d = span.finish();
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= d.as_secs_f64() - 1e-9 || h.sum() > 0.0);
    }

    #[test]
    fn span_records_once() {
        let h = Histogram::new(&[10.0]);
        let span = Span::start("unit", h.clone());
        let _ = span.finish();
        assert_eq!(h.count(), 1);
    }
}
