//! The trained-context cache: train once per fingerprint, reuse forever.
//!
//! Every accuracy-under-uncertainty figure in the paper is a Monte-Carlo
//! sweep over a *fixed trained network* — training is pure overhead
//! repeated per sweep campaign. Scenarios that share the training-relevant
//! part of their [`ScenarioSpec`] (dataset, architecture, optimizer
//! hyper-parameters, master seed) retrain *identically*: the trained
//! weights are a pure function of those fields. This module exploits that:
//!
//! - [`Fingerprint`] — a stable 128-bit key over exactly the
//!   training-relevant spec fields. Sweep axes, effects grids, topology
//!   lists, iteration budgets and the test-set size do **not** enter the
//!   key, so e.g. `fig4` and `fig5` (same dataset/architecture/seed,
//!   different sweeps) share one trained context.
//! - [`TrainedContext`] — the trained [`ComplexNetwork`] plus memoized
//!   photonic mesh mappings per `(topology, shuffle seed)`.
//! - [`ContextCache`] — in-memory memoization within a run and an optional
//!   on-disk store across runs, in a versioned, endian-stable binary format
//!   with a trailing checksum. Loads are corruption-safe: any malformed,
//!   truncated or stale file silently falls back to retraining.
//!
//! Reuse is **bit-exact**: weights and mesh phases are stored as raw IEEE
//! 754 bits, and the mapping is reconstructed through
//! [`PhotonicLayer::from_parts`], so a warm-cache scenario run produces a
//! report bit-identical to a cold one (pinned by the engine's tests).
//!
//! # Example
//!
//! ```
//! use spnn_engine::cache::{ContextCache, Fingerprint};
//! use spnn_engine::prelude::*;
//!
//! let mut spec = presets::fig4(&RunScale::tiny());
//! let cache = ContextCache::in_memory();
//! let ctx = cache.get_or_train(&spec, false);
//!
//! // A second request — even from a spec with different sweep axes —
//! // reuses the trained context instead of retraining.
//! spec.sweep.sigmas = vec![0.0, 0.1];
//! assert_eq!(Fingerprint::of_spec(&spec), *ctx.fingerprint());
//! let again = cache.get_or_train(&spec, false);
//! assert_eq!(cache.stats().trains, 1);
//! assert_eq!(cache.stats().mem_hits, 1);
//! # let _ = again;
//! ```

use crate::fnv::{fnv1a64, FNV_BASIS};
use crate::metrics::{Counter, MetricsRegistry};
use crate::spec::ScenarioSpec;
use crate::tevent;
use crate::trace::Level;
use spnn_core::network::{PhotonicLayer, SpnnError};
use spnn_core::{MeshTopology, PhotonicNetwork};
use spnn_dataset::{DatasetConfig, SpnnDataset};
use spnn_linalg::{CMatrix, C64};
use spnn_mesh::{DiagonalLine, UnitaryMesh};
use spnn_neural::{train, ComplexNetwork, TrainConfig};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Magic bytes opening every cache file.
const MAGIC: &[u8; 8] = b"SPNNCTX\x01";
/// Binary format version; bump on any layout change. Files with another
/// version are ignored (load-or-retrain), never misread.
const FORMAT_VERSION: u32 = 1;
/// File extension of cache entries.
const EXTENSION: &str = "spnnctx";

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

/// The training fingerprint of a scenario: a stable 128-bit key over the
/// spec fields that influence the trained network, plus the human-readable
/// canonical string it hashes (stored in cache files and compared on load,
/// which also makes hash collisions harmless).
///
/// Included: dataset size/crop, master seed, layer widths, epochs, batch
/// size, learning rate, and the (constant) activation/loss/optimizer/init
/// identities. Excluded: everything that only affects *evaluation* — sweep
/// axes, effects grids, topologies, singular-value shuffling, test-set
/// size, iteration budgets, stopping rules, and the scenario name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    key: [u8; 16],
    canonical: String,
}

impl Fingerprint {
    /// Computes the fingerprint of a spec's training-relevant fields.
    pub fn of_spec(spec: &ScenarioSpec) -> Self {
        let layers = spec
            .train
            .layers
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join("-");
        // `{}` on f64 prints the shortest representation that round-trips,
        // so distinct learning-rate bit patterns get distinct strings
        // (learning rates are validated finite and positive).
        let canonical = format!(
            "spnn-ctx-v1;dataset=n_train:{},crop:{},seed:{};arch={};\
             activation=softplus;loss=cross-entropy;optimizer=adam;init=glorot;\
             train=epochs:{},batch:{},lr:{}",
            spec.dataset.n_train,
            spec.dataset.crop,
            spec.seed,
            layers,
            spec.train.epochs,
            spec.train.batch_size,
            spec.train.learning_rate,
        );
        Self::of_canonical(canonical)
    }

    fn of_canonical(canonical: String) -> Self {
        let a = fnv1a64(canonical.as_bytes(), FNV_BASIS);
        let b = fnv1a64(canonical.as_bytes(), 0x6c62272e07bb0142);
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&a.to_le_bytes());
        key[8..].copy_from_slice(&b.to_le_bytes());
        Self { key, canonical }
    }

    /// The 32-character lowercase hex key (the cache file stem).
    pub fn hex(&self) -> String {
        self.key.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// A 12-character abbreviation of [`Fingerprint::hex`] for logs and
    /// `spnn cache ls` output.
    pub fn short(&self) -> String {
        self.hex()[..12].to_string()
    }

    /// The canonical string the key hashes — a readable summary of every
    /// field that entered the fingerprint.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.hex())
    }
}

// ---------------------------------------------------------------------------
// Trained context
// ---------------------------------------------------------------------------

/// Key of one photonic mapping inside a context: mesh topology plus the
/// optional singular-value shuffle seed.
type MappingKey = (u8, Option<u64>);

fn topology_code(t: MeshTopology) -> u8 {
    match t {
        MeshTopology::Clements => 0,
        MeshTopology::Reck => 1,
    }
}

fn topology_from_code(c: u8) -> Option<MeshTopology> {
    match c {
        0 => Some(MeshTopology::Clements),
        1 => Some(MeshTopology::Reck),
        _ => None,
    }
}

/// A trained software network plus its photonic mesh mappings, shared via
/// `Arc` between scenarios that hit the same [`Fingerprint`].
///
/// Mappings are memoized per `(topology, shuffle seed)`: the first request
/// runs SVD + mesh synthesis, later requests (and requests satisfied from a
/// cache file) reuse the stored meshes bit for bit.
#[derive(Debug)]
pub struct TrainedContext {
    fingerprint: Fingerprint,
    software: ComplexNetwork,
    train_accuracy: f64,
    mappings: Mutex<HashMap<MappingKey, Arc<PhotonicNetwork>>>,
    /// Mapping count at the last successful persist (or disk load);
    /// `usize::MAX` means "never written". Lets [`ContextCache::persist`]
    /// skip rewriting an entry whose on-disk state is already current.
    persisted_mappings: AtomicUsize,
}

impl TrainedContext {
    /// The fingerprint this context was trained under.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// The trained software network.
    pub fn software(&self) -> &ComplexNetwork {
        &self.software
    }

    /// Final training-set accuracy recorded at training time.
    pub fn train_accuracy(&self) -> f64 {
        self.train_accuracy
    }

    /// Number of photonic mappings currently materialized.
    pub fn n_mappings(&self) -> usize {
        self.mappings.lock().expect("mappings lock").len()
    }

    /// The photonic mapping for `(topology, shuffle_seed)`, synthesizing
    /// and memoizing it on first request.
    ///
    /// # Errors
    ///
    /// Returns [`SpnnError`] if SVD or mesh synthesis fails (not expected
    /// for finite trained weights).
    pub fn mapping(
        &self,
        topology: MeshTopology,
        shuffle_seed: Option<u64>,
    ) -> Result<Arc<PhotonicNetwork>, SpnnError> {
        let key = (topology_code(topology), shuffle_seed);
        let mut map = self.mappings.lock().expect("mappings lock");
        if let Some(hw) = map.get(&key) {
            return Ok(Arc::clone(hw));
        }
        let hw = Arc::new(PhotonicNetwork::from_network(
            &self.software,
            topology,
            shuffle_seed,
        )?);
        map.insert(key, Arc::clone(&hw));
        Ok(hw)
    }
}

// ---------------------------------------------------------------------------
// Cache front-end
// ---------------------------------------------------------------------------

/// Counters describing what a [`ContextCache`] did so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests satisfied from the in-memory map.
    pub mem_hits: usize,
    /// Requests satisfied by loading a cache file.
    pub disk_hits: usize,
    /// Requests that had to train from scratch.
    pub trains: usize,
    /// Unusable (corrupt/truncated/stale) cache files healed by
    /// retraining.
    pub corrupt_healed: usize,
    /// Times this cache blocked on another process's advisory training
    /// lock.
    pub flock_waits: usize,
}

/// The trained-context store: in-memory memoization within a run, optional
/// on-disk persistence across runs.
///
/// All methods take `&self`; the cache is internally synchronized and safe
/// to share between scenario runs.
#[derive(Debug)]
pub struct ContextCache {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<[u8; 16], Arc<TrainedContext>>>,
    /// Per-fingerprint in-flight gates: concurrent [`Self::get_or_train`]
    /// calls for the *same* fingerprint serialize, so the second caller
    /// finds the first one's context in memory instead of training it
    /// again. Different fingerprints stay fully concurrent. (One gate per
    /// distinct fingerprint ever requested — a handful of small Arcs.)
    pending: Mutex<HashMap<[u8; 16], Arc<Mutex<()>>>>,
    /// Per-cache [`Counter`] handles (not process globals, so unit tests
    /// running many caches in one process stay exact). A server adopts
    /// these same handles into its registry via [`Self::register_metrics`],
    /// making `/cache/stats` and `/metrics` two views of one set of
    /// atomics.
    mem_hits: Counter,
    disk_hits: Counter,
    trains: Counter,
    corrupt_healed: Counter,
    flock_waits: Counter,
}

impl ContextCache {
    /// A cache with optional on-disk persistence under `dir`.
    pub fn new(dir: Option<PathBuf>) -> Self {
        Self {
            dir,
            mem: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            mem_hits: Counter::new(),
            disk_hits: Counter::new(),
            trains: Counter::new(),
            corrupt_healed: Counter::new(),
            flock_waits: Counter::new(),
        }
    }

    /// A purely in-memory cache (no files touched) — what [`crate::run_scenario`]
    /// uses by default.
    pub fn in_memory() -> Self {
        Self::new(None)
    }

    /// A cache persisting to `dir` (created on first store).
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        Self::new(Some(dir.into()))
    }

    /// The persistence directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Activity counters (memory hits / disk hits / trainings / heals /
    /// lock waits).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            mem_hits: self.mem_hits.get() as usize,
            disk_hits: self.disk_hits.get() as usize,
            trains: self.trains.get() as usize,
            corrupt_healed: self.corrupt_healed.get() as usize,
            flock_waits: self.flock_waits.get() as usize,
        }
    }

    /// Adopts this cache's counters into `registry` under the
    /// `spnn_cache_*` metric names, so a scrape reads the very atomics
    /// the cache increments — derived, not parallel. Safe to call once
    /// per registry; re-registering replaces the previous handles.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "spnn_cache_hits_total",
            "Trained-context cache hits by tier.",
            &[("tier", "memory")],
            &self.mem_hits,
        );
        registry.register_counter(
            "spnn_cache_hits_total",
            "Trained-context cache hits by tier.",
            &[("tier", "disk")],
            &self.disk_hits,
        );
        registry.register_counter(
            "spnn_cache_trains_total",
            "Contexts trained from scratch.",
            &[],
            &self.trains,
        );
        registry.register_counter(
            "spnn_cache_corrupt_healed_total",
            "Unusable cache files healed by retraining.",
            &[],
            &self.corrupt_healed,
        );
        registry.register_counter(
            "spnn_cache_flock_waits_total",
            "Waits on another process's advisory training lock.",
            &[],
            &self.flock_waits,
        );
    }

    /// The trained context for `spec`'s training fingerprint: from memory,
    /// else from disk, else trained from scratch (and then persisted when a
    /// directory is configured).
    ///
    /// The warm paths skip training *and* training-set generation entirely;
    /// only the spec fields covered by [`Fingerprint`] influence the
    /// result, which is bit-identical across all three paths.
    ///
    /// In-flight training is deduplicated per fingerprint: when several
    /// threads request the same context concurrently (e.g. identical
    /// `spnn serve` requests), exactly one trains while the others wait
    /// and then take the memory hit — `stats().trains` rises by one, not
    /// by the number of callers. Requests for *different* fingerprints
    /// train concurrently.
    ///
    /// With a persistence directory, the same holds **across
    /// processes**: a cold cache miss takes an advisory file lock
    /// (`flock`, Unix) on `ctx-<key>.lock` before training, so many
    /// cold workers pointed at one shared cache directory train once
    /// while the rest wait and then load the winner's entry — instead
    /// of all training and racing last-writer-wins. On platforms (or
    /// filesystems) without advisory locking the cache degrades to the
    /// old concurrent-but-correct behavior: entries are deterministic,
    /// so a lost race only wastes work, never changes bits.
    pub fn get_or_train(&self, spec: &ScenarioSpec, verbose: bool) -> Arc<TrainedContext> {
        let fp = Fingerprint::of_spec(spec);
        // Fast path: no gate needed when the context is already in memory.
        if let Some(ctx) = self.mem.lock().expect("cache lock").get(&fp.key) {
            self.mem_hits.inc();
            return Arc::clone(ctx);
        }

        let gate = Arc::clone(
            self.pending
                .lock()
                .expect("pending lock")
                .entry(fp.key)
                .or_default(),
        );
        let _in_flight = gate.lock().expect("in-flight training gate");
        // Re-check under the gate: a concurrent caller may have finished
        // training while this one waited.
        if let Some(ctx) = self.mem.lock().expect("cache lock").get(&fp.key) {
            self.mem_hits.inc();
            return Arc::clone(ctx);
        }

        // Held (when acquirable) from just before training until the
        // trained entry is persisted, releasing on every return path.
        let mut _file_lock: Option<std::fs::File> = None;
        if let Some(dir) = &self.dir {
            let path = entry_path(dir, &fp);
            match load_entry(&path, &fp) {
                Ok(ctx) => {
                    self.disk_hits.inc();
                    if verbose {
                        eprintln!(
                            "[cache] {}: loaded trained context {} ({} mapping(s))",
                            spec.name,
                            fp.short(),
                            ctx.n_mappings()
                        );
                    }
                    return self.adopt(ctx);
                }
                Err(LoadError::NotFound) => {}
                Err(e) => {
                    self.corrupt_healed.inc();
                    tevent!(
                        Level::Warn,
                        "cache",
                        "unusable cache file, retraining",
                        scenario = &spec.name,
                        error = &format!("{e}"),
                    );
                    if verbose {
                        eprintln!(
                            "[cache] {}: ignoring unusable cache file {} ({e}); retraining",
                            spec.name,
                            path.display()
                        );
                    }
                }
            }
            // Cold miss: serialize cross-process training on an advisory
            // file lock, then re-check — another process may have trained
            // and persisted the entry while this one waited.
            _file_lock = advisory_lock(dir, &fp, verbose, Some(&self.flock_waits));
            if _file_lock.is_some() {
                if let Ok(ctx) = load_entry(&path, &fp) {
                    self.disk_hits.inc();
                    if verbose {
                        eprintln!(
                            "[cache] {}: loaded trained context {} (trained by a \
                             concurrent process)",
                            spec.name,
                            fp.short()
                        );
                    }
                    return self.adopt(ctx);
                }
            }
        }

        self.trains.inc();
        if verbose {
            eprintln!(
                "[cache] {}: training context {} from scratch",
                spec.name,
                fp.short()
            );
        }
        let ctx = train_context(spec, fp, verbose);
        let ctx = self.adopt(ctx);
        if let Err(e) = self.persist(&ctx) {
            if verbose {
                eprintln!("[cache] warning: could not persist context: {e}");
            }
        }
        ctx
    }

    /// Writes (or rewrites) the cache file for `ctx`, including every
    /// mapping materialized so far. A no-op without a persistence
    /// directory — and when the entry was already written (or loaded)
    /// with the same mapping count, so repeated warm runs do not rewrite
    /// an identical file. Writes go to a temporary file first and are
    /// renamed into place, so readers never observe a torn entry.
    ///
    /// The runner calls this again after a scenario completes so that
    /// mappings synthesized during the run are persisted alongside the
    /// weights — a warm load then skips SVD + mesh synthesis too.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created
    /// or the file cannot be written.
    pub fn persist(&self, ctx: &TrainedContext) -> std::io::Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        if ctx.persisted_mappings.load(Ordering::Relaxed) == ctx.n_mappings() {
            return Ok(());
        }
        std::fs::create_dir_all(dir)?;
        let (bytes, n_serialized) = serialize_context(ctx);
        let path = entry_path(dir, &ctx.fingerprint);
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            ctx.fingerprint.short()
        ));
        std::fs::write(&tmp, &bytes)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => {
                ctx.persisted_mappings
                    .store(n_serialized, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Inserts `ctx` into the in-memory map, returning the canonical copy
    /// (an identical context may already be present).
    fn adopt(&self, ctx: TrainedContext) -> Arc<TrainedContext> {
        let key = ctx.fingerprint.key;
        Arc::clone(
            self.mem
                .lock()
                .expect("cache lock")
                .entry(key)
                .or_insert_with(|| Arc::new(ctx)),
        )
    }
}

/// Trains a context from scratch. Only the training split of the dataset
/// is generated (`n_test = 0`): the train and test streams are seeded
/// independently, so the test set — which the runner generates per
/// scenario — is unaffected.
fn train_context(spec: &ScenarioSpec, fingerprint: Fingerprint, verbose: bool) -> TrainedContext {
    let data = SpnnDataset::generate(&DatasetConfig {
        n_train: spec.dataset.n_train,
        n_test: 0,
        crop: spec.dataset.crop,
        seed: spec.seed,
    });
    let mut software = ComplexNetwork::new(&spec.train.layers, spec.seed ^ 0x11);
    let report = train(
        &mut software,
        &data.train_features,
        &data.train_labels,
        &TrainConfig {
            epochs: spec.train.epochs,
            batch_size: spec.train.batch_size,
            learning_rate: spec.train.learning_rate,
            seed: spec.seed ^ 0x22,
            verbose: false,
        },
    );
    if verbose {
        eprintln!(
            "[cache] {}: trained {} epochs (train acc {:.2}%)",
            spec.name,
            spec.train.epochs,
            report.train_accuracy * 100.0
        );
    }
    TrainedContext {
        fingerprint,
        software,
        train_accuracy: report.train_accuracy,
        mappings: Mutex::new(HashMap::new()),
        persisted_mappings: AtomicUsize::new(usize::MAX),
    }
}

/// The canonical cache-file path of a fingerprint under `dir`.
pub fn entry_path(dir: &Path, fp: &Fingerprint) -> PathBuf {
    dir.join(format!("ctx-{}.{EXTENSION}", fp.hex()))
}

/// Takes the per-fingerprint advisory file lock under `dir`, blocking
/// while another process holds it (a non-blocking probe first, so the
/// wait can be logged). Returns `None` when locking is unavailable —
/// non-Unix platform, unwritable directory, or a filesystem without
/// `flock` — in which case callers proceed unlocked (correct, just
/// possibly redundant work). The lock releases when the returned file
/// handle drops; the tiny `ctx-<key>.lock` files are left in place for
/// the next contender.
#[cfg(unix)]
fn advisory_lock(
    dir: &Path,
    fp: &Fingerprint,
    verbose: bool,
    waits: Option<&Counter>,
) -> Option<std::fs::File> {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }
    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;

    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("ctx-{}.lock", fp.hex()));
    let file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(&path)
        .ok()?;
    let fd = file.as_raw_fd();
    // SAFETY: flock(2) on a file descriptor this function owns.
    if unsafe { flock(fd, LOCK_EX | LOCK_NB) } == 0 {
        return Some(file);
    }
    if let Some(c) = waits {
        c.inc();
    }
    tevent!(
        Level::Info,
        "cache",
        "waiting on advisory training lock",
        fingerprint = &fp.short(),
    );
    if verbose {
        eprintln!(
            "[cache] waiting for a concurrent process to finish training {}",
            fp.short()
        );
    }
    (unsafe { flock(fd, LOCK_EX) } == 0).then_some(file)
}

#[cfg(not(unix))]
fn advisory_lock(
    _dir: &Path,
    _fp: &Fingerprint,
    _verbose: bool,
    _waits: Option<&Counter>,
) -> Option<std::fs::File> {
    None
}

/// The cache directory the `spnn` CLI uses by default: `$SPNN_CACHE_DIR`,
/// else `$XDG_CACHE_HOME/spnn`, else `$HOME/.cache/spnn`, else
/// `./.spnn-cache`.
pub fn default_cache_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("SPNN_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    if let Some(xdg) = std::env::var_os("XDG_CACHE_HOME") {
        if !xdg.is_empty() {
            return PathBuf::from(xdg).join("spnn");
        }
    }
    if let Some(home) = std::env::var_os("HOME") {
        if !home.is_empty() {
            return PathBuf::from(home).join(".cache").join("spnn");
        }
    }
    PathBuf::from(".spnn-cache")
}

// ---------------------------------------------------------------------------
// Directory listing (spnn cache ls / rm)
// ---------------------------------------------------------------------------

/// What `spnn cache ls` shows for one cache file.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Full path of the entry.
    pub path: PathBuf,
    /// The 32-hex-character key from the file name.
    pub key_hex: String,
    /// File size in bytes.
    pub size_bytes: u64,
    /// The canonical fingerprint string, when the file parses cleanly.
    pub canonical: Option<String>,
    /// Training-set accuracy recorded in the entry.
    pub train_accuracy: Option<f64>,
    /// Number of persisted photonic mappings.
    pub n_mappings: Option<usize>,
    /// `false` when the file is corrupt or from another format version
    /// (such entries are retrain-on-load and safe to remove).
    pub ok: bool,
}

/// Lists the cache entries under `dir` (sorted by file name). A missing
/// directory lists as empty rather than erroring — an unused cache is not
/// exceptional.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory exists but cannot be
/// read.
pub fn list_entries(dir: &Path) -> std::io::Result<Vec<CacheEntry>> {
    let mut out = Vec::new();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in rd {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(EXTENSION) {
            continue;
        }
        let key_hex = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.strip_prefix("ctx-"))
            .unwrap_or("")
            .to_string();
        let size_bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
        let parsed = std::fs::read(&path)
            .ok()
            .and_then(|bytes| parse_entry(&bytes).ok());
        match parsed {
            Some((canonical, train_accuracy, ctx)) => out.push(CacheEntry {
                path,
                key_hex,
                size_bytes,
                canonical: Some(canonical),
                train_accuracy: Some(train_accuracy),
                n_mappings: Some(ctx),
                ok: true,
            }),
            None => out.push(CacheEntry {
                path,
                key_hex,
                size_bytes,
                canonical: None,
                train_accuracy: None,
                n_mappings: None,
                ok: false,
            }),
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Garbage collection (spnn cache gc)
// ---------------------------------------------------------------------------

/// Retention limits for [`gc`]. Unset bounds don't constrain; with both
/// unset, [`gc`] only removes stale temporary files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcLimits {
    /// Keep at most this many entries.
    pub max_entries: Option<usize>,
    /// Keep at most this many bytes of entries.
    pub max_bytes: Option<u64>,
}

/// What [`gc`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Entries retained.
    pub kept: usize,
    /// Entries (plus stale temporary files) removed.
    pub removed: usize,
    /// Total size of the retained entries.
    pub bytes_kept: u64,
    /// Bytes reclaimed.
    pub bytes_freed: u64,
}

/// How old a `.tmp-*` file must be before [`gc`] treats it as a crashed
/// writer's leftover rather than an in-flight [`ContextCache::persist`]
/// write (which is a write-then-rename lasting well under a second).
const TMP_SWEEP_MIN_AGE: std::time::Duration = std::time::Duration::from_secs(15 * 60);

/// Evicts cache entries least-recently-written-first until the store fits
/// `limits`: entries are ordered by file mtime (newest first; path as a
/// deterministic tiebreak), the newest prefix that satisfies both bounds
/// is retained, and the first entry to exceed a bound — plus everything
/// older — is removed. Entries are deterministic retrain-on-miss
/// artifacts, so eviction can cost time but never correctness. Stale
/// `.tmp-*` files left behind by crashed writers are also removed, but
/// only once older than a grace period — a concurrent writer between its
/// temp write and rename must not lose the race. A missing directory is
/// an empty store, not an error.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory or an entry cannot
/// be read or removed — except files that vanish mid-scan (a concurrent
/// remover or writer rename in a shared cache dir), which are skipped.
pub fn gc(dir: &Path, limits: &GcLimits) -> std::io::Result<GcOutcome> {
    gc_with_extension(dir, limits, EXTENSION)
}

/// [`gc`] generalized over the entry file extension, so every store that
/// follows the tmp+rename discipline (the trained-context cache, the
/// row-result cache in [`crate::rowcache`]) shares one eviction policy.
pub(crate) fn gc_with_extension(
    dir: &Path,
    limits: &GcLimits,
    extension: &str,
) -> std::io::Result<GcOutcome> {
    let mut outcome = GcOutcome::default();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(outcome),
        Err(e) => return Err(e),
    };
    // Shared cache dirs see concurrent writers and removers; a file that
    // vanishes between read_dir and a stat/unlink is someone else's
    // cleanup, not an error.
    fn tolerate_vanished<T>(r: std::io::Result<T>) -> std::io::Result<Option<T>> {
        match r {
            Ok(v) => Ok(Some(v)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    let now = std::time::SystemTime::now();
    let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
    for entry in rd {
        let entry = entry?;
        let path = entry.path();
        let Some(meta) = tolerate_vanished(entry.metadata())? else {
            continue;
        };
        if !meta.is_file() {
            continue;
        }
        let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with(".tmp-") {
            let stale = now
                .duration_since(mtime)
                .is_ok_and(|age| age >= TMP_SWEEP_MIN_AGE);
            if stale && tolerate_vanished(std::fs::remove_file(&path))?.is_some() {
                outcome.removed += 1;
                outcome.bytes_freed += meta.len();
            }
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some(extension) {
            continue;
        }
        files.push((mtime, path, meta.len()));
    }
    // Newest first. The retained set is a strict newest-first prefix:
    // the first entry that oversteps a bound is evicted together with
    // everything older (no knapsack-style backfilling with small old
    // entries past a large evicted one).
    files.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let mut evicting = false;
    for (_, path, size) in files {
        evicting = evicting
            || limits.max_entries.is_some_and(|m| outcome.kept >= m)
            || limits
                .max_bytes
                .is_some_and(|m| outcome.bytes_kept + size > m);
        if evicting {
            if tolerate_vanished(std::fs::remove_file(&path))?.is_some() {
                outcome.removed += 1;
                outcome.bytes_freed += size;
            }
        } else {
            outcome.kept += 1;
            outcome.bytes_kept += size;
        }
    }
    Ok(outcome)
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

/// Why a cache file could not be used. Every variant falls back to
/// retraining — a cache entry can slow a run down, never corrupt it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The file does not exist (a plain cache miss).
    NotFound,
    /// The file could not be read.
    Io(String),
    /// The magic bytes do not match (not a cache file).
    BadMagic,
    /// The format version is not this build's `FORMAT_VERSION`.
    BadVersion(u32),
    /// The trailing checksum does not match the content.
    BadChecksum,
    /// The stored fingerprint does not match the requested one (renamed
    /// file or — theoretically — a hash collision).
    FingerprintMismatch,
    /// A structural invariant failed while decoding.
    Malformed(&'static str),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::NotFound => write!(f, "no cache entry"),
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::BadMagic => write!(f, "not a spnn cache file"),
            LoadError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            LoadError::BadChecksum => write!(f, "checksum mismatch (corrupt file)"),
            LoadError::FingerprintMismatch => write!(f, "fingerprint mismatch"),
            LoadError::Malformed(what) => write!(f, "malformed entry: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self {
            buf: Vec::with_capacity(32 * 1024),
        }
    }
    pub(crate) fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }
    pub(crate) fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    pub(crate) fn f64s(&mut self, xs: &[f64]) {
        self.u32(xs.len() as u32);
        for &x in xs {
            self.f64(x);
        }
    }
}

pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        if self.buf.len() - self.pos < n {
            return Err(LoadError::Malformed("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, LoadError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, LoadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, LoadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn f64(&mut self) -> Result<f64, LoadError> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub(crate) fn str(&mut self) -> Result<String, LoadError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| LoadError::Malformed("non-UTF-8 string"))
    }
    /// A length-prefixed f64 list; the length is bounds-checked against the
    /// remaining bytes *before* allocation, so a corrupted length cannot
    /// trigger a huge allocation.
    pub(crate) fn f64s(&mut self) -> Result<Vec<f64>, LoadError> {
        let n = self.u32()? as usize;
        if self.buf.len() - self.pos < n * 8 {
            return Err(LoadError::Malformed("truncated f64 list"));
        }
        (0..n).map(|_| self.f64()).collect()
    }
}

fn write_mesh(w: &mut Writer, mesh: &UnitaryMesh) {
    w.u32(mesh.n() as u32);
    w.u32(mesh.n_mzis() as u32);
    for m in mesh.mzis() {
        w.u32(m.top as u32);
        w.f64(m.theta);
        w.f64(m.phi);
    }
    w.f64s(mesh.output_phases());
}

fn read_mesh(r: &mut Reader<'_>) -> Result<UnitaryMesh, LoadError> {
    let n = r.u32()? as usize;
    let n_mzis = r.u32()? as usize;
    if n == 0 {
        return Err(LoadError::Malformed("zero-size mesh"));
    }
    if r.buf.len() - r.pos < n_mzis * 20 {
        return Err(LoadError::Malformed("truncated mesh"));
    }
    let mut ts = Vec::with_capacity(n_mzis);
    for _ in 0..n_mzis {
        let top = r.u32()? as usize;
        let theta = r.f64()?;
        let phi = r.f64()?;
        if top + 1 >= n {
            return Err(LoadError::Malformed("MZI mode out of range"));
        }
        if !theta.is_finite() || !phi.is_finite() {
            return Err(LoadError::Malformed("non-finite mesh phase"));
        }
        ts.push((top, theta, phi));
    }
    let output_phases = r.f64s()?;
    if output_phases.len() != n {
        return Err(LoadError::Malformed("output phase screen length"));
    }
    if !output_phases.iter().all(|p| p.is_finite()) {
        return Err(LoadError::Malformed("non-finite output phase"));
    }
    Ok(UnitaryMesh::from_physical_order(n, &ts, output_phases))
}

fn write_matrix(w: &mut Writer, m: &CMatrix) {
    w.u32(m.rows() as u32);
    w.u32(m.cols() as u32);
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            w.f64(m[(r, c)].re);
            w.f64(m[(r, c)].im);
        }
    }
}

fn read_matrix(r: &mut Reader<'_>) -> Result<CMatrix, LoadError> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    if rows == 0 || cols == 0 {
        return Err(LoadError::Malformed("zero-size matrix"));
    }
    // Cap each dimension before multiplying: unchecked `rows * cols * 16`
    // can wrap for forged u32 dimensions, turning the truncation guard
    // into a huge allocation (an abort, not the promised load-or-retrain
    // fallback). Real SPNN matrices are a few hundred rows at most.
    if rows > 1 << 16 || cols > 1 << 16 {
        return Err(LoadError::Malformed("implausible matrix dimensions"));
    }
    if r.buf.len() - r.pos < rows * cols * 16 {
        return Err(LoadError::Malformed("truncated matrix"));
    }
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        let re = r.f64()?;
        let im = r.f64()?;
        data.push(C64::new(re, im));
    }
    CMatrix::from_vec(rows, cols, data).map_err(|_| LoadError::Malformed("matrix shape"))
}

/// Serializes a context (weights + all materialized mappings) into the
/// versioned on-disk format, returning the bytes and the number of
/// mappings serialized. Endian-stable: every integer is little-endian,
/// every float is raw IEEE 754 bits.
fn serialize_context(ctx: &TrainedContext) -> (Vec<u8>, usize) {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u32(FORMAT_VERSION);
    w.buf.extend_from_slice(&ctx.fingerprint.key);
    w.str(&ctx.fingerprint.canonical);
    w.f64(ctx.train_accuracy);

    let weights = ctx.software.weights();
    w.u32(weights.len() as u32);
    for weight in &weights {
        write_matrix(&mut w, weight);
    }

    let mappings = ctx.mappings.lock().expect("mappings lock");
    let n_mappings = mappings.len();
    // Deterministic file bytes: sort mappings by key.
    let mut keys: Vec<&MappingKey> = mappings.keys().collect();
    keys.sort();
    w.u32(keys.len() as u32);
    for key in keys {
        let hw = &mappings[key];
        w.u8(key.0);
        match key.1 {
            Some(seed) => {
                w.u8(1);
                w.u64(seed);
            }
            None => {
                w.u8(0);
                w.u64(0);
            }
        }
        w.u32(hw.n_layers() as u32);
        for layer in hw.layers() {
            write_mesh(&mut w, layer.v_mesh());
            let sigma = layer.sigma();
            w.u32(sigma.out_dim() as u32);
            w.u32(sigma.in_dim() as u32);
            w.f64(sigma.beta());
            let (thetas, phis): (Vec<f64>, Vec<f64>) =
                (0..sigma.n_mzis()).map(|i| sigma.phases(i)).unzip();
            w.f64s(&thetas);
            w.f64s(&phis);
            write_mesh(&mut w, layer.u_mesh());
        }
    }
    drop(mappings);

    let checksum = fnv1a64(&w.buf, FNV_BASIS);
    w.u64(checksum);
    (w.buf, n_mappings)
}

/// Parses an entry, returning `(canonical, train_accuracy, n_mappings)`
/// metadata plus the reconstructed context via [`deserialize_context`].
fn parse_entry(bytes: &[u8]) -> Result<(String, f64, usize), LoadError> {
    let ctx = deserialize_context(bytes, None)?;
    Ok((
        ctx.fingerprint.canonical.clone(),
        ctx.train_accuracy,
        ctx.n_mappings(),
    ))
}

/// Decodes and validates a cache file. When `expect` is given, the stored
/// fingerprint (key *and* canonical string) must match it.
fn deserialize_context(
    bytes: &[u8],
    expect: Option<&Fingerprint>,
) -> Result<TrainedContext, LoadError> {
    if bytes.len() < MAGIC.len() + 4 + 16 + 8 {
        return Err(LoadError::Malformed("file too short"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored_checksum = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a64(body, FNV_BASIS) != stored_checksum {
        return Err(LoadError::BadChecksum);
    }

    let mut r = Reader::new(body);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(LoadError::BadVersion(version));
    }
    let mut key = [0u8; 16];
    key.copy_from_slice(r.take(16)?);
    let canonical = r.str()?;
    let stored_fp = Fingerprint::of_canonical(canonical);
    if stored_fp.key != key {
        // The stored key must be the hash of the stored canonical string.
        return Err(LoadError::Malformed(
            "key does not hash the canonical string",
        ));
    }
    if let Some(expect) = expect {
        if *expect != stored_fp {
            return Err(LoadError::FingerprintMismatch);
        }
    }
    let train_accuracy = r.f64()?;

    // Bound every count before pre-allocating from it: the checksum is
    // not cryptographic, so a crafted file must hit load-or-retrain, not
    // an allocation abort. Real networks have a handful of layers and a
    // handful of (topology, shuffle) mappings.
    let n_layers = r.u32()? as usize;
    if n_layers == 0 || n_layers > 64 {
        return Err(LoadError::Malformed("implausible layer count"));
    }
    let mut weights = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        weights.push(read_matrix(&mut r)?);
    }
    for pair in weights.windows(2) {
        if pair[1].cols() != pair[0].rows() {
            return Err(LoadError::Malformed("layer shapes do not chain"));
        }
    }
    let software = ComplexNetwork::from_weights(weights);

    let n_mappings = r.u32()? as usize;
    if n_mappings > 256 {
        return Err(LoadError::Malformed("implausible mapping count"));
    }
    let mut mappings = HashMap::with_capacity(n_mappings);
    for _ in 0..n_mappings {
        let topo_code = r.u8()?;
        let Some(topology) = topology_from_code(topo_code) else {
            return Err(LoadError::Malformed("unknown topology code"));
        };
        let has_shuffle = r.u8()?;
        let seed_raw = r.u64()?;
        let shuffle_seed = match has_shuffle {
            0 => None,
            1 => Some(seed_raw),
            _ => return Err(LoadError::Malformed("bad shuffle flag")),
        };
        let hw_layers = r.u32()? as usize;
        if hw_layers != software.n_layers() {
            return Err(LoadError::Malformed("mapping layer count mismatch"));
        }
        let mut layers = Vec::with_capacity(hw_layers);
        for (l, weight) in software.weights().iter().enumerate() {
            let v_mesh = read_mesh(&mut r)?;
            let out_dim = r.u32()? as usize;
            let in_dim = r.u32()? as usize;
            let beta = r.f64()?;
            let thetas = r.f64s()?;
            let phis = r.f64s()?;
            if out_dim != weight.rows()
                || in_dim != weight.cols()
                || thetas.len() != out_dim.min(in_dim)
                || phis.len() != thetas.len()
                || !beta.is_finite()
                || beta <= 0.0
                || !thetas.iter().chain(phis.iter()).all(|x| x.is_finite())
            {
                return Err(LoadError::Malformed("sigma line"));
            }
            let sigma = DiagonalLine::from_raw_parts(out_dim, in_dim, beta, thetas, phis);
            let u_mesh = read_mesh(&mut r)?;
            if v_mesh.n() != weight.cols() || u_mesh.n() != weight.rows() {
                return Err(LoadError::Malformed("mesh sizes"));
            }
            let _ = l;
            layers.push(PhotonicLayer::from_parts(
                v_mesh,
                sigma,
                u_mesh,
                (*weight).clone(),
            ));
        }
        mappings.insert(
            (topo_code, shuffle_seed),
            Arc::new(PhotonicNetwork::from_layers(layers, topology)),
        );
    }
    if r.pos != body.len() {
        return Err(LoadError::Malformed("trailing bytes"));
    }

    Ok(TrainedContext {
        fingerprint: stored_fp,
        software,
        train_accuracy,
        persisted_mappings: AtomicUsize::new(mappings.len()),
        mappings: Mutex::new(mappings),
    })
}

/// Loads and validates the entry at `path` for fingerprint `fp`.
fn load_entry(path: &Path, fp: &Fingerprint) -> Result<TrainedContext, LoadError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(LoadError::NotFound),
        Err(e) => return Err(LoadError::Io(e.to_string())),
    };
    deserialize_context(&bytes, Some(fp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RunScale;

    fn tiny_spec() -> ScenarioSpec {
        crate::presets::fig4(&RunScale::tiny())
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spnn-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_ignores_evaluation_only_fields() {
        let base = Fingerprint::of_spec(&tiny_spec());
        let mut spec = tiny_spec();
        spec.name = "renamed".into();
        spec.sweep.sigmas = vec![0.0, 0.3];
        spec.sweep.modes = vec![spnn_photonics::PerturbTarget::Both];
        spec.topologies = vec![MeshTopology::Clements, MeshTopology::Reck];
        spec.dataset.n_test = 9999;
        spec.iterations = 5;
        spec.min_iterations = 2;
        spec.target_moe = 0.25;
        spec.round_size = 4;
        spec.effects.quantization_bits = vec![Some(4)];
        spec.train.shuffle_singular_values = !spec.train.shuffle_singular_values;
        assert_eq!(Fingerprint::of_spec(&spec), base);
    }

    #[test]
    fn fingerprint_tracks_every_training_relevant_field() {
        type SpecMutation = Box<dyn Fn(&mut ScenarioSpec)>;
        let base = Fingerprint::of_spec(&tiny_spec());
        let variants: Vec<SpecMutation> = vec![
            Box::new(|s| s.seed += 1),
            Box::new(|s| s.dataset.n_train += 1),
            Box::new(|s| s.dataset.crop = 5),
            Box::new(|s| s.train.layers = vec![16, 12, 10]),
            Box::new(|s| s.train.epochs += 1),
            Box::new(|s| s.train.batch_size += 1),
            Box::new(|s| s.train.learning_rate *= 2.0),
        ];
        let mut keys = vec![base.hex()];
        for (i, mutate) in variants.iter().enumerate() {
            let mut spec = tiny_spec();
            mutate(&mut spec);
            let fp = Fingerprint::of_spec(&spec);
            assert_ne!(fp, base, "variant {i} did not change the fingerprint");
            keys.push(fp.hex());
        }
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), variants.len() + 1, "fingerprint collision");
    }

    #[test]
    fn in_memory_cache_trains_once() {
        let cache = ContextCache::in_memory();
        let spec = tiny_spec();
        let a = cache.get_or_train(&spec, false);
        let b = cache.get_or_train(&spec, false);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.trains, s.mem_hits, s.disk_hits), (1, 1, 0));
    }

    /// Concurrent requests for one fingerprint must serialize on the
    /// in-flight gate: exactly one trains, the rest take memory hits —
    /// the guarantee `spnn serve` relies on for simultaneous identical
    /// requests.
    #[test]
    fn concurrent_same_fingerprint_requests_train_once() {
        let cache = Arc::new(ContextCache::in_memory());
        let spec = tiny_spec();
        let contexts: Vec<Arc<TrainedContext>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let spec = spec.clone();
                    scope.spawn(move || cache.get_or_train(&spec, false))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for ctx in &contexts[1..] {
            assert!(Arc::ptr_eq(&contexts[0], ctx));
        }
        let s = cache.stats();
        assert_eq!(s.trains, 1, "exactly one thread may train");
        assert_eq!(s.mem_hits, 3, "the waiters take memory hits");
    }

    /// The advisory lock is exclusive across holders (flock contends per
    /// open file description, so two opens in one process model two
    /// processes): a second acquirer blocks until the first drops.
    #[cfg(unix)]
    #[test]
    fn advisory_lock_serializes_concurrent_holders() {
        let dir = tmp_dir("flock");
        let fp = Fingerprint::of_spec(&tiny_spec());
        let held = advisory_lock(&dir, &fp, false, None).expect("first lock");
        let (dir2, fp2) = (dir.clone(), fp.clone());
        let waiter = std::thread::spawn(move || {
            advisory_lock(&dir2, &fp2, false, None).expect("second lock (after release)")
        });
        std::thread::sleep(std::time::Duration::from_millis(150));
        assert!(
            !waiter.is_finished(),
            "second holder must block while the first holds the lock"
        );
        drop(held);
        let second = waiter.join().expect("waiter thread");
        drop(second);
        // Different fingerprints use different lock files: no contention.
        let mut other_spec = tiny_spec();
        other_spec.seed ^= 1;
        let other_fp = Fingerprint::of_spec(&other_spec);
        let a = advisory_lock(&dir, &fp, false, None).expect("relock");
        let b = advisory_lock(&dir, &other_fp, false, None).expect("independent lock");
        drop((a, b));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A cold cache dir contended by two caches (modeling two cold worker
    /// processes) still ends with one usable entry and bit-identical
    /// contexts; the second loads what the first trained when the lock
    /// made it wait.
    #[test]
    fn shared_dir_cold_contenders_converge() {
        let dir = tmp_dir("shared-cold");
        let spec = tiny_spec();
        let (a, b) = std::thread::scope(|scope| {
            let ta = scope.spawn(|| ContextCache::on_disk(&dir).get_or_train(&spec, false));
            let tb = scope.spawn(|| ContextCache::on_disk(&dir).get_or_train(&spec, false));
            (ta.join().unwrap(), tb.join().unwrap())
        });
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.train_accuracy().to_bits(),
            b.train_accuracy().to_bits(),
            "contenders must converge on identical contexts"
        );
        for (wa, wb) in a.software().weights().iter().zip(b.software().weights()) {
            for r in 0..wa.rows() {
                for c in 0..wa.cols() {
                    assert_eq!(wa[(r, c)].re.to_bits(), wb[(r, c)].re.to_bits());
                    assert_eq!(wa[(r, c)].im.to_bits(), wb[(r, c)].im.to_bits());
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_round_trip_is_bit_identical_and_skips_training() {
        let dir = tmp_dir("roundtrip");
        let spec = tiny_spec();

        let cold = ContextCache::on_disk(&dir);
        let ctx = cold.get_or_train(&spec, false);
        let hw = ctx
            .mapping(MeshTopology::Clements, Some(spec.seed ^ 0x33))
            .unwrap();
        cold.persist(&ctx).unwrap();
        assert_eq!(cold.stats().trains, 1);

        let warm = ContextCache::on_disk(&dir);
        let loaded = warm.get_or_train(&spec, false);
        let s = warm.stats();
        assert_eq!((s.trains, s.disk_hits), (0, 1), "warm load must not train");
        assert_eq!(loaded.n_mappings(), 1, "persisted mapping restored");
        assert_eq!(
            loaded.train_accuracy().to_bits(),
            ctx.train_accuracy().to_bits()
        );

        // Weights round-trip bit for bit…
        for (a, b) in ctx
            .software()
            .weights()
            .iter()
            .zip(loaded.software().weights())
        {
            for r in 0..a.rows() {
                for c in 0..a.cols() {
                    assert_eq!(a[(r, c)].re.to_bits(), b[(r, c)].re.to_bits());
                    assert_eq!(a[(r, c)].im.to_bits(), b[(r, c)].im.to_bits());
                }
            }
        }
        // …and so does the restored mapping's ideal matrix.
        let hw2 = warm
            .get_or_train(&spec, false)
            .mapping(MeshTopology::Clements, Some(spec.seed ^ 0x33))
            .unwrap();
        for (a, b) in hw.ideal_matrices().iter().zip(hw2.ideal_matrices().iter()) {
            for r in 0..a.rows() {
                for c in 0..a.cols() {
                    assert_eq!(a[(r, c)].re.to_bits(), b[(r, c)].re.to_bits());
                    assert_eq!(a[(r, c)].im.to_bits(), b[(r, c)].im.to_bits());
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_skips_when_the_entry_is_current() {
        let dir = tmp_dir("skip");
        let spec = tiny_spec();
        let cold = ContextCache::on_disk(&dir);
        let ctx = cold.get_or_train(&spec, false);
        let path = entry_path(&dir, ctx.fingerprint());
        assert!(path.exists(), "cold train persists");

        // Warm load: persisting with no new mappings must be a no-op —
        // remove the file and verify persist does not recreate it.
        let warm = ContextCache::on_disk(&dir);
        let loaded = warm.get_or_train(&spec, false);
        std::fs::remove_file(&path).unwrap();
        warm.persist(&loaded).unwrap();
        assert!(!path.exists(), "unchanged context must not rewrite");

        // A newly materialized mapping makes the entry stale → rewrite.
        loaded.mapping(MeshTopology::Clements, None).unwrap();
        warm.persist(&loaded).unwrap();
        assert!(path.exists(), "grown context must persist");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_files_fall_back_to_retraining() {
        let dir = tmp_dir("corrupt");
        let spec = tiny_spec();
        let cold = ContextCache::on_disk(&dir);
        let ctx = cold.get_or_train(&spec, false);
        let path = entry_path(&dir, ctx.fingerprint());

        let pristine = std::fs::read(&path).unwrap();
        let corruptions: Vec<Vec<u8>> = vec![
            Vec::new(),                              // empty file
            pristine[..pristine.len() / 2].to_vec(), // truncated
            {
                let mut b = pristine.clone();
                let mid = b.len() / 2;
                b[mid] ^= 0xFF; // flipped byte in the middle
                b
            },
            {
                let mut b = pristine.clone();
                b[0] ^= 0x01; // bad magic
                b
            },
            b"not a cache file at all".to_vec(),
        ];
        for (i, bytes) in corruptions.iter().enumerate() {
            std::fs::write(&path, bytes).unwrap();
            let warm = ContextCache::on_disk(&dir);
            let re = warm.get_or_train(&spec, false);
            assert_eq!(warm.stats().trains, 1, "corruption {i} did not retrain");
            assert_eq!(warm.stats().disk_hits, 0, "corruption {i} was accepted");
            // The retrained context matches the original bit for bit.
            assert_eq!(
                re.train_accuracy().to_bits(),
                ctx.train_accuracy().to_bits(),
                "corruption {i}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_bump_invalidates_entries() {
        let dir = tmp_dir("version");
        let spec = tiny_spec();
        let cold = ContextCache::on_disk(&dir);
        let ctx = cold.get_or_train(&spec, false);
        let path = entry_path(&dir, ctx.fingerprint());
        let mut bytes = std::fs::read(&path).unwrap();
        // Patch the version field (right after magic) and re-seal the
        // checksum so only the version check can reject it.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let len = bytes.len();
        let sum = fnv1a64(&bytes[..len - 8], FNV_BASIS);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let warm = ContextCache::on_disk(&dir);
        let _ = warm.get_or_train(&spec, false);
        assert_eq!(warm.stats().trains, 1, "future version must not load");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn list_entries_reports_good_and_corrupt_files() {
        let dir = tmp_dir("ls");
        let spec = tiny_spec();
        let cache = ContextCache::on_disk(&dir);
        let ctx = cache.get_or_train(&spec, false);
        std::fs::write(
            dir.join("ctx-feedfacefeedfacefeedfacefeedface.spnnctx"),
            b"junk",
        )
        .unwrap();
        std::fs::write(dir.join("README"), b"ignored").unwrap();

        let entries = list_entries(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        let good = entries.iter().find(|e| e.ok).expect("valid entry listed");
        assert_eq!(good.key_hex, ctx.fingerprint().hex());
        assert_eq!(
            good.canonical.as_deref(),
            Some(ctx.fingerprint().canonical())
        );
        assert_eq!(good.n_mappings, Some(0));
        let bad = entries
            .iter()
            .find(|e| !e.ok)
            .expect("corrupt entry listed");
        assert_eq!(bad.key_hex, "feedfacefeedfacefeedfacefeedface");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_lists_empty() {
        let entries = list_entries(Path::new("/nonexistent/spnn-cache-xyz")).unwrap();
        assert!(entries.is_empty());
    }

    /// `gc` only looks at names, sizes and mtimes, so entries can be plain
    /// files; sleeps guarantee strictly increasing mtimes.
    fn fake_entries(dir: &Path, sizes: &[usize]) -> Vec<PathBuf> {
        std::fs::create_dir_all(dir).unwrap();
        sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| {
                let path = dir.join(format!("ctx-{i:032x}.{EXTENSION}"));
                std::fs::write(&path, vec![0u8; size]).unwrap();
                std::thread::sleep(std::time::Duration::from_millis(12));
                path
            })
            .collect()
    }

    #[test]
    fn gc_evicts_least_recently_written_by_count() {
        let dir = tmp_dir("gc-count");
        let paths = fake_entries(&dir, &[100, 100, 100]);
        let out = gc(
            &dir,
            &GcLimits {
                max_entries: Some(2),
                max_bytes: None,
            },
        )
        .unwrap();
        assert_eq!((out.kept, out.removed), (2, 1));
        assert_eq!(out.bytes_freed, 100);
        assert!(!paths[0].exists(), "oldest entry evicted");
        assert!(
            paths[1].exists() && paths[2].exists(),
            "newest entries kept"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_by_byte_budget_and_spares_fresh_tmp_files() {
        let dir = tmp_dir("gc-bytes");
        let paths = fake_entries(&dir, &[400, 300, 200]);
        std::fs::write(dir.join(".tmp-1234-deadbeef"), b"torn write").unwrap();
        std::fs::write(dir.join("README"), b"not an entry").unwrap();
        let out = gc(
            &dir,
            &GcLimits {
                max_entries: None,
                max_bytes: Some(550),
            },
        )
        .unwrap();
        // Newest (200) + next (300) fit in 550; the oldest 400 does not.
        // The README is untouched, and the just-written tmp file is young
        // enough to belong to a live writer — it must survive.
        assert_eq!((out.kept, out.removed), (2, 1));
        assert_eq!(out.bytes_kept, 500);
        assert_eq!(out.bytes_freed, 400);
        assert!(!paths[0].exists() && paths[1].exists() && paths[2].exists());
        assert!(dir.join("README").exists());
        assert!(dir.join(".tmp-1234-deadbeef").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_a_newest_first_prefix_not_a_knapsack_fit() {
        let dir = tmp_dir("gc-prefix");
        // Oldest-to-newest: 100, 300, 300. With max_bytes = 450 the
        // retained set must be the newest prefix {300}; the old 100-byte
        // entry must NOT be backfilled past the evicted middle one.
        let paths = fake_entries(&dir, &[100, 300, 300]);
        let out = gc(
            &dir,
            &GcLimits {
                max_entries: None,
                max_bytes: Some(450),
            },
        )
        .unwrap();
        assert_eq!((out.kept, out.removed), (1, 2));
        assert_eq!(out.bytes_kept, 300);
        assert!(!paths[0].exists() && !paths[1].exists() && paths[2].exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_without_limits_is_a_no_op_on_fresh_stores() {
        let dir = tmp_dir("gc-nolimits");
        let paths = fake_entries(&dir, &[50, 60]);
        std::fs::write(dir.join(".tmp-9-feed"), b"x").unwrap();
        let out = gc(&dir, &GcLimits::default()).unwrap();
        assert_eq!((out.kept, out.removed), (2, 0));
        assert!(paths.iter().all(|p| p.exists()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_of_missing_directory_is_a_no_op() {
        let out = gc(
            Path::new("/nonexistent/spnn-cache-xyz"),
            &GcLimits {
                max_entries: Some(1),
                max_bytes: None,
            },
        )
        .unwrap();
        assert_eq!(out, GcOutcome::default());
    }
}
