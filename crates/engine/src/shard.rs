//! Shard-and-merge execution: split a compiled work queue across
//! processes, recombine partial reports bit-identically.
//!
//! The paper's sweeps are embarrassingly parallel: iteration `k` of a
//! point with seed `s` depends only on `(s, k)` (see
//! [`spnn_core::monte_carlo::iteration_seed`]), so any slice of the work
//! can run anywhere and still produce the exact bits the unsharded run
//! would. This module provides the three pieces that turn that property
//! into distributed execution:
//!
//! - [`plan_shard`] — a deterministic planner that partitions the global
//!   queue's **round space** into `k` disjoint, contiguous, balanced
//!   slices. Every process computes the same plan from the same spec; no
//!   coordination is needed beyond collecting the outputs.
//!   [`plan_shard_weighted`] is the capacity-aware generalization
//!   (slices proportional to integer weights), and [`plan_span`] the
//!   shared primitive — any contiguous unit range of the round space is
//!   a valid dispatch, which is what lets a work-stealing coordinator
//!   re-dispatch sub-slices of a straggler's span.
//! - [`PartialReport`] — a versioned JSON format for one shard's output:
//!   the spec's queue fingerprint, the covered `(point, iteration-range)`
//!   blocks, each block's raw per-iteration samples and Welford state.
//!   Floats are emitted in Rust's shortest-round-trip decimal form and
//!   parsed back from the literal digits, so the format is bit-lossless.
//! - [`MergeState`] — an **incremental** merge: feed partials in any
//!   arrival order ([`MergeState::push`]), collect completed-prefix rows
//!   the moment their coverage is decidable, and
//!   [`MergeState::finalize`] into an [`EngineReport`] byte-for-byte
//!   identical to the unsharded run's. [`merge_partials`] is the batch
//!   convenience wrapper (push everything, finalize); the streaming
//!   coordinator in [`crate::exec`] feeds the same state machine one
//!   partial at a time, so distributed streams and batch merges cannot
//!   diverge. Validation (no gaps, no conflicting overlaps, no foreign
//!   fingerprints) is shared. Overlapping coverage with **identical
//!   bits** is deduplicated rather than rejected — iteration `k` of a
//!   point is a pure function of `(seed, k)`, so a speculative
//!   re-dispatch (work stealing, a straggler answering after its slice
//!   was re-planned) can only ever duplicate what the first computation
//!   produced; an overlap that *disagrees* at any iteration means a
//!   corrupt partial and is rejected outright.
//!
//! # Adaptive early termination under sharding
//!
//! A stopping decision at a round boundary needs the full sample prefix
//! of the point, which a shard that owns a later slice has not seen. The
//! engine therefore reworks adaptivity for sharded runs:
//!
//! 1. the shard owning a point's **prefix** (rounds from 0) applies the
//!    stop rule exactly as the unsharded run would and may stop early;
//! 2. shards owning later slices run their rounds unconditionally
//!    (bounded speculation — only points straddling a shard boundary are
//!    affected, at most `k − 1` of them);
//! 3. the merge replays the stop rule over the recombined stream in
//!    iteration order and discards everything past the first satisfied
//!    boundary — the same boundary the unsharded run stops at, because
//!    the replayed estimator sees the same samples in the same order.
//!
//! See `docs/sharding.md` for the CLI workflow and the format reference.

use crate::estimator::{StopRule, Welford};
use crate::fnv::{fnv1a64, FNV_BASIS};
use crate::json::{self, Json};
use crate::metrics::{Counter, Gauge, MetricsRegistry};
use crate::runner::{EngineReport, SweepRow, TopologySummary};
use crate::spec::ScenarioSpec;
use spnn_core::{KernelProfile, McResult};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Format identifier stored in every partial report.
pub const PARTIAL_FORMAT: &str = "spnn-partial-report";
/// Partial-report format version; bump on any layout change. Merging
/// rejects other versions outright (unlike the trained-context cache,
/// a partial cannot be regenerated transparently).
pub const PARTIAL_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

/// A contiguous range of rounds of one sweep point, assigned to a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBlock {
    /// Global queue index of the point.
    pub point: usize,
    /// First round of the range.
    pub first_round: usize,
    /// Number of rounds in the range (positive).
    pub rounds: usize,
}

/// Deterministically partitions the global round space into `shards`
/// slices and returns slice `index`.
///
/// The round space is the concatenation, in queue order, of every point's
/// rounds (`rounds_per_point[p]` rounds for point `p`). Shard `i` receives
/// the contiguous unit range `[⌊i·U/k⌋, ⌊(i+1)·U/k⌋)` of the `U` total
/// rounds — slices are disjoint, cover the space exactly, and differ in
/// size by at most one round. Points not straddling a slice boundary are
/// wholly owned by one shard; at most `k − 1` points are split.
///
/// # Panics
///
/// Panics if `shards == 0` or `index >= shards`.
pub fn plan_shard(rounds_per_point: &[usize], shards: usize, index: usize) -> Vec<ShardBlock> {
    assert!(shards > 0, "shards must be positive");
    assert!(index < shards, "shard index out of range");
    let total: usize = rounds_per_point.iter().sum();
    let lo = index * total / shards;
    let hi = (index + 1) * total / shards;
    plan_span(rounds_per_point, lo, hi)
}

/// The blocks covering the contiguous unit range `[lo, hi)` of the global
/// round space — the primitive under [`plan_shard`] and
/// [`plan_shard_weighted`], and the sub-slicing tool for work stealing
/// (re-dispatch any tail of a straggler's slice by planning its span).
///
/// Returns an empty plan for an empty span (`lo == hi`).
///
/// # Panics
///
/// Panics if `lo > hi` or `hi` exceeds the total round count.
pub fn plan_span(rounds_per_point: &[usize], lo: usize, hi: usize) -> Vec<ShardBlock> {
    let total: usize = rounds_per_point.iter().sum();
    assert!(lo <= hi, "span start past span end");
    assert!(hi <= total, "span end past the round space");

    let mut blocks = Vec::new();
    let mut cursor = 0usize; // first global unit of the current point
    for (point, &rounds) in rounds_per_point.iter().enumerate() {
        let begin = cursor.max(lo);
        let end = (cursor + rounds).min(hi);
        if begin < end {
            blocks.push(ShardBlock {
                point,
                first_round: begin - cursor,
                rounds: end - begin,
            });
        }
        cursor += rounds;
        if cursor >= hi {
            break;
        }
    }
    blocks
}

/// The unit range `[lo, hi)` of the global round space that
/// [`plan_shard_weighted`] assigns to peer `index` under `weights`.
///
/// Peer `i`'s range is `[⌊U·W_{<i}/W⌋, ⌊U·W_{≤i}/W⌋)` where `W_{<i}` is the
/// cumulative weight before `i` and `W` the weight total — the exact
/// weighted generalization of [`plan_shard`]'s `⌊i·U/k⌋` arithmetic, so
/// uniform weights reproduce the equal plan bit-for-bit (the shared factor
/// cancels inside the floor). Zero-weight peers receive empty ranges; an
/// all-zero vector carries no information and falls back to the equal
/// plan. Products are taken in `u128`, so any `u64` weights are exact.
///
/// # Panics
///
/// Panics if `weights` is empty or `index >= weights.len()`.
pub fn weighted_span(rounds_per_point: &[usize], weights: &[u64], index: usize) -> (usize, usize) {
    assert!(!weights.is_empty(), "weights must be non-empty");
    assert!(index < weights.len(), "peer index out of range");
    let total: usize = rounds_per_point.iter().sum();
    let sum: u128 = weights.iter().map(|&w| w as u128).sum();
    if sum == 0 {
        let k = weights.len();
        return (index * total / k, (index + 1) * total / k);
    }
    let before: u128 = weights[..index].iter().map(|&w| w as u128).sum();
    let through = before + weights[index] as u128;
    let lo = (total as u128 * before / sum) as usize;
    let hi = (total as u128 * through / sum) as usize;
    (lo, hi)
}

/// Capacity-weighted variant of [`plan_shard`]: slices the global round
/// space proportionally to `weights` (one weight per peer) and returns
/// peer `index`'s blocks. See [`weighted_span`] for the arithmetic and
/// the degenerate cases (uniform, zeros, all-zero).
///
/// # Panics
///
/// Panics if `weights` is empty or `index >= weights.len()`.
pub fn plan_shard_weighted(
    rounds_per_point: &[usize],
    weights: &[u64],
    index: usize,
) -> Vec<ShardBlock> {
    let (lo, hi) = weighted_span(rounds_per_point, weights, index);
    plan_span(rounds_per_point, lo, hi)
}

/// The queue fingerprint of a spec: a 128-bit FNV-1a key over the spec's
/// canonical text form, rendered as 32 lowercase hex characters.
///
/// [`ScenarioSpec::to_text`] round-trips exactly, so two specs share a
/// fingerprint iff they compile to the same work queue (same points, same
/// per-point seeds, same budgets). [`merge_partials`] refuses to combine
/// partials with differing fingerprints.
pub fn queue_fingerprint(spec: &ScenarioSpec) -> String {
    queue_fingerprint_with(spec, KernelProfile::Reference)
}

/// [`queue_fingerprint`] scoped to a [`KernelProfile`].
///
/// The kernel profile changes the Monte-Carlo sample bits, so two runs of
/// the same spec under different profiles are *different work* — their
/// partials must never merge and their cached rows must never mix. The
/// Reference profile hashes exactly the canonical text `queue_fingerprint`
/// always hashed (so every fingerprint ever written stays valid); the Fma
/// profile injects a `kernel=fma` component, yielding a disjoint
/// fingerprint space.
pub fn queue_fingerprint_with(spec: &ScenarioSpec, kernel: KernelProfile) -> String {
    let canonical = match kernel {
        KernelProfile::Reference => format!("spnn-queue-v1;{}", spec.to_text()),
        KernelProfile::Fma => format!("spnn-queue-v1;kernel=fma;{}", spec.to_text()),
    };
    let a = fnv1a64(canonical.as_bytes(), FNV_BASIS);
    let b = fnv1a64(canonical.as_bytes(), 0x6c62272e07bb0142);
    let mut out = String::with_capacity(32);
    for byte in a.to_le_bytes().iter().chain(b.to_le_bytes().iter()) {
        let _ = write!(out, "{byte:02x}");
    }
    out
}

// ---------------------------------------------------------------------------
// Partial-report model
// ---------------------------------------------------------------------------

/// One covered block of a partial report: a contiguous iteration range of
/// one sweep point, with its raw samples.
#[derive(Debug, Clone)]
pub struct PartialPoint {
    /// Global queue index of the point.
    pub index: usize,
    /// Topology the point ran on.
    pub topology: String,
    /// The point's labels (identical across every block of the point).
    pub labels: Vec<(String, String)>,
    /// The point's Monte-Carlo base seed (cross-checked at merge).
    pub seed: u64,
    /// First iteration the block covers (a multiple of `round_size`).
    pub first_iteration: usize,
    /// `true` when this block owned the point's prefix and the adaptive
    /// rule stopped inside it (informational — the merge replays the rule
    /// itself).
    pub stopped_early: bool,
    /// Welford state over exactly this block's samples (integrity check:
    /// the merge recomputes it from `samples` and demands bit equality).
    pub welford: Welford,
    /// Raw per-iteration accuracies, in iteration order.
    pub samples: Vec<f64>,
}

/// One shard's output: scenario identity, stop-rule parameters, topology
/// summaries, and the covered blocks. Serialized as versioned JSON
/// ([`PartialReport::to_json`] / [`PartialReport::parse`]).
#[derive(Debug, Clone)]
pub struct PartialReport {
    /// Scenario name.
    pub scenario: String,
    /// [`queue_fingerprint_with`] of the spec this shard executed.
    pub queue_fingerprint: String,
    /// Kernel profile the shard's samples were computed under. Serialized
    /// only when not [`KernelProfile::Reference`], so reference partials
    /// keep their historical bytes; merges reject mixed profiles.
    pub kernel: KernelProfile,
    /// Number of shards in the plan this partial belongs to.
    pub shards: usize,
    /// This shard's index within the plan.
    pub shard_index: usize,
    /// Total number of points in the global queue.
    pub total_points: usize,
    /// Iterations per stopping-decision round.
    pub round_size: usize,
    /// Per-point iteration cap.
    pub iterations: usize,
    /// Iterations before adaptive early termination may trigger.
    pub min_iterations: usize,
    /// 95 % margin-of-error target (`0` = fixed-count).
    pub target_moe: f64,
    /// Per-topology summaries (bit-identical across shards; validated).
    pub topologies: Vec<TopologySummary>,
    /// Covered blocks, in plan order.
    pub points: Vec<PartialPoint>,
}

impl PartialReport {
    /// The stop rule this partial's scenario ran under.
    pub fn stop_rule(&self) -> StopRule {
        StopRule {
            max_iterations: self.iterations,
            min_iterations: self.min_iterations,
            target_moe: self.target_moe,
        }
    }

    /// Serializes to the versioned partial-report JSON format.
    ///
    /// Bit-lossless: every float is written in Rust's shortest
    /// round-trip decimal form and [`PartialReport::parse`] recovers it
    /// from the literal digits; seeds are plain (64-bit-exact) integers.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": \"{PARTIAL_FORMAT}\",");
        let _ = writeln!(out, "  \"version\": {PARTIAL_VERSION},");
        let _ = writeln!(out, "  \"scenario\": \"{}\",", json::escape(&self.scenario));
        let _ = writeln!(
            out,
            "  \"queue_fingerprint\": \"{}\",",
            json::escape(&self.queue_fingerprint)
        );
        if self.kernel != KernelProfile::Reference {
            let _ = writeln!(out, "  \"kernel\": \"{}\",", self.kernel.as_str());
        }
        let _ = writeln!(out, "  \"shards\": {},", self.shards);
        let _ = writeln!(out, "  \"shard_index\": {},", self.shard_index);
        let _ = writeln!(out, "  \"total_points\": {},", self.total_points);
        let _ = writeln!(out, "  \"round_size\": {},", self.round_size);
        let _ = writeln!(out, "  \"iterations\": {},", self.iterations);
        let _ = writeln!(out, "  \"min_iterations\": {},", self.min_iterations);
        let _ = writeln!(out, "  \"target_moe\": {},", self.target_moe);
        out.push_str("  \"topologies\": [");
        for (i, t) in self.topologies.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"topology\": \"{}\", \"software_accuracy\": {}, \"nominal_accuracy\": {}}}",
                if i == 0 { "" } else { "," },
                json::escape(&t.topology),
                t.software_accuracy,
                t.nominal_accuracy
            );
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"index\": {}, \"topology\": \"{}\", \"labels\": [",
                if i == 0 { "" } else { "," },
                p.index,
                json::escape(&p.topology)
            );
            for (j, (k, v)) in p.labels.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}[\"{}\", \"{}\"]",
                    if j == 0 { "" } else { ", " },
                    json::escape(k),
                    json::escape(v)
                );
            }
            let (n, mean, m2) = p.welford.parts();
            let _ = write!(
                out,
                "],\n     \"seed\": {}, \"first_iteration\": {}, \"stopped_early\": {},\n     \
                 \"welford\": {{\"count\": {n}, \"mean\": {mean}, \"m2\": {m2}}},\n     \"samples\": [",
                p.seed, p.first_iteration, p.stopped_early
            );
            for (j, s) in p.samples.iter().enumerate() {
                let _ = write!(out, "{}{s}", if j == 0 { "" } else { ", " });
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a partial report from its JSON form.
    ///
    /// Strict: unknown format identifiers, version skew, and missing or
    /// mistyped fields are [`MergeError::Format`] errors — unlike the
    /// trained-context cache, a partial cannot be regenerated silently.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::Format`] describing the first problem found.
    pub fn parse(text: &str) -> Result<Self, MergeError> {
        let doc = json::parse(text).map_err(MergeError::Format)?;
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| MergeError::Format(format!("missing field {key:?}")))
        };
        let str_field = |key: &str| {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| MergeError::Format(format!("field {key:?} must be a string")))
        };
        let usize_field = |key: &str| {
            field(key)?
                .as_usize()
                .ok_or_else(|| MergeError::Format(format!("field {key:?} must be an integer")))
        };

        if str_field("format")? != PARTIAL_FORMAT {
            return Err(MergeError::Format(format!(
                "not a {PARTIAL_FORMAT} document"
            )));
        }
        let version = usize_field("version")?;
        if version != PARTIAL_VERSION as usize {
            return Err(MergeError::Format(format!(
                "unsupported partial-report version {version} (this build reads {PARTIAL_VERSION})"
            )));
        }

        let topologies = field("topologies")?
            .as_array()
            .ok_or_else(|| MergeError::Format("\"topologies\" must be an array".into()))?
            .iter()
            .map(parse_topology)
            .collect::<Result<Vec<_>, _>>()?;
        let points = field("points")?
            .as_array()
            .ok_or_else(|| MergeError::Format("\"points\" must be an array".into()))?
            .iter()
            .map(parse_point)
            .collect::<Result<Vec<_>, _>>()?;

        // Optional for backward compatibility: partials written before the
        // kernel-profile tier existed are all Reference.
        let kernel = match doc.get("kernel") {
            None => KernelProfile::Reference,
            Some(v) => {
                let name = v.as_str().ok_or_else(|| {
                    MergeError::Format("field \"kernel\" must be a string".into())
                })?;
                KernelProfile::parse(name)
                    .ok_or_else(|| MergeError::Format(format!("unknown kernel profile {name:?}")))?
            }
        };

        Ok(Self {
            scenario: str_field("scenario")?,
            queue_fingerprint: str_field("queue_fingerprint")?,
            kernel,
            shards: usize_field("shards")?,
            shard_index: usize_field("shard_index")?,
            total_points: usize_field("total_points")?,
            round_size: usize_field("round_size")?,
            iterations: usize_field("iterations")?,
            min_iterations: usize_field("min_iterations")?,
            target_moe: field("target_moe")?
                .as_f64()
                .ok_or_else(|| MergeError::Format("\"target_moe\" must be a number".into()))?,
            topologies,
            points,
        })
    }
}

fn parse_topology(v: &Json) -> Result<TopologySummary, MergeError> {
    let get_f64 = |key: &str| {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| MergeError::Format(format!("topology entry needs numeric {key:?}")))
    };
    Ok(TopologySummary {
        topology: v
            .get("topology")
            .and_then(Json::as_str)
            .ok_or_else(|| MergeError::Format("topology entry needs \"topology\"".into()))?
            .to_string(),
        software_accuracy: get_f64("software_accuracy")?,
        nominal_accuracy: get_f64("nominal_accuracy")?,
    })
}

fn parse_point(v: &Json) -> Result<PartialPoint, MergeError> {
    let err = |msg: &str| MergeError::Format(format!("point entry: {msg}"));
    let labels = v
        .get("labels")
        .and_then(Json::as_array)
        .ok_or_else(|| err("needs a \"labels\" array"))?
        .iter()
        .map(|pair| {
            let pair = pair.as_array().filter(|p| p.len() == 2);
            match pair {
                Some([k, val]) => match (k.as_str(), val.as_str()) {
                    (Some(k), Some(val)) => Ok((k.to_string(), val.to_string())),
                    _ => Err(err("label pair must hold two strings")),
                },
                _ => Err(err("labels must be [key, value] pairs")),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let welford = v
        .get("welford")
        .ok_or_else(|| err("needs a \"welford\" object"))?;
    let w_count = welford
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| err("welford needs integer \"count\""))?;
    let w_mean = welford
        .get("mean")
        .and_then(Json::as_f64)
        .ok_or_else(|| err("welford needs numeric \"mean\""))?;
    let w_m2 = welford
        .get("m2")
        .and_then(Json::as_f64)
        .ok_or_else(|| err("welford needs numeric \"m2\""))?;
    let samples = v
        .get("samples")
        .and_then(Json::as_array)
        .ok_or_else(|| err("needs a \"samples\" array"))?
        .iter()
        .map(|s| s.as_f64().ok_or_else(|| err("samples must be numbers")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(PartialPoint {
        index: v
            .get("index")
            .and_then(Json::as_usize)
            .ok_or_else(|| err("needs integer \"index\""))?,
        topology: v
            .get("topology")
            .and_then(Json::as_str)
            .ok_or_else(|| err("needs string \"topology\""))?
            .to_string(),
        labels,
        seed: v
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("needs integer \"seed\""))?,
        first_iteration: v
            .get("first_iteration")
            .and_then(Json::as_usize)
            .ok_or_else(|| err("needs integer \"first_iteration\""))?,
        stopped_early: v
            .get("stopped_early")
            .and_then(Json::as_bool)
            .ok_or_else(|| err("needs boolean \"stopped_early\""))?,
        welford: Welford::from_parts(w_count, w_mean, w_m2),
        samples,
    })
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

/// Why a set of partial reports could not be merged.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// A document is not a readable partial report (bad JSON, wrong
    /// format identifier, version skew, missing fields).
    Format(String),
    /// The partials disagree on scenario identity — foreign queue
    /// fingerprint, differing budgets, or inconsistent point metadata.
    Mismatch(String),
    /// The covered blocks leave a gap, overlap, or miss a point entirely.
    Coverage(String),
    /// A block's internal state is inconsistent (its Welford summary does
    /// not match its samples, or the block exceeds the iteration cap).
    Corrupt(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Format(m) => write!(f, "unreadable partial report: {m}"),
            MergeError::Mismatch(m) => write!(f, "partials do not belong together: {m}"),
            MergeError::Coverage(m) => write!(f, "incomplete coverage: {m}"),
            MergeError::Corrupt(m) => write!(f, "corrupt partial report: {m}"),
        }
    }
}

impl std::error::Error for MergeError {}

fn bits(x: f64) -> u64 {
    x.to_bits()
}

/// The outcome of replaying one point's blocks as collected so far.
enum PointReplay {
    /// Coverage is decidable: these are exactly the samples the unsharded
    /// run retains, plus its early-stop flag. Later-arriving blocks can
    /// only be discarded speculation — the row is final.
    Complete {
        /// Retained samples in iteration order.
        samples: Vec<f64>,
        /// Whether the stop rule fired before the cap.
        stopped_early: bool,
    },
    /// The blocks held so far leave a gap (or stop short of the cap with
    /// the stop rule unsatisfied); more partials may still arrive. The
    /// carried error is what [`MergeState::finalize`] reports if they
    /// never do.
    Pending(MergeError),
}

/// Validates and replays one point's sorted blocks: metadata agreement,
/// structural integrity (round alignment, Welford checks, bit-identical
/// overlap dedup), then the stop-rule replay at round boundaries —
/// exactly what the unsharded run computes.
///
/// Hard violations (conflicting overlaps, corrupt blocks, metadata
/// disagreement) are `Err`; incomplete-but-consistent coverage is
/// [`PointReplay::Pending`].
fn replay_blocks(
    index: usize,
    blocks: &[PartialPoint],
    stop: &StopRule,
    round_size: usize,
) -> Result<PointReplay, MergeError> {
    let cap = stop.max_iterations;

    let head = &blocks[0];
    for b in &blocks[1..] {
        if b.topology != head.topology || b.labels != head.labels || b.seed != head.seed {
            return Err(MergeError::Mismatch(format!(
                "point {index}: blocks disagree on topology, labels or seed"
            )));
        }
    }

    // Structural pass first: blocks must be round-aligned, non-empty,
    // in-bounds, and internally consistent (Welford matches samples).
    // Coverage is accumulated into per-iteration slots: overlapping
    // coverage is legal **iff the overlapped iterations carry identical
    // bits**. Iteration `k` of a point is a pure function of `(seed, k)`,
    // so a speculative re-dispatch (work stealing, a retried straggler,
    // a duplicated shard) can only duplicate what the first computation
    // produced — identical duplicates are deduplicated here, while a
    // bit-level disagreement means one of the partials is corrupt and is
    // rejected outright.
    let mut slots: Vec<Option<f64>> = vec![None; cap];
    for b in blocks {
        if b.first_iteration % round_size != 0 {
            return Err(MergeError::Corrupt(format!(
                "point {index}: block starts at iteration {} (not a round boundary)",
                b.first_iteration
            )));
        }
        if b.samples.is_empty() {
            return Err(MergeError::Corrupt(format!("point {index}: empty block")));
        }
        if b.first_iteration + b.samples.len() > cap {
            return Err(MergeError::Corrupt(format!(
                "point {index}: blocks exceed the {cap}-iteration cap"
            )));
        }
        // The block's Welford summary must be exactly what its samples
        // produce — a cheap end-to-end integrity check on the JSON.
        let mut check = Welford::new();
        for &s in &b.samples {
            check.push(s);
        }
        let (cn, cm, cm2) = check.parts();
        let (wn, wm, wm2) = b.welford.parts();
        if cn != wn || bits(cm) != bits(wm) || bits(cm2) != bits(wm2) {
            return Err(MergeError::Corrupt(format!(
                "point {index}: Welford state does not match the samples"
            )));
        }
        for (offset, &s) in b.samples.iter().enumerate() {
            let k = b.first_iteration + offset;
            match slots[k] {
                None => slots[k] = Some(s),
                Some(prev) if bits(prev) == bits(s) => {} // speculative duplicate
                Some(_) => {
                    return Err(MergeError::Corrupt(format!(
                        "point {index}: iteration {k} is covered twice with different bits"
                    )));
                }
            }
        }
    }

    // Replay: walk the filled contiguous prefix in iteration order,
    // applying the stop rule at round boundaries — exactly the unsharded
    // run. Everything past the first satisfied boundary is discarded
    // speculation the unsharded run never executes.
    let mut est = Welford::new();
    let mut retained: Vec<f64> = Vec::new();
    let mut stopped = false;
    for slot in &slots {
        let Some(s) = *slot else { break };
        est.push(s);
        retained.push(s);
        let n = retained.len();
        if (n.is_multiple_of(round_size) || n == cap) && stop.should_stop(&est) {
            stopped = true;
            break;
        }
    }

    if !stopped && retained.len() < cap {
        let err = match slots[retained.len()..].iter().position(|s| s.is_some()) {
            Some(gap) => MergeError::Coverage(format!(
                "point {index}: iterations {}..{} are missing",
                retained.len(),
                retained.len() + gap
            )),
            None => MergeError::Coverage(format!(
                "point {index}: only {} of {cap} iterations covered and the stop rule \
                 is not satisfied there",
                retained.len()
            )),
        };
        return Ok(PointReplay::Pending(err));
    }
    let stopped_early = retained.len() < cap;
    Ok(PointReplay::Complete {
        samples: retained,
        stopped_early,
    })
}

/// Checks that `p` (the `ordinal`-th partial fed to a merge) belongs to
/// the same run as `first`: same queue fingerprint, budgets, and
/// bit-identical topology summaries.
fn check_compatible(
    first: &PartialReport,
    p: &PartialReport,
    ordinal: usize,
) -> Result<(), MergeError> {
    if p.kernel != first.kernel {
        return Err(MergeError::Mismatch(format!(
            "partial {ordinal} was computed under the {} kernel profile but partial 0 under {} \
             — profiles produce different sample bits and must never mix",
            p.kernel, first.kernel
        )));
    }
    if p.queue_fingerprint != first.queue_fingerprint {
        return Err(MergeError::Mismatch(format!(
            "partial {ordinal} has queue fingerprint {} but partial 0 has {}",
            p.queue_fingerprint, first.queue_fingerprint
        )));
    }
    let same_meta = p.scenario == first.scenario
        && p.total_points == first.total_points
        && p.round_size == first.round_size
        && p.iterations == first.iterations
        && p.min_iterations == first.min_iterations
        && bits(p.target_moe) == bits(first.target_moe);
    if !same_meta {
        return Err(MergeError::Mismatch(format!(
            "partial {ordinal} disagrees on scenario metadata despite a matching fingerprint"
        )));
    }
    let same_topologies = p.topologies.len() == first.topologies.len()
        && p.topologies.iter().zip(&first.topologies).all(|(a, b)| {
            a.topology == b.topology
                && bits(a.software_accuracy) == bits(b.software_accuracy)
                && bits(a.nominal_accuracy) == bits(b.nominal_accuracy)
        });
    if !same_topologies {
        return Err(MergeError::Mismatch(format!(
            "partial {ordinal} reports different topology summaries"
        )));
    }
    Ok(())
}

/// Incremental shard merge: feed [`PartialReport`]s in **any arrival
/// order**, harvest completed rows in prefix order as their coverage
/// becomes decidable, and [`finalize`](Self::finalize) into the exact
/// batch report.
///
/// A sweep point's row is *final* as soon as its collected blocks form a
/// gap-free prefix on which the replayed stop rule fires (or that reaches
/// the iteration cap): any block still in flight can only be discarded
/// speculation or a bit-identical duplicate, because every iteration is a
/// pure function of `(seed, k)` and any overlap that disagrees is
/// rejected as corrupt. This is what lets a coordinator stream row `i`
/// the moment the shard owning it finishes, while shards owning later
/// slices (or work-stealing re-dispatches of the same span) are still
/// running — and why the streamed rows are byte-identical to the batch
/// merge: both are this state machine.
///
/// ```
/// use spnn_engine::shard::MergeState;
/// # use spnn_engine::prelude::*;
/// # let spec = {
/// #     let mut s = presets::fig4(&RunScale::tiny());
/// #     s.sweep.sigmas = vec![0.0, 0.1];
/// #     s.sweep.modes = vec![spnn_photonics::PerturbTarget::Both];
/// #     s.iterations = 4; s.min_iterations = 2; s.round_size = 2; s
/// # };
/// # let cache = ContextCache::in_memory();
/// # let config = EngineConfig::default();
/// let mut merge = MergeState::new();
/// let mut rows = Vec::new();
/// for index in [1, 0] {  // partials may arrive in any order
///     let partial = run_scenario_shard_with(&spec, &config, &cache, 2, index).unwrap();
///     rows.extend(merge.push(partial).unwrap()); // completed-prefix rows
/// }
/// let report = merge.finalize().unwrap();
/// assert_eq!(rows.len(), report.rows.len());
/// ```
#[derive(Debug, Default)]
pub struct MergeState {
    /// Header of the first partial (its `points` drained) — the identity
    /// every later partial is validated against.
    meta: Option<PartialReport>,
    /// Collected blocks per global point index, sorted by first iteration.
    blocks: BTreeMap<usize, Vec<PartialPoint>>,
    /// Finalized rows, keyed by point index.
    done: BTreeMap<usize, SweepRow>,
    /// Rows `0..emitted` have been handed out by [`Self::push`].
    emitted: usize,
    /// Partials fed so far (for error ordinals).
    seen: usize,
    /// Observability handles (detached no-ops for [`MergeState::new`];
    /// registered by [`MergeState::with_metrics`]). Purely observational.
    partials_metric: Counter,
    rows_metric: Counter,
    pending_metric: Gauge,
    /// Row cache (plus the spec's key context) to publish completed
    /// points into as they finalize — set by
    /// [`MergeState::publish_rows_to`], `None` otherwise.
    publish: Option<(
        std::sync::Arc<crate::rowcache::RowCache>,
        crate::rowcache::RowContext,
    )>,
}

impl MergeState {
    /// An empty merge; identical to `MergeState::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty merge whose progress is visible in `registry`:
    /// `spnn_merge_partials_total` (partials fed),
    /// `spnn_merge_rows_finalized_total` (rows emitted in prefix order),
    /// and the `spnn_merge_pending_points` gauge (rows finalized but
    /// held back by a coverage gap earlier in the queue).
    pub fn with_metrics(registry: &MetricsRegistry) -> Self {
        MergeState {
            partials_metric: registry.counter(
                "spnn_merge_partials_total",
                "Shard partials fed into the incremental merge.",
                &[],
            ),
            rows_metric: registry.counter(
                "spnn_merge_rows_finalized_total",
                "Rows emitted by the incremental merge, in prefix order.",
                &[],
            ),
            pending_metric: registry.gauge(
                "spnn_merge_pending_points",
                "Rows finalized but held back by a coverage gap.",
                &[],
            ),
            ..Self::default()
        }
    }

    /// Publishes every point this merge completes into `cache`, keyed by
    /// `ctx` — the merge sees the full recombined sample stream of each
    /// point (bit-lossless through the partial wire format), so the
    /// cached payload is identical to what an unsharded run would have
    /// published. This is how distributed runs ([`crate::exec`]) warm
    /// the row cache coordinator-side regardless of executor.
    pub fn publish_rows_to(
        &mut self,
        cache: std::sync::Arc<crate::rowcache::RowCache>,
        ctx: crate::rowcache::RowContext,
    ) {
        self.publish = Some((cache, ctx));
    }

    /// The scenario metadata adopted from the first pushed partial, if any.
    pub fn meta(&self) -> Option<&PartialReport> {
        self.meta.as_ref()
    }

    /// Rows already emitted by [`Self::push`] (the completed prefix).
    pub fn rows_emitted(&self) -> usize {
        self.emitted
    }

    /// `true` once every point of the queue has a final row.
    pub fn is_complete(&self) -> bool {
        self.meta
            .as_ref()
            .is_some_and(|m| self.emitted == m.total_points)
    }

    /// Feeds one partial and returns the rows whose indices newly joined
    /// the completed prefix, as `(index, row)` in index order — possibly
    /// empty (the partial extended coverage somewhere past the prefix),
    /// possibly several (it plugged the gap holding the prefix back).
    ///
    /// Rows are emitted exactly once across pushes, in strict prefix
    /// order: the concatenation over all pushes is `rows[0..n]` of the
    /// final report.
    ///
    /// # Errors
    ///
    /// Everything [`merge_partials`] rejects, the moment it becomes
    /// detectable: [`MergeError::Mismatch`] on foreign fingerprints or
    /// metadata, [`MergeError::Corrupt`] on inconsistent blocks or
    /// overlaps that disagree bit-for-bit, [`MergeError::Format`] on
    /// out-of-range point indices. Bit-identical overlapping coverage is
    /// deduplicated, not rejected. Gaps are *not* errors here — a later
    /// partial may fill them; they surface in [`Self::finalize`].
    pub fn push(&mut self, partial: PartialReport) -> Result<Vec<(usize, SweepRow)>, MergeError> {
        let ordinal = self.seen;
        self.seen += 1;
        let mut header = partial;
        let points = std::mem::take(&mut header.points);
        match &self.meta {
            None => self.meta = Some(header),
            Some(first) => check_compatible(first, &header, ordinal)?,
        }
        let meta = self.meta.as_ref().expect("meta adopted above");
        let (total_points, round_size, stop) =
            (meta.total_points, meta.round_size, meta.stop_rule());

        let mut touched: Vec<usize> = Vec::with_capacity(points.len());
        for block in points {
            if block.index >= total_points {
                return Err(MergeError::Format(format!(
                    "block references point {} of a {}-point queue",
                    block.index, total_points
                )));
            }
            touched.push(block.index);
            let held = self.blocks.entry(block.index).or_default();
            // An exact duplicate of a held block (same range, same bits)
            // adds no information — drop it so speculative re-dispatch
            // (work stealing) cannot grow memory without bound. Partial
            // overlaps are kept; `replay_blocks` dedups them slot-wise.
            let duplicate = held.iter().any(|b| {
                b.first_iteration == block.first_iteration
                    && b.samples.len() == block.samples.len()
                    && b.samples
                        .iter()
                        .zip(&block.samples)
                        .all(|(a, b)| bits(*a) == bits(*b))
            });
            if !duplicate {
                held.push(block);
            }
        }
        touched.sort_unstable();
        touched.dedup();

        for index in touched {
            let blocks = self.blocks.get_mut(&index).expect("touched point");
            blocks.sort_by_key(|b| b.first_iteration);
            match replay_blocks(index, blocks, &stop, round_size)? {
                PointReplay::Complete {
                    samples,
                    stopped_early,
                } => {
                    // The same aggregation as the unsharded `run_point` —
                    // identical samples yield identical statistics, bit
                    // for bit. (A speculative block arriving after the
                    // point completed replays to the same row.)
                    let mc = McResult::from_samples(samples);
                    let head = &blocks[0];
                    if let Some((cache, ctx)) = &self.publish {
                        cache.put(
                            &ctx.key(&head.topology, &head.labels),
                            crate::rowcache::CachedPoint {
                                topology: head.topology.clone(),
                                labels: head.labels.clone(),
                                samples: mc.samples.clone(),
                                stopped_early,
                            },
                        );
                    }
                    self.done.insert(
                        index,
                        SweepRow {
                            topology: head.topology.clone(),
                            labels: head.labels.clone(),
                            mean: mc.mean,
                            std_dev: mc.std_dev,
                            moe95: mc.margin_of_error_95(),
                            iterations: mc.samples.len(),
                            stopped_early,
                        },
                    );
                }
                PointReplay::Pending(_) => {}
            }
        }

        let mut out = Vec::new();
        while let Some(row) = self.done.get(&self.emitted) {
            out.push((self.emitted, row.clone()));
            self.emitted += 1;
        }
        self.partials_metric.inc();
        self.rows_metric.add(out.len() as u64);
        // Finalized rows not yet emitted are blocked behind a gap.
        self.pending_metric
            .set((self.done.len() - self.emitted) as i64);
        Ok(out)
    }

    /// Validates that the fed partials cover the whole queue and returns
    /// the final [`EngineReport`] — byte-for-byte identical (through
    /// [`crate::report::to_json`] / [`crate::report::to_csv`]) to the
    /// unsharded run and to [`merge_partials`] over the same set.
    ///
    /// # Errors
    ///
    /// - [`MergeError::Format`] when no partial was ever pushed;
    /// - [`MergeError::Coverage`] when a point is uncovered, gapped, or
    ///   stops short of the cap with the stop rule unsatisfied.
    pub fn finalize(self) -> Result<EngineReport, MergeError> {
        let meta = self
            .meta
            .ok_or_else(|| MergeError::Format("no partial reports to merge".into()))?;
        if let Some(missing) = (0..meta.total_points).find(|i| !self.blocks.contains_key(i)) {
            return Err(MergeError::Coverage(format!(
                "point {missing} is covered by no partial"
            )));
        }
        for (index, blocks) in &self.blocks {
            if self.done.contains_key(index) {
                continue;
            }
            match replay_blocks(*index, blocks, &meta.stop_rule(), meta.round_size)? {
                PointReplay::Pending(e) => return Err(e),
                // push() finalizes every decidable point eagerly.
                PointReplay::Complete { .. } => unreachable!("complete point not in done"),
            }
        }
        Ok(EngineReport {
            scenario: meta.scenario,
            topologies: meta.topologies,
            rows: self.done.into_values().collect(),
        })
    }
}

/// Merges a set of partial reports into the final [`EngineReport`].
///
/// Accepts **any** set of partials whose blocks exactly cover the queue —
/// typically the `k` outputs of one `--shards k` plan, but e.g. a re-run
/// of one failed shard under a different split merges equally well. The
/// result is byte-for-byte identical (through [`crate::report::to_json`] /
/// [`crate::report::to_csv`]) to the unsharded run: per-point statistics
/// are recomputed from the recombined raw samples with the same
/// aggregation ([`McResult::from_samples`]), and adaptive stopping is
/// replayed in iteration order (see the module docs).
///
/// This is the batch wrapper over [`MergeState`]; order of `partials`
/// never affects the result.
///
/// # Errors
///
/// - [`MergeError::Mismatch`] when partials carry different queue
///   fingerprints, budgets, topology summaries, or point metadata;
/// - [`MergeError::Coverage`] on gaps, overlaps, or missing points;
/// - [`MergeError::Corrupt`] when a block's Welford state disagrees with
///   its samples or a block oversteps the iteration cap;
/// - [`MergeError::Format`] when called with no partials.
pub fn merge_partials(partials: &[PartialReport]) -> Result<EngineReport, MergeError> {
    let mut state = MergeState::new();
    for p in partials {
        state.push(p.clone())?;
    }
    state.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive (not sampled) planner coverage check for small spaces.
    #[test]
    fn plan_covers_every_round_exactly_once() {
        let spaces: Vec<Vec<usize>> = vec![
            vec![1],
            vec![4, 4, 4],
            vec![1, 7, 2, 5, 1, 1],
            vec![3; 10],
            vec![32],
        ];
        for rounds_per_point in spaces {
            let total: usize = rounds_per_point.iter().sum();
            for k in 1..=total + 3 {
                let mut seen = vec![0u32; total];
                for i in 0..k {
                    for b in plan_shard(&rounds_per_point, k, i) {
                        assert!(b.rounds > 0);
                        let base: usize = rounds_per_point[..b.point].iter().sum();
                        for r in 0..b.rounds {
                            seen[base + b.first_round + r] += 1;
                        }
                        assert!(
                            b.first_round + b.rounds <= rounds_per_point[b.point],
                            "block overruns its point"
                        );
                    }
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "{rounds_per_point:?} k={k}: coverage {seen:?}"
                );
            }
        }
    }

    #[test]
    fn plan_is_balanced_and_contiguous() {
        let rounds = vec![5usize; 8]; // 40 units
        for k in [1, 2, 3, 7, 40] {
            let sizes: Vec<usize> = (0..k)
                .map(|i| plan_shard(&rounds, k, i).iter().map(|b| b.rounds).sum())
                .collect();
            let lo = *sizes.iter().min().unwrap();
            let hi = *sizes.iter().max().unwrap();
            assert!(hi - lo <= 1, "k={k}: unbalanced {sizes:?}");
        }
    }

    #[test]
    fn plan_with_more_shards_than_rounds_leaves_empty_shards() {
        let rounds = vec![2usize, 1];
        let plans: Vec<_> = (0..7).map(|i| plan_shard(&rounds, 7, i)).collect();
        let non_empty = plans.iter().filter(|p| !p.is_empty()).count();
        assert_eq!(non_empty, 3, "3 units → exactly 3 working shards");
    }

    #[test]
    fn weighted_plan_uniform_weights_match_the_equal_plan() {
        let rounds = vec![1usize, 7, 2, 5, 1, 1];
        for k in 1..=8 {
            for w in [1u64, 3, 1_000_000_007] {
                let weights = vec![w; k];
                for i in 0..k {
                    assert_eq!(
                        plan_shard_weighted(&rounds, &weights, i),
                        plan_shard(&rounds, k, i),
                        "k={k} w={w} i={i}: uniform weights must degenerate exactly"
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_plan_handles_zeros_skews_and_tiny_spaces() {
        let rounds = vec![4usize, 4, 4]; // 12 units
                                         // A zero-weight peer receives an empty span; the rest partition.
        let weights = [2u64, 0, 1];
        assert_eq!(weighted_span(&rounds, &weights, 0), (0, 8));
        assert_eq!(weighted_span(&rounds, &weights, 1), (8, 8));
        assert_eq!(weighted_span(&rounds, &weights, 2), (8, 12));
        assert!(plan_shard_weighted(&rounds, &weights, 1).is_empty());

        // All-zero weights carry no information: equal-plan fallback.
        for i in 0..3 {
            assert_eq!(
                plan_shard_weighted(&rounds, &[0, 0, 0], i),
                plan_shard(&rounds, 3, i)
            );
        }

        // Huge skews stay exact (u128 products cannot overflow u64 sums):
        // floor arithmetic still hands the light peer its last unit.
        let skew = [u64::MAX, 1];
        assert_eq!(weighted_span(&rounds, &skew, 0), (0, 11));
        assert_eq!(weighted_span(&rounds, &skew, 1), (11, 12));

        // More peers than rounds: spans still partition [0, total).
        let tiny = vec![1usize, 1];
        let weights = [5u64, 1, 1, 1, 1];
        let mut cursor = 0;
        for i in 0..weights.len() {
            let (lo, hi) = weighted_span(&tiny, &weights, i);
            assert_eq!(lo, cursor, "spans must be contiguous");
            assert!(hi >= lo);
            cursor = hi;
        }
        assert_eq!(cursor, 2, "spans must end at the total");
    }

    #[test]
    fn plan_span_slices_any_contiguous_range() {
        let rounds = vec![1usize, 7, 2];
        let total = 10;
        for lo in 0..=total {
            for hi in lo..=total {
                let blocks = plan_span(&rounds, lo, hi);
                let covered: usize = blocks.iter().map(|b| b.rounds).sum();
                assert_eq!(covered, hi - lo, "span [{lo},{hi}) unit count");
                // Splitting a span at any midpoint re-plans to the same
                // coverage — the sub-slicing property stealing relies on.
                let mid = lo + (hi - lo) / 2;
                let rejoined: usize = plan_span(&rounds, lo, mid)
                    .iter()
                    .chain(plan_span(&rounds, mid, hi).iter())
                    .map(|b| b.rounds)
                    .sum();
                assert_eq!(rejoined, covered);
            }
        }
    }

    #[test]
    fn queue_fingerprint_tracks_the_spec() {
        let base = ScenarioSpec::default();
        let fp = queue_fingerprint(&base);
        assert_eq!(fp.len(), 32);
        assert_eq!(fp, queue_fingerprint(&base.clone()), "deterministic");
        let mut other = base.clone();
        other.seed ^= 1;
        assert_ne!(fp, queue_fingerprint(&other), "seed changes the queue");
        let mut renamed = base.clone();
        renamed.name = "other".into();
        assert_ne!(
            fp,
            queue_fingerprint(&renamed),
            "name is part of the report identity"
        );
    }

    fn block(index: usize, first_iteration: usize, samples: Vec<f64>) -> PartialPoint {
        let mut welford = Welford::new();
        for &s in &samples {
            welford.push(s);
        }
        PartialPoint {
            index,
            topology: "clements".into(),
            labels: vec![("sigma".into(), "0.05".into())],
            seed: 7,
            first_iteration,
            stopped_early: false,
            welford,
            samples,
        }
    }

    fn partial(points: Vec<PartialPoint>) -> PartialReport {
        PartialReport {
            scenario: "t".into(),
            queue_fingerprint: "00".repeat(16),
            kernel: KernelProfile::Reference,
            shards: 2,
            shard_index: 0,
            total_points: 1,
            round_size: 2,
            iterations: 6,
            min_iterations: 6,
            target_moe: 0.0,
            topologies: vec![TopologySummary {
                topology: "clements".into(),
                software_accuracy: 0.75,
                nominal_accuracy: 0.5,
            }],
            points,
        }
    }

    #[test]
    fn merge_recombines_split_points() {
        let a = partial(vec![block(0, 0, vec![0.5, 0.75])]);
        let b = partial(vec![block(0, 2, vec![0.25, 1.0, 0.5, 0.75])]);
        let report = merge_partials(&[a, b]).unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].iterations, 6);
        let mc = McResult::from_samples(vec![0.5, 0.75, 0.25, 1.0, 0.5, 0.75]);
        assert_eq!(report.rows[0].mean.to_bits(), mc.mean.to_bits());
        assert_eq!(report.rows[0].std_dev.to_bits(), mc.std_dev.to_bits());
        assert!(!report.rows[0].stopped_early);
    }

    #[test]
    fn merge_rejects_gaps_overlaps_and_missing_points() {
        // Gap: iterations 2..4 missing.
        let gap = [
            partial(vec![block(0, 0, vec![0.5, 0.75])]),
            partial(vec![block(0, 4, vec![0.5, 0.75])]),
        ];
        assert!(matches!(merge_partials(&gap), Err(MergeError::Coverage(_))));

        // Conflicting overlap: iterations 0..2 covered twice with
        // different bits — one of the partials must be corrupt.
        let conflict = [
            partial(vec![block(0, 0, vec![0.5, 0.75, 0.25, 1.0])]),
            partial(vec![
                block(0, 0, vec![0.5, 0.875]),
                block(0, 4, vec![0.5, 0.75]),
            ]),
        ];
        assert!(matches!(
            merge_partials(&conflict),
            Err(MergeError::Corrupt(_))
        ));

        // Missing point: total_points says 1 but nothing covers it.
        let missing = [partial(vec![])];
        assert!(matches!(
            merge_partials(&missing),
            Err(MergeError::Coverage(_))
        ));

        // Short coverage with no stop rule satisfied.
        let short = [partial(vec![block(0, 0, vec![0.5, 0.75])])];
        assert!(matches!(
            merge_partials(&short),
            Err(MergeError::Coverage(_))
        ));
    }

    #[test]
    fn merge_rejects_foreign_fingerprints() {
        let a = partial(vec![block(0, 0, vec![0.5, 0.75])]);
        let mut b = partial(vec![block(0, 2, vec![0.25, 1.0, 0.5, 0.75])]);
        b.queue_fingerprint = "ff".repeat(16);
        assert!(matches!(
            merge_partials(&[a, b]),
            Err(MergeError::Mismatch(_))
        ));
    }

    #[test]
    fn merge_rejects_mixed_kernel_profiles() {
        // Same (forged) fingerprint, differing kernel: the typed Mismatch
        // must fire on the profile before anything else can mask it.
        let a = partial(vec![block(0, 0, vec![0.5, 0.75])]);
        let mut b = partial(vec![block(0, 2, vec![0.25, 1.0, 0.5, 0.75])]);
        b.kernel = KernelProfile::Fma;
        let err = merge_partials(&[a, b]).unwrap_err();
        match err {
            MergeError::Mismatch(msg) => {
                assert!(msg.contains("kernel profile"), "untyped message: {msg}")
            }
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn kernel_profile_survives_json_round_trip() {
        let mut p = partial(vec![block(0, 0, vec![0.5, 0.75])]);
        p.kernel = KernelProfile::Fma;
        let parsed = PartialReport::parse(&p.to_json()).unwrap();
        assert_eq!(parsed.kernel, KernelProfile::Fma);

        // Reference partials omit the field entirely — their bytes are the
        // historical format, and absent means Reference on parse.
        let r = partial(vec![block(0, 0, vec![0.5, 0.75])]);
        let json = r.to_json();
        assert!(!json.contains("\"kernel\""), "reference bytes changed");
        assert_eq!(
            PartialReport::parse(&json).unwrap().kernel,
            KernelProfile::Reference
        );

        // An unknown profile name is a Format error, not a silent default.
        let bad = json.replace(
            "\"queue_fingerprint\"",
            "\"kernel\": \"turbo\",\n  \"queue_fingerprint\"",
        );
        assert!(matches!(
            PartialReport::parse(&bad),
            Err(MergeError::Format(_))
        ));
    }

    #[test]
    fn fingerprints_are_profile_scoped() {
        let spec = crate::presets::fig4(&crate::spec::RunScale::tiny());
        let reference = queue_fingerprint_with(&spec, KernelProfile::Reference);
        let fma = queue_fingerprint_with(&spec, KernelProfile::Fma);
        assert_ne!(reference, fma, "profiles must occupy disjoint spaces");
        assert_eq!(
            reference,
            queue_fingerprint(&spec),
            "reference fingerprints must be unchanged"
        );
    }

    #[test]
    fn merge_rejects_tampered_samples() {
        let a = partial(vec![block(0, 0, vec![0.5, 0.75])]);
        let mut b = partial(vec![block(0, 2, vec![0.25, 1.0, 0.5, 0.75])]);
        b.points[0].samples[1] = 0.9999; // Welford state now disagrees
        assert!(matches!(
            merge_partials(&[a, b]),
            Err(MergeError::Corrupt(_))
        ));
    }

    #[test]
    fn merge_replays_adaptive_stops_and_discards_speculation() {
        // Zero-variance samples satisfy any target at the first legal
        // boundary (min_iterations = 2 → boundary 2); blocks beyond are
        // speculative and must be discarded, gaps past the stop are fine.
        let mk = |points| {
            let mut p = partial(points);
            p.iterations = 8;
            p.min_iterations = 2;
            p.target_moe = 0.01;
            p
        };
        let a = mk(vec![block(0, 0, vec![0.5, 0.5])]);
        let b = mk(vec![block(0, 6, vec![0.5, 0.5])]); // speculative tail, gap before it
        let report = merge_partials(&[a, b]).unwrap();
        assert_eq!(report.rows[0].iterations, 2);
        assert!(report.rows[0].stopped_early);

        // The same stream mid-block: stop fires inside a block.
        let c = mk(vec![block(0, 0, vec![0.5, 0.5, 0.5, 0.6])]);
        let report = merge_partials(&[c]).unwrap();
        assert_eq!(report.rows[0].iterations, 2, "stop fires mid-block");
    }

    #[test]
    fn merge_state_emits_completed_prefix_rows_in_order() {
        // Two points, 6 fixed iterations each, round_size 2. Partial A
        // covers the tail of point 0 and all of point 1; the prefix of
        // point 0 arrives last.
        let mk = |points: Vec<PartialPoint>| {
            let mut p = partial(points);
            p.total_points = 2;
            p
        };
        let tail = mk(vec![
            block(0, 2, vec![0.25, 1.0, 0.5, 0.75]),
            block(1, 0, vec![0.5; 6]),
        ]);
        let head = mk(vec![block(0, 0, vec![0.5, 0.75])]);

        let mut st = MergeState::new();
        // Point 1 completes immediately, but row 0 is still pending — no
        // prefix rows yet.
        let rows = st.push(tail).unwrap();
        assert!(rows.is_empty(), "prefix must wait for point 0");
        assert_eq!(st.rows_emitted(), 0);
        assert!(!st.is_complete());
        // The head plugs the gap: both rows emit, in index order.
        let rows = st.push(head).unwrap();
        assert_eq!(rows.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 1]);
        assert!(st.is_complete());
        let report = st.finalize().unwrap();
        assert_eq!(report.rows.len(), 2);
        for ((i, streamed), final_row) in rows.iter().zip(&report.rows) {
            assert_eq!(streamed, &report.rows[*i]);
            assert_eq!(streamed.mean.to_bits(), final_row.mean.to_bits());
        }
    }

    #[test]
    fn merge_state_surfaces_gaps_only_at_finalize() {
        let mut st = MergeState::new();
        st.push(partial(vec![block(0, 4, vec![0.5, 0.75])]))
            .expect("a gapped point is pending, not an error");
        let err = st.finalize().expect_err("gap must fail finalize");
        assert!(matches!(err, MergeError::Coverage(_)), "{err}");

        let empty = MergeState::new();
        assert!(matches!(empty.finalize(), Err(MergeError::Format(_))));
    }

    #[test]
    fn merge_state_rejects_conflicting_overlap_at_push_time() {
        let mut st = MergeState::new();
        st.push(partial(vec![block(0, 0, vec![0.5, 0.75, 0.25, 1.0])]))
            .unwrap();
        let err = st
            .push(partial(vec![block(0, 2, vec![0.375, 1.0, 0.5, 0.75])]))
            .expect_err("an overlap disagreeing bit-for-bit must fail immediately");
        assert!(matches!(err, MergeError::Corrupt(_)), "{err}");
    }

    #[test]
    fn merge_deduplicates_bit_identical_overlaps() {
        // A speculative re-dispatch (work stealing) re-covers iterations
        // 2..4 with the exact bits the first dispatch produced; the
        // overlap merges and the row matches the disjoint recombination.
        let reference = merge_partials(&[
            partial(vec![block(0, 0, vec![0.5, 0.75])]),
            partial(vec![block(0, 2, vec![0.25, 1.0, 0.5, 0.75])]),
        ])
        .unwrap();

        let mut st = MergeState::new();
        st.push(partial(vec![block(0, 0, vec![0.5, 0.75, 0.25, 1.0])]))
            .unwrap();
        let rows = st
            .push(partial(vec![block(0, 2, vec![0.25, 1.0, 0.5, 0.75])]))
            .expect("bit-identical overlap must be deduplicated");
        assert_eq!(rows.len(), 1, "the overlap completed the point");
        let report = st.finalize().unwrap();
        assert_eq!(report.rows[0].iterations, 6);
        assert_eq!(
            report.rows[0].mean.to_bits(),
            reference.rows[0].mean.to_bits(),
            "deduplicated overlap must replay to the disjoint merge's bits"
        );

        // An exact duplicate of a whole partial is likewise harmless.
        let dup = partial(vec![block(0, 0, vec![0.5, 0.75, 0.25, 1.0])]);
        let mut st = MergeState::new();
        st.push(dup.clone()).unwrap();
        st.push(dup).unwrap();
        st.push(partial(vec![block(0, 4, vec![0.5, 0.75])]))
            .unwrap();
        let report = st.finalize().unwrap();
        assert_eq!(
            report.rows[0].mean.to_bits(),
            reference.rows[0].mean.to_bits()
        );
    }

    #[test]
    fn partial_report_json_round_trips_bit_exactly() {
        let mut p = partial(vec![
            block(0, 0, vec![0.1, 1.0 / 3.0]),
            block(0, 2, vec![f64::MIN_POSITIVE, 0.49999999999999994]),
        ]);
        p.scenario = "weird \"name\"\twith\nescapes".into();
        p.target_moe = 0.0334;
        p.points[0].seed = u64::MAX - 3;
        let text = p.to_json();
        let back = PartialReport::parse(&text).unwrap();
        assert_eq!(back.scenario, p.scenario);
        assert_eq!(back.queue_fingerprint, p.queue_fingerprint);
        assert_eq!(back.target_moe.to_bits(), p.target_moe.to_bits());
        assert_eq!(back.points.len(), p.points.len());
        for (x, y) in back.points.iter().zip(&p.points) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.labels, y.labels);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.first_iteration, y.first_iteration);
            assert_eq!(x.welford.parts().0, y.welford.parts().0);
            assert_eq!(x.welford.parts().1.to_bits(), y.welford.parts().1.to_bits());
            let xb: Vec<u64> = x.samples.iter().map(|s| s.to_bits()).collect();
            let yb: Vec<u64> = y.samples.iter().map(|s| s.to_bits()).collect();
            assert_eq!(xb, yb, "samples must survive JSON bit-exactly");
        }
        // And the re-serialization is byte-stable.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(matches!(
            PartialReport::parse("{}"),
            Err(MergeError::Format(_))
        ));
        assert!(matches!(
            PartialReport::parse("not json"),
            Err(MergeError::Format(_))
        ));
        let wrong_version = partial(vec![])
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        assert!(matches!(
            PartialReport::parse(&wrong_version),
            Err(MergeError::Format(_))
        ));
    }
}
