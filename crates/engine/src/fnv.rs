//! Crate-shared FNV-1a 64-bit hashing.
//!
//! One hash loop feeds three unrelated-looking consumers — the per-point
//! seed derivation in [`crate::queue`], the training-fingerprint key and
//! the cache-file checksum in [`crate::cache`] — so the loop lives here
//! once. FNV-1a is deliberately simple and **non-cryptographic**: every
//! consumer that needs integrity pairs it with a semantic check (the
//! fingerprint stores and re-verifies its canonical string; the cache
//! codec bounds every count it reads).

/// The standard FNV-1a 64-bit offset basis.
pub(crate) const FNV_BASIS: u64 = 0xcbf29ce484222325;

/// A streaming FNV-1a 64-bit hasher (allocation-free).
pub(crate) struct Fnv1a64(u64);

impl Fnv1a64 {
    /// A hasher seeded with `basis` (usually [`FNV_BASIS`]).
    pub(crate) fn with_basis(basis: u64) -> Self {
        Self(basis)
    }

    /// Feeds bytes into the hash; order-sensitive, chunking-insensitive.
    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// The current hash value.
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte string.
pub(crate) fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = Fnv1a64::with_basis(basis);
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b"", FNV_BASIS), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a", FNV_BASIS), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar", FNV_BASIS), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot_regardless_of_chunking() {
        let data = b"mode=both;sigma=0.05;";
        let mut h = Fnv1a64::with_basis(FNV_BASIS);
        for chunk in data.chunks(3) {
            h.write(chunk);
        }
        assert_eq!(h.finish(), fnv1a64(data, FNV_BASIS));
    }
}
