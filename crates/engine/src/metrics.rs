//! A dependency-free metrics registry: atomic counters, gauges, and
//! fixed-bucket histograms, rendered in the Prometheus text exposition
//! format.
//!
//! Every instrument is a cheap cloneable handle around an `Arc`'d atomic;
//! recording is a relaxed atomic add — safe to call from the hottest
//! paths the engine has. A [`MetricsRegistry`] owns the catalog (name,
//! help text, type, label sets) and renders a scrape; handles stay valid
//! for the life of the process regardless of which registry (if any)
//! they are registered in, so library types like
//! [`crate::cache::ContextCache`] can own their counters privately and
//! *adopt* them into a server's registry later — the `/cache/stats`
//! JSON and the `/metrics` exposition then read the **same** atomics,
//! derived rather than parallel.
//!
//! Two registries matter in practice:
//!
//! - [`global()`] — the process-wide registry the CLI uses
//!   (`spnn run --stats` prints its phase table from it); it is the
//!   default target of [`crate::runner::EngineConfig::metrics`].
//! - a per-[`crate::serve::Server`] registry, created at bind time so
//!   embedded or test servers never share counters; `GET /metrics`
//!   renders it.
//!
//! Determinism: instruments read clocks and observe byte counts but
//! nothing in the engine ever reads a metric back into computation —
//! reports stay bit-identical with metrics on, off, or scraped
//! mid-run (CI-gated, see `docs/observability.md`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Default histogram bucket upper bounds for durations, in seconds:
/// 1 ms … 60 s, roughly logarithmic. A `+Inf` bucket is always implied.
pub const DURATION_BUCKETS: &[f64] = &[
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
];

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic; a counter works standalone (unregistered) or registered in
/// any number of registries.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (in-flight requests,
/// pending merge depth). Integer-valued; cloning shares the atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A float-valued gauge — for derived values like latency quantiles that
/// don't fit the integer [`Gauge`]. Stores the `f64` as bits in an
/// `AtomicU64`; cloning shares the atomic. Renders as a Prometheus
/// `gauge`.
#[derive(Debug, Clone)]
pub struct FloatGauge {
    bits: Arc<AtomicU64>,
}

impl Default for FloatGauge {
    fn default() -> Self {
        FloatGauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl FloatGauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Bucket upper bounds, strictly increasing and finite; the implied
    /// `+Inf` bucket is `count` itself.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (non-cumulative; rendering
    /// accumulates them into Prometheus' cumulative `le` form).
    buckets: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits (CAS loop —
    /// observations are rare enough that contention is irrelevant).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram. Cloning shares the underlying buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A fresh, unregistered histogram over `bounds` (upper bucket
    /// bounds in increasing order; an `+Inf` bucket is implicit).
    /// Non-finite or unsorted bounds are filtered/sorted defensively.
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let buckets = bounds.iter().map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistogramCore {
                bounds,
                buckets,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let c = &self.core;
        if let Some(i) = c.bounds.iter().position(|&b| v <= b) {
            c.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        c.count.fetch_add(1, Ordering::Relaxed);
        let mut old = c.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            match c
                .sum_bits
                .compare_exchange_weak(old, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => old = actual,
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative `(upper_bound, count)` pairs, excluding the implied
    /// `+Inf` bucket (whose cumulative count is [`Histogram::count`]).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        self.core
            .bounds
            .iter()
            .zip(&self.core.buckets)
            .map(|(&b, c)| {
                acc += c.load(Ordering::Relaxed);
                (b, acc)
            })
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(DURATION_BUCKETS)
    }
}

/// What kind of instrument a metric family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing ([`Counter`]).
    Counter,
    /// Up-and-down value ([`Gauge`]).
    Gauge,
    /// Up-and-down float value ([`FloatGauge`]); renders as a Prometheus
    /// `gauge`.
    FloatGauge,
    /// Fixed-bucket distribution ([`Histogram`]).
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge | MetricKind::FloatGauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    FloatGauge(FloatGauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Series keyed by their canonical (sorted, rendered) label set.
    series: BTreeMap<String, (Vec<(String, String)>, Instrument)>,
}

/// A point-in-time reading of one metric series, as returned by
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone)]
pub struct SeriesReading {
    /// Metric family name (e.g. `spnn_requests_total`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The value read.
    pub value: Reading,
}

/// The value half of a [`SeriesReading`].
#[derive(Debug, Clone)]
pub enum Reading {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Float gauge value.
    Float(f64),
    /// Histogram state: cumulative `(le, count)` buckets (excluding
    /// `+Inf`), sum, and total count.
    Histogram {
        /// Cumulative buckets.
        buckets: Vec<(f64, u64)>,
        /// Sum of observations.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

/// The metric catalog: families of counters/gauges/histograms with help
/// text, rendered with [`MetricsRegistry::render`]. Cloning is cheap and
/// shares the catalog (handles registered through any clone appear in
/// all).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: Arc<Mutex<BTreeMap<String, Family>>>,
}

/// The process-wide registry — the default target of
/// [`crate::runner::EngineConfig::metrics`] and the source of
/// `spnn run --stats`.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter `name{labels}`, created (and registered) on first
    /// use; later calls with the same name and labels return a handle to
    /// the same atomic. A name previously registered as a different kind
    /// yields a fresh **unregistered** handle instead of corrupting the
    /// catalog (a programmer error worth surviving in production).
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, labels, MetricKind::Counter, || {
            Instrument::Counter(Counter::new())
        }) {
            Instrument::Counter(c) => c,
            _ => Counter::new(),
        }
    }

    /// The gauge `name{labels}` (see [`MetricsRegistry::counter`] for
    /// the get-or-create semantics).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, labels, MetricKind::Gauge, || {
            Instrument::Gauge(Gauge::new())
        }) {
            Instrument::Gauge(g) => g,
            _ => Gauge::new(),
        }
    }

    /// The float gauge `name{labels}` (see [`MetricsRegistry::counter`]
    /// for the get-or-create semantics).
    pub fn float_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> FloatGauge {
        match self.instrument(name, help, labels, MetricKind::FloatGauge, || {
            Instrument::FloatGauge(FloatGauge::new())
        }) {
            Instrument::FloatGauge(g) => g,
            _ => FloatGauge::new(),
        }
    }

    /// The histogram `name{labels}` over `buckets` (see
    /// [`MetricsRegistry::counter`] for the get-or-create semantics;
    /// `buckets` only matters at creation).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[f64],
    ) -> Histogram {
        match self.instrument(name, help, labels, MetricKind::Histogram, || {
            Instrument::Histogram(Histogram::new(buckets))
        }) {
            Instrument::Histogram(h) => h,
            _ => Histogram::new(buckets),
        }
    }

    /// Registers an **existing** counter handle as `name{labels}`,
    /// replacing any series previously registered under the same name
    /// and labels. This is how a library type that owns its counters
    /// (e.g. [`crate::cache::ContextCache`]) appears in a server's
    /// scrape without double-counting: the registry reads the same
    /// atomic the owner increments.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: &Counter,
    ) {
        self.register(name, help, labels, MetricKind::Counter, || {
            Instrument::Counter(counter.clone())
        });
    }

    /// Registers an existing gauge handle (see
    /// [`MetricsRegistry::register_counter`]).
    pub fn register_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], gauge: &Gauge) {
        self.register(name, help, labels, MetricKind::Gauge, || {
            Instrument::Gauge(gauge.clone())
        });
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let mut families = self.families.lock().expect("metrics registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        if family.kind != kind {
            return make();
        }
        let owned = owned_labels(labels);
        let key = label_key(&owned);
        family
            .series
            .entry(key)
            .or_insert_with(|| (owned, make()))
            .1
            .clone()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Instrument,
    ) {
        let mut families = self.families.lock().expect("metrics registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        if family.kind != kind {
            return;
        }
        let owned = owned_labels(labels);
        let key = label_key(&owned);
        family.series.insert(key, (owned, make()));
    }

    /// A point-in-time reading of every registered series, families and
    /// series in deterministic (sorted) order.
    pub fn snapshot(&self) -> Vec<SeriesReading> {
        let families = self.families.lock().expect("metrics registry lock");
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (labels, instrument) in family.series.values() {
                let value = match instrument {
                    Instrument::Counter(c) => Reading::Counter(c.get()),
                    Instrument::Gauge(g) => Reading::Gauge(g.get()),
                    Instrument::FloatGauge(g) => Reading::Float(g.get()),
                    Instrument::Histogram(h) => Reading::Histogram {
                        buckets: h.cumulative_buckets(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                };
                out.push(SeriesReading {
                    name: name.clone(),
                    labels: labels.clone(),
                    value,
                });
            }
        }
        out
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` comments, one sample line per series;
    /// histograms expand into cumulative `_bucket{le=…}`, `_sum`, and
    /// `_count` lines). Families and series appear in sorted order, so
    /// the rendering is deterministic for a given state.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.exposition_name());
            for (labels, instrument) in family.series.values() {
                match instrument {
                    Instrument::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, &[]), c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, &[]), g.get());
                    }
                    Instrument::FloatGauge(g) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            render_labels(labels, &[]),
                            format_f64(g.get())
                        );
                    }
                    Instrument::Histogram(h) => {
                        for (bound, cum) in h.cumulative_buckets() {
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                render_labels(labels, &[("le", &format_f64(bound))]),
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            render_labels(labels, &[("le", "+Inf")]),
                            h.count()
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels, &[]),
                            format_f64(h.sum())
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels, &[]),
                            h.count()
                        );
                    }
                }
            }
        }
        out
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut owned: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    owned.sort();
    owned
}

fn label_key(labels: &[(String, String)]) -> String {
    let mut key = String::new();
    for (k, v) in labels {
        let _ = write!(key, "{k}\u{1}{v}\u{2}");
    }
    key
}

/// Renders `{k="v",…}` with `extra` pairs appended (for the histogram
/// `le` label); empty label sets render as nothing.
fn render_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    let mut push = |k: &str, v: &str, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    };
    for (k, v) in labels {
        push(k, v, &mut out);
    }
    for (k, v) in extra {
        push(k, v, &mut out);
    }
    out.push('}');
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-round-trip decimal for a finite `f64` (Rust's `{}`), which
/// is what the exposition format expects for `le` bounds and sums.
fn format_f64(v: f64) -> String {
    format!("{v}")
}

/// Estimates the `q`-quantile (0 ≤ q ≤ 1) of a histogram from its
/// cumulative `(upper_bound, count)` buckets and total `count`, using
/// Prometheus' `histogram_quantile` linear interpolation: find the first
/// bucket whose cumulative count reaches rank `q × count`, then
/// interpolate within it assuming uniform distribution. Observations
/// past the last finite bound clamp to that bound (there is no upper
/// edge to interpolate toward). An empty histogram yields `0.0`.
///
/// This feeds the alerting-grade `p50/p95/p99` gauges the server derives
/// from its request-duration histograms at scrape time — a convenience
/// view; the histograms themselves remain the source of truth.
pub fn histogram_quantile(buckets: &[(f64, u64)], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * count as f64;
    let mut prev_bound = 0.0;
    let mut prev_cum = 0u64;
    for &(bound, cum) in buckets {
        if (cum as f64) >= rank {
            let in_bucket = (cum - prev_cum) as f64;
            if in_bucket <= 0.0 {
                return bound;
            }
            let fraction = ((rank - prev_cum as f64) / in_bucket).clamp(0.0, 1.0);
            return prev_bound + (bound - prev_bound) * fraction;
        }
        prev_bound = bound;
        prev_cum = cum;
    }
    // Rank falls in the implied +Inf bucket: clamp to the last finite
    // bound (Prometheus does the same).
    buckets.last().map_or(0.0, |&(bound, _)| bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let r = MetricsRegistry::new();
        let a = r.counter("spnn_test_total", "help", &[("k", "v")]);
        let b = r.counter("spnn_test_total", "help", &[("k", "v")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels are a different series.
        let c = r.counter("spnn_test_total", "help", &[("k", "w")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn registered_external_counter_is_the_same_atomic() {
        let r = MetricsRegistry::new();
        let owned = Counter::new();
        owned.add(5);
        r.register_counter("spnn_owned_total", "help", &[], &owned);
        owned.inc();
        let rendered = r.render();
        assert!(rendered.contains("spnn_owned_total 6"), "{rendered}");
    }

    #[test]
    fn histogram_buckets_accumulate() {
        let h = Histogram::new(&[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 56.05).abs() < 1e-9);
        assert_eq!(h.cumulative_buckets(), vec![(0.1, 1), (1.0, 3), (10.0, 4)]);
    }

    #[test]
    fn render_is_valid_exposition_shape() {
        let r = MetricsRegistry::new();
        r.counter(
            "spnn_requests_total",
            "Requests served.",
            &[("route", "/run")],
        )
        .inc();
        r.gauge("spnn_in_flight", "In-flight requests.", &[]).set(2);
        r.histogram("spnn_latency_seconds", "Latency.", &[], &[0.5, 1.0])
            .observe(0.7);
        let text = r.render();
        assert!(text.contains("# TYPE spnn_requests_total counter"));
        assert!(text.contains("spnn_requests_total{route=\"/run\"} 1"));
        assert!(text.contains("spnn_in_flight 2"));
        assert!(text.contains("spnn_latency_seconds_bucket{le=\"0.5\"} 0"));
        assert!(text.contains("spnn_latency_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("spnn_latency_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("spnn_latency_seconds_sum 0.7"));
        assert!(text.contains("spnn_latency_seconds_count 1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty() && !value.is_empty(), "{line:?}");
        }
    }

    #[test]
    fn kind_mismatch_survives_without_registering() {
        let r = MetricsRegistry::new();
        r.counter("spnn_conflict", "help", &[]).inc();
        // Asking for the same name as a gauge yields a detached handle.
        let g = r.gauge("spnn_conflict", "help", &[]);
        g.set(7);
        assert!(r.render().contains("spnn_conflict 1"));
    }

    #[test]
    fn float_gauge_renders_as_gauge() {
        let r = MetricsRegistry::new();
        let g = r.float_gauge("spnn_latency_p99", "p99 latency.", &[("route", "/run")]);
        g.set(0.125);
        let text = r.render();
        assert!(text.contains("# TYPE spnn_latency_p99 gauge"), "{text}");
        assert!(
            text.contains("spnn_latency_p99{route=\"/run\"} 0.125"),
            "{text}"
        );
        // Snapshot reads the same value.
        let snap = r.snapshot();
        let reading = snap
            .iter()
            .find(|s| s.name == "spnn_latency_p99")
            .expect("series");
        assert!(matches!(reading.value, Reading::Float(v) if (v - 0.125).abs() < 1e-12));
    }

    #[test]
    fn histogram_quantile_interpolates_linearly() {
        // 10 observations spread: 4 in (0, 0.1], 4 in (0.1, 1.0], 2 in (1.0, 10.0].
        let buckets = vec![(0.1, 4), (1.0, 8), (10.0, 10)];
        // p50 → rank 5, second bucket, 1 of 4 into [0.1, 1.0].
        let p50 = histogram_quantile(&buckets, 10, 0.5);
        assert!((p50 - (0.1 + 0.9 * 0.25)).abs() < 1e-12, "{p50}");
        // p100 clamps to the last bound reached.
        assert!((histogram_quantile(&buckets, 10, 1.0) - 10.0).abs() < 1e-12);
        // Rank inside the first bucket interpolates from zero.
        let p20 = histogram_quantile(&buckets, 10, 0.2);
        assert!((p20 - 0.05).abs() < 1e-12, "{p20}");
        // Empty histogram is 0; overflow past the last finite bound clamps.
        assert_eq!(histogram_quantile(&[], 0, 0.9), 0.0);
        assert!((histogram_quantile(&[(0.5, 1)], 4, 0.99) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter("spnn_esc_total", "h", &[("k", "a\"b\\c\nd")])
            .inc();
        let text = r.render();
        assert!(text.contains("{k=\"a\\\"b\\\\c\\nd\"}"), "{text}");
    }
}
