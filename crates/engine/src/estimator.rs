//! Streaming accuracy estimators and the adaptive stopping rule.
//!
//! The paper justifies its 1000-iteration count with a 95 %-confidence
//! margin-of-error argument (§III-D, "maximum margin of error … is
//! 6.27 %"). The engine turns that argument around: instead of always
//! paying the worst-case iteration count, each sweep point keeps a
//! [`Welford`] running mean/variance and stops as soon as its *measured*
//! margin of error undercuts the spec's target — at a deterministic round
//! boundary, so the result is independent of the worker-thread count.

/// Numerically stable streaming mean/variance (Welford 1962).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh estimator with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n > 1 {
            self.m2 / (self.n - 1) as f64
        } else {
            0.0
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// 95 % margin of error of the mean, `1.96·s/√n` — the paper's §III-D
    /// statistic. Infinite below two observations: with n < 2 the sample
    /// variance is undefined, and reporting 0 would let an adaptive stop
    /// rule "satisfy" any target off a single sample.
    pub fn margin_of_error_95(&self) -> f64 {
        if self.n < 2 {
            f64::INFINITY
        } else {
            1.96 * self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// The raw `(count, mean, m2)` state — the estimator's complete
    /// serializable form, used by the shard partial-report format
    /// ([`crate::shard`]) to carry per-point state across processes.
    pub fn parts(&self) -> (u64, f64, f64) {
        (self.n, self.mean, self.m2)
    }

    /// Rebuilds an estimator from [`Welford::parts`] output, bit-exactly.
    pub fn from_parts(n: u64, mean: f64, m2: f64) -> Self {
        Self { n, mean, m2 }
    }

    /// Combines two estimators over disjoint sample sets (Chan et al.'s
    /// parallel update). Statistically exact; note the combined state is
    /// *not* bit-identical to pushing the samples sequentially (floating
    /// point is non-associative), which is why the shard merge replays raw
    /// samples instead of merging states when bit-identity is required —
    /// this combine serves estimators whose raw samples are gone.
    pub fn merge(&self, other: &Welford) -> Welford {
        if self.n == 0 {
            return other.clone();
        }
        if other.n == 0 {
            return self.clone();
        }
        let n = self.n + other.n;
        let nf = n as f64;
        let d = other.mean - self.mean;
        Welford {
            n,
            mean: self.mean + d * (other.n as f64 / nf),
            m2: self.m2 + other.m2 + d * d * ((self.n as f64 * other.n as f64) / nf),
        }
    }
}

/// When to stop iterating on one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct StopRule {
    /// Hard iteration cap (the paper's fixed count when adaptivity is off).
    pub max_iterations: usize,
    /// Iterations that must complete before early termination is allowed —
    /// guards against a lucky low-variance start.
    pub min_iterations: usize,
    /// 95 % margin-of-error target; `0` disables early termination and the
    /// point always runs `max_iterations`.
    pub target_moe: f64,
}

impl StopRule {
    /// A fixed-count rule (no adaptivity), matching the seed's
    /// `mc_accuracy` behaviour.
    pub fn fixed(iterations: usize) -> Self {
        Self {
            max_iterations: iterations,
            min_iterations: iterations,
            target_moe: 0.0,
        }
    }

    /// An adaptive rule: stop once the 95 % margin of error is at or below
    /// `target_moe`, but not before `min_iterations` and never after
    /// `max_iterations`.
    pub fn adaptive(max_iterations: usize, min_iterations: usize, target_moe: f64) -> Self {
        Self {
            max_iterations,
            min_iterations: min_iterations.min(max_iterations),
            target_moe,
        }
    }

    /// `true` when the estimator's state satisfies the rule — callers must
    /// only consult this at deterministic (round) boundaries.
    pub fn should_stop(&self, est: &Welford) -> bool {
        let n = est.count() as usize;
        if n >= self.max_iterations {
            return true;
        }
        self.target_moe > 0.0
            && n >= self.min_iterations
            && est.margin_of_error_95() <= self.target_moe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_statistics() {
        let xs = [0.5, 0.7, 0.9, 0.2, 0.4, 0.8];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        assert!((w.mean() - mean).abs() < 1e-15);
        assert!((w.variance() - var).abs() < 1e-15);
        assert!((w.margin_of_error_95() - 1.96 * var.sqrt() / n.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn welford_edge_counts() {
        let mut w = Welford::new();
        assert_eq!(w.variance(), 0.0);
        assert!(w.margin_of_error_95().is_infinite());
        w.push(0.3);
        assert_eq!(w.count(), 1);
        assert_eq!(w.variance(), 0.0);
        // One sample carries no variance information — the margin of
        // error must not read as "converged".
        assert!(w.margin_of_error_95().is_infinite());
        w.push(0.3);
        assert_eq!(w.margin_of_error_95(), 0.0);
    }

    #[test]
    fn single_sample_never_satisfies_an_adaptive_rule() {
        let rule = StopRule::adaptive(100, 1, 0.5);
        let mut w = Welford::new();
        w.push(0.5);
        assert!(!rule.should_stop(&w), "n = 1 must not count as converged");
    }

    #[test]
    fn fixed_rule_ignores_moe() {
        let rule = StopRule::fixed(10);
        let mut w = Welford::new();
        for _ in 0..9 {
            w.push(0.5); // zero variance → moe 0
        }
        assert!(!rule.should_stop(&w), "fixed rule must run to the cap");
        w.push(0.5);
        assert!(rule.should_stop(&w));
    }

    #[test]
    fn adaptive_rule_respects_min_and_target() {
        let rule = StopRule::adaptive(1000, 8, 0.01);
        let mut w = Welford::new();
        for _ in 0..7 {
            w.push(0.5);
        }
        assert!(!rule.should_stop(&w), "below min_iterations");
        w.push(0.5);
        assert!(rule.should_stop(&w), "zero variance satisfies any target");

        // High variance keeps iterating.
        let mut noisy = Welford::new();
        for i in 0..20 {
            noisy.push(if i % 2 == 0 { 0.0 } else { 1.0 });
        }
        assert!(noisy.margin_of_error_95() > 0.01);
        assert!(!rule.should_stop(&noisy));
    }

    #[test]
    fn parts_round_trip_bit_exactly() {
        let mut w = Welford::new();
        for x in [0.25, 0.75, 0.5, 0.125] {
            w.push(x);
        }
        let (n, mean, m2) = w.parts();
        let back = Welford::from_parts(n, mean, m2);
        assert_eq!(back.count(), w.count());
        assert_eq!(back.mean().to_bits(), w.mean().to_bits());
        assert_eq!(back.variance().to_bits(), w.variance().to_bits());
    }

    #[test]
    fn merge_is_statistically_exact() {
        let xs: Vec<f64> = (0..37).map(|i| ((i * 17) % 11) as f64 * 0.09).collect();
        for split in [0, 1, 13, 36, 37] {
            let (mut a, mut b) = (Welford::new(), Welford::new());
            for &x in &xs[..split] {
                a.push(x);
            }
            for &x in &xs[split..] {
                b.push(x);
            }
            let merged = a.merge(&b);
            let mut seq = Welford::new();
            for &x in &xs {
                seq.push(x);
            }
            assert_eq!(merged.count(), seq.count());
            assert!((merged.mean() - seq.mean()).abs() < 1e-12);
            assert!((merged.variance() - seq.variance()).abs() < 1e-12);
        }
    }

    #[test]
    fn adaptive_rule_clamps_min_to_max() {
        let rule = StopRule::adaptive(5, 50, 0.01);
        assert_eq!(rule.min_iterations, 5);
        let mut w = Welford::new();
        for _ in 0..5 {
            w.push(0.3);
        }
        assert!(rule.should_stop(&w));
    }
}
