//! The Executor layer: one seam for local, child-process, and remote
//! shard execution — with merge-as-they-arrive streaming.
//!
//! PR 3 made shard partials a wire format and PR 4 gave the service a
//! streaming driver; this module is the piece that lets **one
//! coordinator drive many workers** without giving up the bit-identity
//! contract. Everything that used to be a bespoke driver (the CLI's
//! `--spawn` launcher, an in-process sharded run, a hand-rolled remote
//! fan-out) is now an implementation of one trait:
//!
//! - [`Executor`] — "run all `k` shards of this spec, hand me each
//!   [`PartialReport`] as it completes, in whatever order they finish."
//! - [`LocalExecutor`] — today's in-process threaded path: prepares the
//!   scenario **once** (training comes from the shared
//!   [`ContextCache`] — the pre-warm lives at this seam now) and runs
//!   every slice on its own thread.
//! - [`SpawnExecutor`] — the `spnn run --shards k --spawn` child-process
//!   launcher, moved out of the CLI into the library: canonical spec
//!   text in a scratch directory, cache pre-warmed by the parent, cores
//!   split across children.
//! - [`RemoteExecutor`] — `POST`s the canonical spec text plus the shard
//!   coordinates to worker `spnn serve` instances
//!   (`POST /shard?shards=k&index=i`, see [`crate::serve`]) over the
//!   dependency-free HTTP client in [`crate::http`]. A worker that
//!   fails — refused connection, mid-run crash, torn response — is
//!   retried on the next worker; the shard planner is deterministic, so
//!   any worker can recompute any slice.
//!
//! [`run_distributed`] is the single driver on top: it feeds arriving
//! partials into the incremental [`MergeState`] and emits the engine's
//! usual [`StreamEvent`]s the moment a row's coverage is decidable —
//! rows stream in prefix order from whichever shard finishes first, and
//! the finalized report is byte-identical to the unsharded
//! [`crate::run_scenario_with`] run (CI-gated, like every other
//! execution path).
//!
//! Cancellation is cooperative: every long operation polls a
//! [`CancelToken`], and every token also observes the process-wide
//! shutdown flag raised by [`install_signal_handlers`] — so one SIGTERM
//! to a coordinator stops new dispatches and abandons outstanding
//! remote shards (workers finish their slices and find nobody reading;
//! their own lifecycle is independent).

use crate::cache::ContextCache;
use crate::http::{self, FetchResponse};
use crate::metrics::{self, MetricsRegistry};
use crate::rowcache::{RowContext, RowManifest};
use crate::runner::{
    execute_shard_blocks, prepare, replay_cached_scenario, EngineConfig, EngineError, EngineReport,
    StreamEvent,
};
use crate::shard::{queue_fingerprint, MergeError, MergeState, PartialReport};
use crate::spec::ScenarioSpec;
use crate::tevent;
use crate::trace::Level;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// The process-wide shutdown flag, set by the signal handler installed
/// with [`install_signal_handlers`]. Observed by every [`CancelToken`].
static PROCESS_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `true` once SIGTERM/SIGINT has been received (after
/// [`install_signal_handlers`]).
pub fn process_shutdown_requested() -> bool {
    PROCESS_SHUTDOWN.load(Ordering::Relaxed)
}

#[cfg(unix)]
mod signals {
    use super::PROCESS_SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }

    /// Async-signal-safe by construction: one atomic store, or `_exit`
    /// on the second signal (an operator pressing Ctrl-C twice means
    /// *now*).
    extern "C" fn on_shutdown_signal(_signum: i32) {
        if PROCESS_SHUTDOWN.swap(true, Ordering::Relaxed) {
            unsafe { _exit(130) }
        }
    }

    pub fn install() -> bool {
        const SIG_ERR: usize = usize::MAX;
        let handler = on_shutdown_signal as extern "C" fn(i32) as usize;
        // SAFETY: registering an async-signal-safe handler for two
        // standard termination signals.
        unsafe { signal(SIGTERM, handler) != SIG_ERR && signal(SIGINT, handler) != SIG_ERR }
    }
}

/// Installs SIGTERM/SIGINT handlers that request a graceful shutdown:
/// the first signal sets the process-wide flag every [`CancelToken`]
/// observes (`spnn serve` stops accepting, finishes in-flight local
/// streams, cancels outstanding remote shards, then exits); a second
/// signal exits immediately with status 130.
///
/// Returns `false` when handlers could not be installed (non-Unix
/// platforms, or a hostile environment) — the process then keeps the
/// default terminate-on-signal behavior.
pub fn install_signal_handlers() -> bool {
    #[cfg(unix)]
    {
        signals::install()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// A shareable, cloneable cancellation flag.
///
/// [`CancelToken::is_cancelled`] reports `true` once
/// [`cancel`](CancelToken::cancel) was called on this token (or any clone), *or*
/// once the process-wide shutdown flag was raised by a signal (see
/// [`install_signal_handlers`]) — so code polling a token automatically
/// participates in graceful shutdown.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation on this token and all its clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once cancelled — directly or via process shutdown.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || process_shutdown_requested()
    }
}

// ---------------------------------------------------------------------------
// The Executor seam
// ---------------------------------------------------------------------------

/// Shared context an [`Executor`] runs under: execution knobs, the
/// trained-context cache, and the cancellation token.
#[derive(Debug, Clone, Copy)]
pub struct ExecContext<'a> {
    /// Execution knobs (threads, verbosity, cache directory) — like
    /// everywhere else in the engine, nothing here may change results.
    pub config: &'a EngineConfig,
    /// The trained-context cache. [`LocalExecutor`] trains/loads through
    /// it once before fan-out; [`SpawnExecutor`] pre-warms it so child
    /// processes all load instead of training `k` times; workers reached
    /// by [`RemoteExecutor`] have their own.
    pub cache: &'a ContextCache,
    /// Cooperative cancellation (see [`CancelToken`]).
    pub cancel: &'a CancelToken,
}

/// Why an executor could not produce every shard.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// Scenario preparation failed (validation, mapping) before any
    /// shard ran.
    Engine(EngineError),
    /// A child process could not be launched, exited non-zero, or wrote
    /// an unreadable partial.
    Spawn(String),
    /// A shard could not be computed by any worker.
    Remote(String),
    /// Execution was cancelled before every shard completed.
    Cancelled,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Engine(e) => write!(f, "{e}"),
            ExecError::Spawn(m) => write!(f, "shard process failed: {m}"),
            ExecError::Remote(m) => write!(f, "remote execution failed: {m}"),
            ExecError::Cancelled => write!(f, "execution cancelled"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EngineError> for ExecError {
    fn from(e: EngineError) -> Self {
        ExecError::Engine(e)
    }
}

/// A strategy for executing every shard of a `k`-way split of one
/// scenario.
///
/// Implementations must deliver each shard's [`PartialReport`] to
/// `deliver` **as it completes**, in any order, from the calling thread
/// (the driver feeds them straight into [`MergeState`], which is how
/// merge-as-they-arrive streaming falls out). Returning `Ok(())`
/// promises every shard `0..shards` was delivered exactly once.
///
/// `deliver` returns `false` when the consumer rejected the partial
/// (e.g. it does not merge) — the executor should stop wasting work
/// where it can, and preserve any on-disk artifacts it would normally
/// clean up, so the operator can inspect what was produced.
pub trait Executor {
    /// A short human-readable name for logs (`local`, `spawn`, `remote`).
    fn name(&self) -> &'static str;

    /// Executes shards `0..shards` of `spec`, delivering each partial as
    /// it completes.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] when any shard could not be produced;
    /// partials already delivered may have been handed out before the
    /// failure surfaced.
    fn execute(
        &self,
        spec: &ScenarioSpec,
        shards: usize,
        ctx: &ExecContext<'_>,
        deliver: &mut dyn FnMut(PartialReport) -> bool,
    ) -> Result<(), ExecError>;
}

impl fmt::Debug for dyn Executor + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Executor({})", self.name())
    }
}

/// Splits the machine's cores across `shards` concurrent slices unless
/// the operator pinned a thread count (identical results either way).
fn threads_per_shard(config: &EngineConfig, shards: usize) -> Option<usize> {
    config.threads.or_else(|| {
        std::thread::available_parallelism()
            .ok()
            .map(|n| (n.get() / shards.max(1)).max(1))
    })
}

// ---------------------------------------------------------------------------
// LocalExecutor
// ---------------------------------------------------------------------------

/// In-process execution: prepares the scenario once (one training/cache
/// load, one queue compilation) and runs every shard slice on its own
/// thread — the executor form of the engine's original threaded path.
///
/// With `shards == 1` this is exactly `spnn run`'s single-process
/// behavior routed through the shard+merge machinery; the merged report
/// is byte-identical either way (pinned by tests).
#[derive(Debug, Clone, Default)]
pub struct LocalExecutor;

impl Executor for LocalExecutor {
    fn name(&self) -> &'static str {
        "local"
    }

    fn execute(
        &self,
        spec: &ScenarioSpec,
        shards: usize,
        ctx: &ExecContext<'_>,
        deliver: &mut dyn FnMut(PartialReport) -> bool,
    ) -> Result<(), ExecError> {
        if ctx.cancel.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        // Prepare once: the trained context materializes here (cache or
        // fresh), before any fan-out — the pre-warm IS the preparation.
        let prep = prepare(spec, ctx.config, ctx.cache)?;
        let fp = queue_fingerprint(spec);
        let threads = threads_per_shard(ctx.config, shards);
        let verbose = ctx.config.verbose;
        let cancelled = AtomicBool::new(false);
        let rctx = ctx
            .config
            .row_cache
            .as_ref()
            .map(|rc| (rc.as_ref(), RowContext::of_spec(spec)));

        let (tx, rx) = mpsc::channel::<PartialReport>();
        std::thread::scope(|scope| {
            for index in 0..shards {
                let tx = tx.clone();
                let prep = &prep;
                let fp = fp.clone();
                let cancelled = &cancelled;
                let cancel = ctx.cancel;
                let rctx = &rctx;
                scope.spawn(move || {
                    if cancel.is_cancelled() {
                        cancelled.store(true, Ordering::Relaxed);
                        return;
                    }
                    let registry = &ctx.config.metrics;
                    let partial = execute_shard_blocks(
                        prep,
                        fp,
                        shards,
                        index,
                        threads,
                        verbose,
                        registry,
                        rctx.as_ref().map(|(rc, c)| (*rc, c)),
                    );
                    let _ = tx.send(partial);
                });
            }
            drop(tx);
            for partial in rx {
                let _ = deliver(partial);
            }
        });
        if cancelled.load(Ordering::Relaxed) {
            return Err(ExecError::Cancelled);
        }
        crate::runner::persist_context(ctx.cache, &prep, verbose);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// SpawnExecutor
// ---------------------------------------------------------------------------

/// Child-process execution: launches `spnn run --shards k --shard-index i`
/// once per shard on this machine and collects the partial files as the
/// children exit — the PR 4 `--spawn` launcher, now a library citizen.
///
/// Children run the **canonical** spec text (`ScenarioSpec::to_text`
/// round-trips exactly, so queue fingerprints match) from a scratch
/// directory; presets and env-scaled specs need no environment
/// agreement. When the shared cache has a persistence directory the
/// parent pre-warms it first, so `k` cold children all load the trained
/// context instead of training it `k` times concurrently.
#[derive(Debug, Clone)]
pub struct SpawnExecutor {
    /// Path to the `spnn` binary to launch (the CLI passes
    /// `std::env::current_exe()`).
    pub exe: PathBuf,
}

impl Executor for SpawnExecutor {
    fn name(&self) -> &'static str {
        "spawn"
    }

    fn execute(
        &self,
        spec: &ScenarioSpec,
        shards: usize,
        ctx: &ExecContext<'_>,
        deliver: &mut dyn FnMut(PartialReport) -> bool,
    ) -> Result<(), ExecError> {
        let verbose = ctx.config.verbose;
        let fp = queue_fingerprint(spec);
        let work_dir =
            std::env::temp_dir().join(format!("spnn-exec-{}-{}", std::process::id(), &fp[..12]));
        std::fs::create_dir_all(&work_dir)
            .map_err(|e| ExecError::Spawn(format!("creating {}: {e}", work_dir.display())))?;
        let spec_path = work_dir.join("scenario.scn");
        std::fs::write(&spec_path, spec.to_text())
            .map_err(|e| ExecError::Spawn(format!("writing {}: {e}", spec_path.display())))?;

        // Pre-warm the shared cache once in the parent (wall-clock only;
        // results are identical either way).
        if ctx.cache.dir().is_some() {
            let _ = ctx.cache.get_or_train(spec, verbose);
        }
        let threads = threads_per_shard(ctx.config, shards);

        let mut children: Vec<(usize, PathBuf, std::process::Child)> = Vec::with_capacity(shards);
        for index in 0..shards {
            if ctx.cancel.is_cancelled() {
                for (_, _, mut child) in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(ExecError::Cancelled);
            }
            let part = work_dir.join(format!("part-{index}.json"));
            let mut cmd = std::process::Command::new(&self.exe);
            cmd.arg("run")
                .arg(&spec_path)
                .arg("--shards")
                .arg(shards.to_string())
                .arg("--shard-index")
                .arg(index.to_string())
                .arg("--out")
                .arg(&part)
                .arg("--quiet")
                .stdout(std::process::Stdio::null());
            if !verbose {
                cmd.stderr(std::process::Stdio::null());
            }
            if let Some(t) = threads {
                cmd.arg("--threads").arg(t.to_string());
            }
            match ctx.cache.dir() {
                Some(dir) => {
                    cmd.arg("--cache-dir").arg(dir);
                }
                None => {
                    cmd.arg("--no-cache");
                }
            }
            // Children can only share an on-disk row cache; an in-memory
            // tier (or none) in the parent means the children run cold.
            match ctx.config.row_cache.as_ref().and_then(|rc| rc.dir()) {
                Some(dir) => {
                    cmd.arg("--row-cache-dir").arg(dir);
                }
                None => {
                    cmd.arg("--no-row-cache");
                }
            }
            match cmd.spawn() {
                Ok(child) => {
                    if verbose {
                        eprintln!("[exec] spawned shard {index}/{shards} (pid {})", child.id());
                    }
                    children.push((index, part, child));
                }
                Err(e) => {
                    // Do not leave earlier shards orphaned.
                    for (_, _, mut child) in children {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    return Err(ExecError::Spawn(format!("spawning shard {index}: {e}")));
                }
            }
        }

        // One waiter thread per child so partials are delivered in exit
        // order, not launch order.
        let (tx, rx) = mpsc::channel::<(usize, Result<PartialReport, String>)>();
        let mut failures = Vec::new();
        std::thread::scope(|scope| {
            for (index, part, mut child) in children {
                let tx = tx.clone();
                scope.spawn(move || {
                    let result = match child.wait() {
                        Ok(status) if status.success() => match std::fs::read_to_string(&part) {
                            Ok(text) => PartialReport::parse(&text).map_err(|e| format!("{e}")),
                            Err(e) => Err(format!("reading {}: {e}", part.display())),
                        },
                        Ok(status) => Err(format!("exited with {status}")),
                        Err(e) => Err(format!("waiting: {e}")),
                    };
                    let _ = tx.send((index, result));
                });
            }
            drop(tx);
            for (index, result) in rx {
                match result {
                    Ok(partial) => {
                        if !deliver(partial) {
                            // The consumer rejected this partial (it does
                            // not merge): keep the scratch files for
                            // post-mortem instead of treating the run as
                            // clean.
                            failures.push(format!("shard {index}: rejected by the merge"));
                        }
                    }
                    Err(e) => failures.push(format!("shard {index}: {e}")),
                }
            }
        });

        if failures.is_empty() {
            let _ = std::fs::remove_dir_all(&work_dir);
            Ok(())
        } else {
            failures.push(format!(
                "shard scratch kept for inspection: {}",
                work_dir.display()
            ));
            if verbose {
                // The caller may surface a more specific (e.g. merge)
                // error instead of this one; the scratch location must
                // not get lost with it.
                eprintln!(
                    "[exec] shard scratch kept for inspection: {}",
                    work_dir.display()
                );
            }
            Err(ExecError::Spawn(failures.join("; ")))
        }
    }
}

// ---------------------------------------------------------------------------
// RemoteExecutor
// ---------------------------------------------------------------------------

/// Remote execution: dispatches each shard to a worker `spnn serve`
/// instance as `POST /shard?shards=k&index=i` with the canonical spec
/// text as the body, and parses the returned [`PartialReport`].
///
/// Shard `i` starts on worker `i mod n` (round-robin); on any failure —
/// refused connection, worker killed mid-run, torn or foreign response —
/// the shard is **retried on the next worker**, each worker at most once
/// per shard. The shard planner is a pure function of the spec, so a
/// recomputed slice is bit-identical wherever it runs; a merge over
/// retried shards is indistinguishable from one without failures.
#[derive(Debug, Clone)]
pub struct RemoteExecutor {
    /// Worker base URLs (`http://host:port`, no trailing slash needed).
    pub workers: Vec<String>,
}

impl RemoteExecutor {
    /// A remote executor over `workers`, trailing slashes trimmed.
    pub fn new(workers: impl IntoIterator<Item = String>) -> Self {
        RemoteExecutor {
            workers: workers
                .into_iter()
                .map(|w| w.trim_end_matches('/').to_string())
                .collect(),
        }
    }

    /// Runs one shard, trying each worker at most once starting at
    /// `shard_index mod n`. Returns the partial or the per-worker
    /// failure log.
    ///
    /// Every attempt — successful or not — is counted in
    /// `spnn_shard_dispatch_total{worker,outcome}` and timed in
    /// `spnn_shard_dispatch_duration_seconds{worker}`, and produces one
    /// structured `shard complete` / `shard retry` event on stderr with
    /// the worker URL, attempt number, latency, and (on success) row
    /// count — retries are never silent.
    #[allow(clippy::too_many_arguments)] // dispatch coordinates plus observability handles
    fn run_shard(
        &self,
        spec_text: &str,
        expected_fp: &str,
        shards: usize,
        shard_index: usize,
        cancel: &CancelToken,
        verbose: bool,
        registry: &MetricsRegistry,
    ) -> Result<PartialReport, String> {
        let n = self.workers.len();
        let bytes_streamed = registry.counter(
            "spnn_shard_response_bytes_total",
            "Bytes of shard partials received from workers.",
            &[],
        );
        let retries = registry.counter(
            "spnn_shard_retries_total",
            "Shard attempts retried on another worker.",
            &[],
        );
        let mut reasons = Vec::new();
        for attempt in 0..n {
            if cancel.is_cancelled() {
                reasons.push("cancelled".to_string());
                break;
            }
            let worker = &self.workers[(shard_index + attempt) % n];
            let url = format!("{worker}/shard?shards={shards}&index={shard_index}");
            let abort = || cancel.is_cancelled();
            let dispatch_timer = std::time::Instant::now();
            // No idle timeout: a /shard response arrives only once the
            // whole slice is computed, which may legitimately take hours.
            // A killed worker closes the socket (an error → retry); a
            // shutdown cancels via `abort`.
            let outcome =
                match http::http_post(&url, spec_text.as_bytes(), "text/plain", Some(&abort), None)
                {
                    Ok(FetchResponse { status: 200, body }) => {
                        bytes_streamed.add(body.len() as u64);
                        let text = String::from_utf8_lossy(&body);
                        match PartialReport::parse(&text) {
                            Ok(p) if p.queue_fingerprint == expected_fp => Ok(p),
                            Ok(p) => Err(format!(
                                "returned foreign fingerprint {}",
                                p.queue_fingerprint
                            )),
                            Err(e) => Err(format!("unreadable partial: {e}")),
                        }
                    }
                    Ok(resp) => Err(format!("HTTP {}: {}", resp.status, resp.text().trim())),
                    Err(e) => Err(format!("{e}")),
                };
            let elapsed = dispatch_timer.elapsed();
            registry
                .histogram(
                    "spnn_shard_dispatch_duration_seconds",
                    "Round-trip latency of shard dispatches, per worker.",
                    &[("worker", worker)],
                    metrics::DURATION_BUCKETS,
                )
                .observe_duration(elapsed);
            registry
                .counter(
                    "spnn_shard_dispatch_total",
                    "Shard dispatches to workers, by outcome.",
                    &[
                        ("worker", worker),
                        ("outcome", if outcome.is_ok() { "ok" } else { "error" }),
                    ],
                )
                .inc();
            match outcome {
                Ok(p) => {
                    tevent!(
                        Level::Info,
                        "exec",
                        "shard complete",
                        shard = shard_index,
                        shards = shards,
                        worker = worker,
                        attempt = attempt + 1,
                        seconds = elapsed.as_secs_f64(),
                        rows = p.points.len(),
                    );
                    if verbose {
                        eprintln!("[exec] shard {shard_index}/{shards} completed on {worker}");
                    }
                    return Ok(p);
                }
                Err(reason) => {
                    if attempt + 1 < n {
                        retries.inc();
                    }
                    tevent!(
                        Level::Warn,
                        "exec",
                        "shard retry",
                        shard = shard_index,
                        shards = shards,
                        worker = worker,
                        attempt = attempt + 1,
                        seconds = elapsed.as_secs_f64(),
                        error = &reason,
                        will_retry = attempt + 1 < n,
                    );
                    if verbose {
                        eprintln!(
                            "[exec] shard {shard_index}/{shards} failed on {worker}, \
                             retrying elsewhere: {reason}"
                        );
                    }
                    reasons.push(format!("{worker}: {reason}"));
                }
            }
        }
        registry
            .counter(
                "spnn_shard_failures_total",
                "Shards no worker could produce.",
                &[],
            )
            .inc();
        Err(format!(
            "shard {shard_index}: every worker failed ({})",
            reasons.join("; ")
        ))
    }
}

impl Executor for RemoteExecutor {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn execute(
        &self,
        spec: &ScenarioSpec,
        shards: usize,
        ctx: &ExecContext<'_>,
        deliver: &mut dyn FnMut(PartialReport) -> bool,
    ) -> Result<(), ExecError> {
        if self.workers.is_empty() {
            return Err(ExecError::Remote("no workers configured".into()));
        }
        let spec_text = spec.to_text();
        let expected_fp = queue_fingerprint(spec);
        let verbose = ctx.config.verbose;

        let (tx, rx) = mpsc::channel::<Result<PartialReport, String>>();
        let mut failures = Vec::new();
        std::thread::scope(|scope| {
            for index in 0..shards {
                let tx = tx.clone();
                let (spec_text, expected_fp) = (&spec_text, &expected_fp);
                let cancel = ctx.cancel;
                let registry = &ctx.config.metrics;
                scope.spawn(move || {
                    let result = self.run_shard(
                        spec_text,
                        expected_fp,
                        shards,
                        index,
                        cancel,
                        verbose,
                        registry,
                    );
                    let _ = tx.send(result);
                });
            }
            drop(tx);
            for result in rx {
                match result {
                    Ok(partial) => {
                        let _ = deliver(partial);
                    }
                    Err(e) => failures.push(e),
                }
            }
        });

        if failures.is_empty() {
            Ok(())
        } else if ctx.cancel.is_cancelled() {
            Err(ExecError::Cancelled)
        } else {
            Err(ExecError::Remote(failures.join("; ")))
        }
    }
}

// ---------------------------------------------------------------------------
// The unified distributed driver
// ---------------------------------------------------------------------------

/// Why a distributed run failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum DistError {
    /// The executor could not produce every shard.
    Exec(ExecError),
    /// Delivered partials do not merge (foreign fingerprint, overlap,
    /// corrupt block, incomplete coverage).
    Merge(MergeError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Exec(e) => write!(f, "{e}"),
            DistError::Merge(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<ExecError> for DistError {
    fn from(e: ExecError) -> Self {
        DistError::Exec(e)
    }
}

impl From<MergeError> for DistError {
    fn from(e: MergeError) -> Self {
        DistError::Merge(e)
    }
}

/// Runs `spec` as a `shards`-way split through `executor`, merging
/// partials **as they arrive** and emitting the engine's standard
/// [`StreamEvent`]s: `Started` and per-topology events when the first
/// partial lands (all partials carry identical summaries — validated),
/// then each `Row` the moment its coverage is decidable, in prefix
/// order, from whichever shard finishes first.
///
/// This is *the* driver behind `spnn run --shards k --exec local`,
/// `--shards k --spawn`, `spnn run --workers …`, and the coordinator
/// form of `spnn serve` — four spellings of one code path. The returned
/// report (and therefore the event stream) is byte-identical to the
/// unsharded [`crate::run_scenario_with`]: the merge replays the
/// adaptive stop rule over recombined samples exactly as
/// [`crate::shard::merge_partials`] does, because both *are*
/// [`MergeState`].
///
/// # Errors
///
/// [`DistError::Exec`] when the executor fails (or is cancelled),
/// [`DistError::Merge`] when delivered partials do not merge cleanly.
pub fn run_distributed(
    spec: &ScenarioSpec,
    executor: &dyn Executor,
    shards: usize,
    ctx: &ExecContext<'_>,
    observe: &mut dyn FnMut(StreamEvent<'_>),
) -> Result<EngineReport, DistError> {
    if shards == 0 {
        return Err(DistError::Exec(ExecError::Engine(EngineError::Invalid(
            "shards must be positive".into(),
        ))));
    }
    // A spec whose every row is resident in the row cache never fans out
    // at all: the report replays coordinator-side, zero dispatches.
    if let Some(rc) = &ctx.config.row_cache {
        if let Some(report) = replay_cached_scenario(spec, rc, observe) {
            return Ok(report);
        }
    }
    let mut merge = MergeState::with_metrics(&ctx.config.metrics);
    if let Some(rc) = &ctx.config.row_cache {
        merge.publish_rows_to(Arc::clone(rc), RowContext::of_spec(spec));
    }
    let mut merge_err: Option<MergeError> = None;
    let mut started = false;
    let exec_result = executor.execute(spec, shards, ctx, &mut |partial| {
        if merge_err.is_some() {
            return false;
        }
        if !started {
            started = true;
            observe(StreamEvent::Started {
                scenario: &partial.scenario,
                total_points: partial.total_points,
            });
            for t in &partial.topologies {
                observe(StreamEvent::Topology(t));
            }
        }
        match merge.push(partial) {
            Ok(rows) => {
                for (index, row) in &rows {
                    observe(StreamEvent::Row { index: *index, row });
                }
                true
            }
            Err(e) => {
                merge_err = Some(e);
                false
            }
        }
    });
    // A merge inconsistency is the root cause; executor errors observed
    // afterwards are usually downstream of it.
    if let Some(e) = merge_err {
        return Err(e.into());
    }
    exec_result?;
    let report = merge.finalize()?;
    if let Some(rc) = &ctx.config.row_cache {
        let rctx = RowContext::of_spec(spec);
        rc.put_manifest(
            &queue_fingerprint(spec),
            RowManifest {
                scenario: report.scenario.clone(),
                topologies: report.topologies.clone(),
                row_keys: report
                    .rows
                    .iter()
                    .map(|r| rctx.key(&r.topology, &r.labels).hex())
                    .collect(),
            },
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // A fresh token is unaffected by other tokens.
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn remote_executor_normalizes_worker_urls() {
        let ex = RemoteExecutor::new(vec!["http://a:1/".to_string(), "http://b:2".to_string()]);
        assert_eq!(ex.workers, vec!["http://a:1", "http://b:2"]);
    }

    #[test]
    fn remote_executor_without_workers_fails_fast() {
        let ex = RemoteExecutor::new(Vec::new());
        let spec = ScenarioSpec::default();
        let config = EngineConfig::default();
        let cache = ContextCache::in_memory();
        let cancel = CancelToken::new();
        let ctx = ExecContext {
            config: &config,
            cache: &cache,
            cancel: &cancel,
        };
        let err =
            run_distributed(&spec, &ex, 2, &ctx, &mut |_| {}).expect_err("no workers must fail");
        assert!(
            matches!(err, DistError::Exec(ExecError::Remote(_))),
            "{err}"
        );
    }

    #[test]
    fn zero_shards_is_rejected() {
        let spec = ScenarioSpec::default();
        let config = EngineConfig::default();
        let cache = ContextCache::in_memory();
        let cancel = CancelToken::new();
        let ctx = ExecContext {
            config: &config,
            cache: &cache,
            cancel: &cancel,
        };
        assert!(run_distributed(&spec, &LocalExecutor, 0, &ctx, &mut |_| {}).is_err());
    }
}
